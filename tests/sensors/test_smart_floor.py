"""Tests for the Smart Floor model (§5.2)."""

import pytest

from repro.auth.authenticator import Presence
from repro.exceptions import AuthenticationError
from repro.sensors.base import gaussian_cdf, interval_probability
from repro.sensors.smart_floor import SmartFloor


@pytest.fixture
def floor() -> SmartFloor:
    """The paper's household, noise-free measurement."""
    floor = SmartFloor(
        measurement_sigma=0.0, identity_sigma=4.0, reliability=0.98
    )
    floor.enroll("mom", 135.0)
    floor.enroll("dad", 180.0)
    floor.enroll("alice", 94.0)
    floor.enroll("bobby", 88.0)
    floor.define_weight_class("child", 40.0, 120.0)
    floor.define_weight_class("parent", 120.0, 260.0)
    return floor


class TestStatisticsHelpers:
    def test_gaussian_cdf_basics(self):
        assert gaussian_cdf(0.0) == pytest.approx(0.5)
        assert gaussian_cdf(10.0) == pytest.approx(1.0, abs=1e-9)
        assert gaussian_cdf(-10.0) == pytest.approx(0.0, abs=1e-9)

    def test_interval_probability_zero_sigma_is_indicator(self):
        assert interval_probability(94.0, 40, 120, 0.0) == 1.0
        assert interval_probability(130.0, 40, 120, 0.0) == 0.0

    def test_interval_probability_near_boundary(self):
        near_edge = interval_probability(119.0, 40, 120, 3.0)
        middle = interval_probability(80.0, 40, 120, 3.0)
        assert near_edge < middle


class TestPaperNumbers:
    def test_identity_posterior_for_alice_is_about_75_percent(self, floor):
        # §5.2: "the Smart Floor can identify her as Alice with 75%
        # accuracy" — Alice (94 lb) is confusable with Bobby (88 lb).
        posterior = floor.identity_posterior(94.0)
        assert posterior["alice"] == pytest.approx(0.75, abs=0.02)
        assert posterior["bobby"] == pytest.approx(0.25, abs=0.02)
        assert posterior.get("mom", 0.0) < 0.01

    def test_child_role_confidence_is_98_percent(self, floor):
        # "...authenticate her into the Child role with 98% accuracy":
        # the class is unambiguous, so confidence saturates at the
        # sensor's reliability.
        confidences = floor.role_confidences(94.0)
        assert confidences["child"] == pytest.approx(0.98, abs=0.001)
        assert confidences["parent"] == pytest.approx(0.0, abs=0.001)

    def test_role_confidence_exceeds_identity_confidence(self, floor):
        # The crux of §5.2.
        identity = floor.identity_posterior(94.0)["alice"]
        role = floor.role_confidences(94.0)["child"]
        assert role > identity


class TestObserve:
    def test_observe_produces_both_claim_kinds(self, floor):
        evidence = floor.observe(Presence("alice", {"weight_lb": 94.0}))
        assert "alice" in evidence.identity_map()
        assert "child" in evidence.role_map()

    def test_observe_without_weight_is_empty(self, floor):
        assert floor.observe(Presence("alice")).empty

    def test_unenrolled_person_still_gets_role_claims(self, floor):
        # A visiting child is not enrolled, but their weight class is
        # still recognizable — role-level authentication at work.
        evidence = floor.observe(Presence("visitor-kid", {"weight_lb": 70.0}))
        assert evidence.role_map()["child"] > 0.9

    def test_measurement_noise_is_seeded(self):
        floors = [
            SmartFloor(measurement_sigma=3.0, seed=11) for _ in range(2)
        ]
        for floor in floors:
            floor.enroll("alice", 94.0)
        assert floors[0].measure(94.0) == floors[1].measure(94.0)

    def test_boundary_weight_splits_role_confidence(self, floor):
        noisy = SmartFloor(measurement_sigma=5.0, identity_sigma=4.0)
        noisy.define_weight_class("child", 40.0, 120.0)
        noisy.define_weight_class("parent", 120.0, 260.0)
        confidences = noisy.role_confidences(120.0)
        assert confidences["child"] == pytest.approx(0.5, abs=0.02)
        assert confidences["parent"] == pytest.approx(0.5, abs=0.02)


class TestValidation:
    def test_bad_enrollment(self, floor):
        with pytest.raises(AuthenticationError):
            floor.enroll("x", -10.0)

    def test_bad_weight_class(self, floor):
        with pytest.raises(AuthenticationError):
            floor.define_weight_class("x", 120.0, 40.0)

    def test_bad_sigmas(self):
        with pytest.raises(AuthenticationError):
            SmartFloor(measurement_sigma=-1.0)
        with pytest.raises(AuthenticationError):
            SmartFloor(identity_sigma=0.0)

    def test_empty_floor_posterior(self):
        floor = SmartFloor()
        assert floor.identity_posterior(100.0) == {}
