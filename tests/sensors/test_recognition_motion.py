"""Tests for recognition sensors and occupancy sensing."""

from datetime import datetime

import pytest

from repro.auth.authenticator import Presence
from repro.env.clock import SimulatedClock
from repro.env.location import LocationService
from repro.env.state import EnvironmentState
from repro.exceptions import AuthenticationError
from repro.home.topology import standard_home
from repro.sensors.motion import OccupancyProvider
from repro.sensors.recognition import RecognitionSensor, face_sensor, voice_sensor


class TestDeterministicRecognition:
    def test_paper_accuracies(self):
        assert face_sensor().accuracy == 0.90
        assert voice_sensor().accuracy == 0.70

    def test_enrolled_signature_recognized_at_accuracy(self):
        sensor = face_sensor()
        sensor.enroll("alice", "face:alice")
        evidence = sensor.observe(Presence("alice", {"face": "face:alice"}))
        assert evidence.identity_map() == {"alice": 0.90}

    def test_unenrolled_signature_empty(self):
        sensor = face_sensor()
        assert sensor.observe(Presence("x", {"face": "face:ghost"})).empty

    def test_missing_modality_empty(self):
        sensor = face_sensor()
        sensor.enroll("alice", "face:alice")
        assert sensor.observe(Presence("alice", {"voice": "voice:alice"})).empty

    def test_signature_collision_rejected(self):
        sensor = face_sensor()
        sensor.enroll("alice", "sig")
        sensor.enroll("alice", "sig")  # same binding OK
        with pytest.raises(AuthenticationError):
            sensor.enroll("bobby", "sig")

    def test_enrolled_subjects_listing(self):
        sensor = voice_sensor()
        sensor.enroll("alice", "v:a")
        sensor.enroll("bobby", "v:b")
        assert sensor.enrolled_subjects() == ["alice", "bobby"]


class TestStochasticRecognition:
    def _accuracy_run(self, accuracy: float, trials: int = 2000) -> float:
        sensor = RecognitionSensor(
            "face", accuracy, stochastic=True, miss_fraction=0.5, seed=3
        )
        sensor.enroll("alice", "f:a")
        sensor.enroll("bobby", "f:b")
        correct = 0
        for _ in range(trials):
            evidence = sensor.observe(Presence("alice", {"face": "f:a"}))
            if evidence.identity_map().get("alice"):
                correct += 1
        return correct / trials

    def test_realized_accuracy_matches_parameter(self):
        assert self._accuracy_run(0.9) == pytest.approx(0.9, abs=0.03)
        assert self._accuracy_run(0.7) == pytest.approx(0.7, abs=0.03)

    def test_errors_include_misidentifications(self):
        sensor = RecognitionSensor(
            "face", 0.5, stochastic=True, miss_fraction=0.0, seed=5
        )
        sensor.enroll("alice", "f:a")
        sensor.enroll("bobby", "f:b")
        wrong = 0
        for _ in range(500):
            evidence = sensor.observe(Presence("alice", {"face": "f:a"}))
            if "bobby" in evidence.identity_map():
                wrong += 1
        assert wrong > 100  # roughly half the errors misidentify

    def test_sole_enrollee_errors_become_misses(self):
        sensor = RecognitionSensor(
            "face", 0.5, stochastic=True, miss_fraction=0.0, seed=5
        )
        sensor.enroll("alice", "f:a")
        outcomes = {
            tuple(sensor.observe(Presence("alice", {"face": "f:a"})).identity_map())
            for _ in range(100)
        }
        assert outcomes <= {(), ("alice",)}

    def test_seeded_reproducibility(self):
        runs = []
        for _ in range(2):
            sensor = RecognitionSensor("face", 0.6, stochastic=True, seed=9)
            sensor.enroll("alice", "f:a")
            sensor.enroll("bobby", "f:b")
            runs.append(
                [
                    tuple(
                        sensor.observe(
                            Presence("alice", {"face": "f:a"})
                        ).identity_map()
                    )
                    for _ in range(50)
                ]
            )
        assert runs[0] == runs[1]

    def test_parameter_validation(self):
        with pytest.raises(AuthenticationError):
            RecognitionSensor("face", 0.0)
        with pytest.raises(AuthenticationError):
            RecognitionSensor("face", 0.9, miss_fraction=2.0)


class TestOccupancyProvider:
    def test_counts_written_to_state(self):
        home = standard_home()
        state = EnvironmentState()
        location = LocationService(state, resolver=home.zone_resolver())
        provider = OccupancyProvider(location, ["home", "kitchen", "upstairs"])
        clock = SimulatedClock(datetime(2000, 1, 17))
        location.move("alice", "kitchen")
        location.move("mom", "master-bedroom")
        provider.refresh(state, clock)
        assert state.get("occupancy.home") == 2
        assert state.get("occupancy.kitchen") == 1
        assert state.get("occupancy.upstairs") == 1
        location.leave("alice")
        provider.refresh(state, clock)
        assert state.get("occupancy.home") == 1
        assert state.get("occupancy.kitchen") == 0
