"""Tests for the multi-worker PDP cluster subsystem."""
