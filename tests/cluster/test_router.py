"""ShardRouter behavior against in-process PDP workers.

No subprocesses here: workers are in-process :class:`PDPServer`
instances (plus a few hand-rolled misbehaving listeners), so these
tests pin the router's protocol behavior — shard affinity, both wire
formats, unavailable-shedding, breaker state — fast and
deterministically.  Real fork/exec lifecycles live in
``test_supervisor.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import CircuitBreaker, ShardRouter
from repro.core import AccessRequest, MediationEngine
from repro.exceptions import ServiceError
from repro.service import (
    PDPConfig,
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)

SUBJECTS = ("mom", "dad", "alice", "bobby")


def make_server(policy, **config) -> PDPServer:
    return PDPServer(
        PolicyDecisionPoint(MediationEngine(policy), PDPConfig(**config))
    )


async def start_cluster(tv_policy, n=2, **router_kwargs):
    servers = []
    for _ in range(n):
        server = make_server(tv_policy)
        await server.start()
        servers.append(server)
    router = ShardRouter(
        {f"w{i}": ("127.0.0.1", s.port) for i, s in enumerate(servers)},
        **router_kwargs,
    )
    await router.start()
    return router, servers


async def stop_cluster(router, servers):
    await router.stop()
    for server in servers:
        await server.stop()


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_ndjson_decisions_route_and_answer(tv_policy) -> None:
    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            results = {}
            for subject in SUBJECTS:
                response = await client.decide(
                    AccessRequest("watch", "livingroom/tv", subject=subject),
                    environment_roles={"free-time"},
                )
                results[subject] = response.outcome
            await client.close()
            return results, router.stats()
        finally:
            await stop_cluster(router, servers)

    results, stats = asyncio.run(scenario())
    assert results["alice"] is PDPOutcome.GRANT
    assert results["bobby"] is PDPOutcome.GRANT
    assert results["mom"] is PDPOutcome.DENY
    routed = {w: row["routed"] for w, row in stats["workers"].items()}
    assert sum(routed.values()) == len(SUBJECTS)
    # Four distinct subjects across two workers: the ring splits them.
    assert all(count >= 0 for count in routed.values())
    assert stats["unavailable_synthesized"] == 0


def test_subject_affinity_is_stable(tv_policy) -> None:
    """The same subject always lands on the same worker (cache locality)."""

    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            owner = router.ring.route("alice")
            before = router.routed[owner]
            for _ in range(10):
                await client.decide(
                    AccessRequest("watch", "livingroom/tv", subject="alice"),
                    environment_roles={"free-time"},
                )
            await client.close()
            return router.routed[owner] - before
        finally:
            await stop_cluster(router, servers)

    assert asyncio.run(scenario()) == 10


def test_binary_wire_through_router(tv_policy) -> None:
    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            client = await RemotePDPClient.connect(
                "127.0.0.1", router.port, wire="binary"
            )
            responses = await asyncio.gather(
                *(
                    client.decide(
                        AccessRequest(
                            "watch", "livingroom/tv", subject=subject
                        ),
                        environment_roles={"free-time"},
                    )
                    for subject in SUBJECTS * 5
                )
            )
            await client.close()
            return responses, router.stats()
        finally:
            await stop_cluster(router, servers)

    responses, stats = asyncio.run(scenario())
    assert len(responses) == 20
    assert all(
        r.outcome in (PDPOutcome.GRANT, PDPOutcome.DENY) for r in responses
    )
    # Both workers saw traffic (4 subjects spread over the ring).
    routed = [row["routed"] for row in stats["workers"].values()]
    assert sum(routed) >= 20


def test_tenant_key_takes_precedence_over_subject(tv_policy) -> None:
    """Requests carrying a tenant shard by tenant, not subject."""

    async def scenario():
        router, servers = await start_cluster(tv_policy, n=4)
        try:
            owner = router.ring.route("sharedtenant")
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", router.port
            )
            from repro.service.protocol import dumps_line, parse_line

            for i, subject in enumerate(SUBJECTS):
                writer.write(
                    dumps_line(
                        {
                            "id": i,
                            "subject": subject,
                            "transaction": "watch",
                            "object": "livingroom/tv",
                            "tenant": "sharedtenant",
                        }
                    )
                )
            await writer.drain()
            responses = [
                parse_line(await reader.readline()) for _ in SUBJECTS
            ]
            writer.close()
            return owner, router.routed, responses
        finally:
            await stop_cluster(router, servers)

    owner, routed, responses = asyncio.run(scenario())
    # All four landed on the tenant's owner, no matter the subject.
    assert routed[owner] == len(SUBJECTS)
    assert all(
        routed[w] == 0 for w in routed if w != owner
    )
    # The workers don't serve that tenant; the *answer* is a clean
    # refusal either way — routing never invents grants.
    assert all(resp["granted"] is False for resp in responses)


# ----------------------------------------------------------------------
# Failure: shed, never hang
# ----------------------------------------------------------------------
def test_dead_worker_sheds_deny_unavailable(tv_policy) -> None:
    """A connect-refused worker answers DENY_UNAVAILABLE, not a hang."""

    async def scenario():
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()  # nothing listens here any more

        server = make_server(tv_policy)
        await server.start()
        router = ShardRouter(
            {
                "w0": ("127.0.0.1", server.port),
                "w1": ("127.0.0.1", dead_port),
            },
            failure_threshold=1,
            cooldown_s=30.0,
        )
        await router.start()
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            outcomes = {}
            for subject in SUBJECTS:
                response = await asyncio.wait_for(
                    client.decide(
                        AccessRequest(
                            "watch", "livingroom/tv", subject=subject
                        ),
                        environment_roles={"free-time"},
                    ),
                    timeout=5.0,
                )
                outcomes[router.ring.route(subject)] = (
                    outcomes.get(router.ring.route(subject), [])
                    + [response.outcome]
                )
            await client.close()
            return outcomes, router.stats()
        finally:
            await router.stop()
            await server.stop()

    outcomes, stats = asyncio.run(scenario())
    for outcome in outcomes.get("w1", []):
        assert outcome is PDPOutcome.DENY_UNAVAILABLE
    for outcome in outcomes.get("w0", []):
        assert outcome is not PDPOutcome.DENY_UNAVAILABLE
    assert stats["workers"]["w1"]["breaker"] == "open"
    assert stats["unavailable_synthesized"] == len(
        outcomes.get("w1", [])
    )


def test_midflight_death_synthesizes_for_outstanding(tv_policy) -> None:
    """A worker dying with requests in flight answers them all."""

    async def scenario():
        from repro.service.protocol import parse_line

        accepted = []

        async def black_hole(reader, writer):
            # Read one line, then drop the connection with the request
            # still unanswered — a crash mid-request.
            accepted.append(writer)
            await reader.readline()
            writer.close()

        trap = await asyncio.start_server(black_hole, "127.0.0.1", 0)
        trap_port = trap.sockets[0].getsockname()[1]
        router = ShardRouter({"w0": ("127.0.0.1", trap_port)})
        await router.start()
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", router.port
            )
            from repro.service.protocol import dumps_line

            writer.write(
                dumps_line(
                    {
                        "id": 77,
                        "subject": "alice",
                        "transaction": "watch",
                        "object": "livingroom/tv",
                    }
                )
            )
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            writer.close()
            return parse_line(line)
        finally:
            trap.close()
            await router.stop()

    response = asyncio.run(scenario())
    assert response["id"] == 77
    assert response["outcome"] == "deny-unavailable"
    assert response["granted"] is False


def test_restarted_worker_resumes_traffic(tv_policy) -> None:
    """set_worker with a fresh address closes the breaker and routes."""

    async def scenario():
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        dead_port = placeholder.getsockname()[1]
        placeholder.close()

        router = ShardRouter(
            {"w0": ("127.0.0.1", dead_port)},
            failure_threshold=1,
            cooldown_s=60.0,
        )
        await router.start()
        replacement = make_server(tv_policy)
        await replacement.start()
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            request = AccessRequest(
                "watch", "livingroom/tv", subject="alice"
            )
            first = await client.decide(
                request, environment_roles={"free-time"}
            )
            # "Restart": same slot name, new address, breaker reset.
            router.set_worker("w0", "127.0.0.1", replacement.port)
            second = await client.decide(
                request, environment_roles={"free-time"}
            )
            await client.close()
            return first.outcome, second.outcome
        finally:
            await router.stop()
            await replacement.stop()

    first, second = asyncio.run(scenario())
    assert first is PDPOutcome.DENY_UNAVAILABLE
    assert second is PDPOutcome.GRANT


# ----------------------------------------------------------------------
# Control ops
# ----------------------------------------------------------------------
def test_ping_answered_locally_and_ops_forwarded(tv_policy) -> None:
    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            pong = await client.ping()
            stats = await client.stats()
            health = await client.health()
            await client.close()
            return pong, stats, health
        finally:
            await stop_cluster(router, servers)

    pong, stats, health = asyncio.run(scenario())
    assert pong is True
    assert "queued" in stats or stats  # a real worker stats body
    assert health["healthy"] is True


def test_reload_refused_without_supervisor(tv_policy) -> None:
    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            with pytest.raises(ServiceError, match="supervisor"):
                await client.reload("subject role anything", actor="test")
            await client.close()
        finally:
            await stop_cluster(router, servers)

    asyncio.run(scenario())


def test_reload_delegated_to_handler(tv_policy) -> None:
    seen = {}

    async def handler(payload):
        seen["policy"] = payload.get("policy")
        return {"accepted": True, "error": "", "record": {}}

    async def scenario():
        router, servers = await start_cluster(
            tv_policy, reload_handler=handler
        )
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            result = await client.reload("subject role x", actor="test")
            await client.close()
            return result
        finally:
            await stop_cluster(router, servers)

    result = asyncio.run(scenario())
    assert result["accepted"] is True
    assert seen["policy"] == "subject role x"


# ----------------------------------------------------------------------
# CircuitBreaker unit behavior
# ----------------------------------------------------------------------
def test_breaker_opens_after_threshold() -> None:
    breaker = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
    breaker.record_failure()
    breaker.record_failure()
    assert not breaker.open
    breaker.record_failure()
    assert breaker.open
    assert breaker.state() == "open"
    assert breaker.opens == 1


def test_breaker_half_opens_after_cooldown_and_recloses() -> None:
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.01)
    breaker.record_failure()
    assert breaker.open
    import time

    time.sleep(0.02)
    assert not breaker.open  # half-open: probes may pass
    assert breaker.state() == "half-open"
    breaker.record_success()
    assert breaker.state() == "closed"
    assert not breaker.open


def test_breaker_reopen_from_half_open() -> None:
    breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.01)
    breaker.record_failure()
    import time

    time.sleep(0.02)
    assert breaker.state() == "half-open"
    breaker.record_failure()
    assert breaker.open  # the failed probe re-stamps opened_at


def test_breaker_force_open_and_validation() -> None:
    breaker = CircuitBreaker(failure_threshold=5, cooldown_s=60.0)
    breaker.force_open()
    assert breaker.open and breaker.opens == 1
    with pytest.raises(ServiceError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ServiceError):
        CircuitBreaker(cooldown_s=0)
