"""End-to-end cluster lifecycle with real worker subprocesses.

These spawn actual ``repro.cli serve`` interpreters, so each test
carries ~a second of fork/exec cost — kept to a 2-worker cluster and
a handful of scenarios that can only be proven against real process
boundaries: spawn/readiness, crash → restart with policy replay,
all-or-nothing two-phase reload, and the aggregated live-ops view.
Router protocol details live in ``test_router.py`` (in-process).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.cluster import ClusterAdminServer, ClusterSupervisor
from repro.core import AccessRequest
from repro.service import PDPOutcome, RemotePDPClient

POLICY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    "examples",
    "policies",
    "entertainment.grbac",
)

pytestmark = pytest.mark.skipif(
    not os.path.exists(POLICY_PATH),
    reason="example policy missing",
)


def read_policy() -> str:
    with open(POLICY_PATH, "r", encoding="utf-8") as handle:
        return handle.read()


def make_supervisor(**overrides) -> ClusterSupervisor:
    config = dict(
        policy_path=POLICY_PATH,
        workers=2,
        probe_interval_s=0.1,
        restart_backoff_s=0.05,
        drain_timeout_s=2.0,
    )
    config.update(overrides)
    return ClusterSupervisor(**config)


async def wait_for(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        result = predicate()
        if result:
            return result
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not met in time")
        await asyncio.sleep(interval_s)


def test_spawn_route_and_aggregate(tmp_path) -> None:
    async def scenario():
        async with make_supervisor() as sup:
            status = sup.status()
            assert all(
                row["state"] == "ready"
                for row in status["workers"].values()
            )
            assert set(status["workers"]) == {"w0", "w1"}

            client = await RemotePDPClient.connect(
                "127.0.0.1", sup.router.port
            )
            outcomes = {}
            for subject in ("mom", "dad", "alice", "bobby"):
                response = await client.decide(
                    AccessRequest(
                        "watch", "livingroom/tv", subject=subject
                    ),
                    environment_roles={"weekday-free-time"},
                )
                outcomes[subject] = response.outcome
            denied = await client.decide(
                AccessRequest("power_on", "kitchen/oven", subject="alice"),
                environment_roles={"kitchen-occupied"},
            )
            await client.close()

            health = await sup.cluster_health()
            metrics = await sup.cluster_metrics()
            tail = await sup.cluster_tail(limit=10)
            return outcomes, denied.outcome, health, metrics, tail

    outcomes, denied, health, metrics, tail = asyncio.run(scenario())
    # Everyone may watch (children via weekday-free-time, parents
    # unconditionally); the oven stays adults-only.
    assert all(o is PDPOutcome.GRANT for o in outcomes.values())
    assert denied is PDPOutcome.DENY
    assert health["healthy"] is True
    assert health["generations"] in ([0], [])
    assert health["mixed_generations"] is False
    assert 'shard="w0"' in metrics["prometheus"]
    assert 'shard="w1"' in metrics["prometheus"]
    assert len(tail) == 5
    assert {entry["shard"] for entry in tail} <= {"w0", "w1"}


def test_two_phase_reload_and_rejection() -> None:
    good = read_policy() + "\nallow child to power_on on game-devices\n"
    bad = read_policy() + "\nallow gibberish syntax {{{\n"

    async def scenario():
        async with make_supervisor() as sup:
            # A malformed candidate fails prepare on every worker and
            # must change nothing anywhere.
            rejected = await sup.reload_cluster(bad, actor="test")
            health_after_reject = await sup.cluster_health()

            # Dry-run of a good candidate: validated everywhere,
            # activated nowhere.
            dry = await sup.reload_cluster(good, actor="test", dry_run=True)
            health_after_dry = await sup.cluster_health()

            # The real thing: everyone moves to generation 1.
            accepted = await sup.reload_cluster(good, actor="test")
            health_after_accept = await sup.cluster_health()
            return (
                rejected,
                dry,
                accepted,
                health_after_reject,
                health_after_dry,
                health_after_accept,
                sup.reloads_accepted,
                sup.reloads_rejected,
            )

    (
        rejected,
        dry,
        accepted,
        health_after_reject,
        health_after_dry,
        health_after_accept,
        n_accepted,
        n_rejected,
    ) = asyncio.run(scenario())

    assert rejected["accepted"] is False
    assert rejected["phase"] == "prepare"
    assert rejected["error"]
    assert rejected["generations"] == {}
    assert health_after_reject["generations"] == [0]

    assert dry["accepted"] is True
    assert dry["dry_run"] is True
    assert dry["phase"] == "prepare"
    assert dry["generations"] == {}
    assert health_after_dry["generations"] == [0]

    assert accepted["accepted"] is True
    assert accepted["phase"] == "activate"
    assert accepted["generations"] == {"w0": 1, "w1": 1}
    assert health_after_accept["healthy"] is True
    assert health_after_accept["generations"] == [1]
    assert n_accepted == 2  # dry-run counts as an accepted validation
    assert n_rejected == 1


def test_crash_restart_replays_current_policy() -> None:
    good = read_policy() + "\nallow child to power_on on game-devices\n"

    async def scenario():
        async with make_supervisor() as sup:
            accepted = await sup.reload_cluster(good, actor="test")
            assert accepted["accepted"] is True

            victim = sup._workers["w0"]
            old_pid = victim.pid
            victim.process.kill()

            await wait_for(
                lambda: victim.state == "ready" and victim.pid != old_pid
            )
            # The restarted worker must have been healed to the
            # reloaded policy *before* rejoining the ring — otherwise
            # its shard would answer from generation 0 again.
            health = await wait_for_converged_health(sup)
            assert victim.restarts >= 1

            client = await RemotePDPClient.connect(
                "127.0.0.1", sup.router.port
            )
            response = await client.decide(
                AccessRequest(
                    "power_on", "kids-bedroom/console", subject="alice"
                ),
                environment_roles={"weekday-free-time"},
            )
            await client.close()
            return health, response.outcome

    async def wait_for_converged_health(sup):
        deadline = asyncio.get_running_loop().time() + 20.0
        while True:
            health = await sup.cluster_health()
            if health["healthy"] and health["generations"] == [1]:
                return health
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError(f"never converged: {health}")
            await asyncio.sleep(0.1)

    health, outcome = asyncio.run(scenario())
    assert health["mixed_generations"] is False
    # The new rule came from the replayed reload, not the boot file.
    assert outcome is PDPOutcome.GRANT


def test_reload_refused_while_a_worker_is_down() -> None:
    good = read_policy() + "\nallow child to power_on on game-devices\n"

    async def scenario():
        async with make_supervisor(
            restart_backoff_s=5.0,  # keep the victim down during the test
        ) as sup:
            victim = sup._workers["w1"]
            victim.process.kill()
            await wait_for(lambda: victim.state == "down")
            result = await sup.reload_cluster(good, actor="test")
            return result

    result = asyncio.run(scenario())
    assert result["accepted"] is False
    assert "not ready" in result["error"]
    assert "w1" in result["error"]


def test_failed_router_bind_stops_spawned_workers() -> None:
    import socket

    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    taken_port = blocker.getsockname()[1]

    async def scenario():
        sup = make_supervisor(router_port=taken_port)
        with pytest.raises(Exception, match="failed to start"):
            await sup.start()
        return [w.process for w in sup._workers.values()]

    try:
        processes = asyncio.run(scenario())
    finally:
        blocker.close()
    # Every worker the supervisor managed to spawn must be reaped —
    # a failed bind must not orphan N serve processes.
    for process in processes:
        if process is not None:
            assert process.returncode is not None


def test_cluster_admin_http_surface() -> None:
    import json
    import urllib.error
    import urllib.request

    good = read_policy() + "\nallow child to power_on on game-devices\n"
    bad = read_policy() + "\nallow gibberish syntax {{{\n"

    def get(url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read().decode()

    def post(url, body):
        request = urllib.request.Request(
            url, data=body.encode(), method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, response.read().decode()
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode()

    async def scenario():
        async with make_supervisor() as sup:
            admin = ClusterAdminServer(sup)
            await admin.start()
            try:
                base = f"http://127.0.0.1:{admin.port}"
                # urllib blocks; keep it off the server's event loop.
                status = await asyncio.to_thread(get, f"{base}/status")
                health = await asyncio.to_thread(get, f"{base}/health")
                metrics = await asyncio.to_thread(get, f"{base}/metrics")
                code_bad, body_bad = await asyncio.to_thread(
                    post, f"{base}/reload?actor=test", bad
                )
                code_good, body_good = await asyncio.to_thread(
                    post, f"{base}/reload?actor=test", good
                )
                health_after = await asyncio.to_thread(
                    get, f"{base}/health"
                )
                return (
                    status,
                    health,
                    metrics,
                    (code_bad, body_bad),
                    (code_good, body_good),
                    health_after,
                )
            finally:
                await admin.stop()

    (
        (status_code, status_body),
        (health_code, _),
        (metrics_code, metrics_body),
        (code_bad, body_bad),
        (code_good, body_good),
        (health_after_code, health_after_body),
    ) = asyncio.run(scenario())

    assert status_code == 200
    status = json.loads(status_body)
    assert set(status["workers"]) == {"w0", "w1"}
    assert health_code == 200
    assert metrics_code == 200
    assert 'shard="w0"' in metrics_body

    assert code_bad == 422
    assert json.loads(body_bad)["accepted"] is False
    assert code_good == 200
    accepted = json.loads(body_good)
    assert accepted["accepted"] is True
    assert accepted["generations"] == {"w0": 1, "w1": 1}
    assert health_after_code == 200
    assert json.loads(health_after_body)["generations"] == [1]
