"""Cross-process trace propagation and the span-join waterfall.

End-to-end half: in-process PDP workers behind a :class:`ShardRouter`
with head-sampling at 1.0, asserting the parentage chain the ISSUE
demands — the worker span's ``parent_span_id`` IS the router span's
``span_id``, for the same trace id, across both wire formats.
Unit half: :func:`join_trace` ordering, depth, orphan roots, and
unreachable-source tolerance.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import ShardRouter
from repro.cluster.liveops import join_trace
from repro.core import AccessRequest, MediationEngine
from repro.obs.trace import TraceContext
from repro.service import (
    PDPConfig,
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)


def make_server(policy, **config) -> PDPServer:
    return PDPServer(
        PolicyDecisionPoint(MediationEngine(policy), PDPConfig(**config))
    )


async def start_cluster(tv_policy, n=2, **router_kwargs):
    servers = []
    for _ in range(n):
        server = make_server(tv_policy)
        await server.start()
        servers.append(server)
    router = ShardRouter(
        {f"w{i}": ("127.0.0.1", s.port) for i, s in enumerate(servers)},
        **router_kwargs,
    )
    await router.start()
    return router, servers


async def stop_cluster(router, servers):
    await router.stop()
    for server in servers:
        await server.stop()


def joined_for(router, servers, trace_id):
    reports = {
        f"w{i}": server.pdp.find_trace(trace_id)
        for i, server in enumerate(servers)
    }
    reports["router"] = router.find_trace(trace_id)
    return join_trace(reports)


def assert_parentage(spans):
    """The ISSUE's acceptance shape: router root, worker child."""
    router_spans = [s for s in spans if s["service"] == "router"]
    worker_spans = [s for s in spans if s["service"] == "pdp"]
    assert router_spans and worker_spans
    root = router_spans[0]
    child = worker_spans[0]
    assert root["parent_span_id"] == "" or root["depth"] == 0
    assert child["parent_span_id"] == root["span_id"]
    assert child["depth"] == root["depth"] + 1
    assert child["trace_id"] == root["trace_id"]


# ----------------------------------------------------------------------
# End-to-end propagation
# ----------------------------------------------------------------------
def test_router_originates_and_worker_continues(tv_policy) -> None:
    async def scenario():
        router, servers = await start_cluster(
            tv_policy, trace_sample_rate=1.0
        )
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            response = await client.decide(
                AccessRequest("watch", "livingroom/tv", subject="alice"),
                environment_roles={"free-time"},
            )
            await client.close()
            trace_ids = router.recent_traces()
            return (
                response.outcome,
                trace_ids,
                joined_for(router, servers, trace_ids[0]),
            )
        finally:
            await stop_cluster(router, servers)

    outcome, trace_ids, spans = asyncio.run(scenario())
    assert outcome is PDPOutcome.GRANT
    assert len(trace_ids) == 1
    assert_parentage(spans)
    names = {s["name"] for s in spans}
    assert "router.route" in names


def test_client_originated_context_propagates(tv_policy) -> None:
    """A caller-minted trace id survives router rewrite to the worker."""

    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            ctx = TraceContext.origin()
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            await client.decide(
                AccessRequest("watch", "livingroom/tv", subject="alice"),
                environment_roles={"free-time"},
                trace=ctx,
            )
            await client.close()
            return ctx.trace_id, joined_for(router, servers, ctx.trace_id)
        finally:
            await stop_cluster(router, servers)

    trace_id, spans = asyncio.run(scenario())
    assert spans, "client-originated trace must be recorded"
    assert all(s["trace_id"] == trace_id for s in spans)
    assert_parentage(spans)
    # The router span's parent is the *client's* span id.
    router_span = [s for s in spans if s["service"] == "router"][0]
    assert router_span["parent_span_id"] != ""


def test_unsampled_context_records_nothing(tv_policy) -> None:
    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            ctx = TraceContext.origin(sampled=False)
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            await client.decide(
                AccessRequest("watch", "livingroom/tv", subject="alice"),
                environment_roles={"free-time"},
                trace=ctx,
            )
            await client.close()
            return joined_for(router, servers, ctx.trace_id)
        finally:
            await stop_cluster(router, servers)

    assert asyncio.run(scenario()) == []


def test_default_rate_traces_nothing(tv_policy) -> None:
    async def scenario():
        router, servers = await start_cluster(tv_policy)
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            for subject in ("mom", "alice"):
                await client.decide(
                    AccessRequest("watch", "livingroom/tv", subject=subject),
                    environment_roles={"free-time"},
                )
            await client.close()
            return router.recent_traces()
        finally:
            await stop_cluster(router, servers)

    assert asyncio.run(scenario()) == []


# ----------------------------------------------------------------------
# join_trace unit behavior
# ----------------------------------------------------------------------
def span(span_id, parent="", start=0.0, name="n", service="x"):
    return {
        "trace_id": "t",
        "span_id": span_id,
        "parent_span_id": parent,
        "name": name,
        "service": service,
        "start_s": start,
    }


class TestJoinTrace:
    def test_waterfall_depth_and_order(self) -> None:
        joined = join_trace(
            {
                "router": [span("r1", start=1.0, service="router")],
                "w0": [
                    span("c2", parent="r1", start=3.0),
                    span("c1", parent="r1", start=2.0),
                    span("g1", parent="c1", start=2.5),
                ],
            }
        )
        assert [s["span_id"] for s in joined] == ["r1", "c1", "g1", "c2"]
        assert [s["depth"] for s in joined] == [0, 1, 2, 1]
        assert joined[0]["shard"] == "router"
        assert joined[1]["shard"] == "w0"

    def test_orphan_parent_becomes_root(self) -> None:
        joined = join_trace({"w0": [span("a", parent="missing")]})
        assert [s["depth"] for s in joined] == [0]

    def test_unreachable_source_tolerated(self) -> None:
        joined = join_trace({"router": [span("r1")], "w1": None})
        assert [s["span_id"] for s in joined] == ["r1"]

    def test_sibling_roots_order_by_start_then_id(self) -> None:
        joined = join_trace(
            {"a": [span("z", start=1.0)], "b": [span("a", start=1.0)]}
        )
        assert [s["span_id"] for s in joined] == ["a", "z"]

    def test_empty_reports(self) -> None:
        assert join_trace({}) == []
        assert join_trace({"w0": []}) == []
