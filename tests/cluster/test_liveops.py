"""Unit tests for the pure live-ops merge functions."""

from __future__ import annotations

from repro.cluster import merge_flight, merge_health, merge_prometheus

COUNTER_A = (
    "# TYPE grbac_requests_total counter\n"
    "grbac_requests_total 5\n"
)
COUNTER_B = (
    "# TYPE grbac_requests_total counter\n"
    "grbac_requests_total 7\n"
)
HISTOGRAM = (
    "# TYPE grbac_latency_us histogram\n"
    'grbac_latency_us_bucket{le="100"} 3\n'
    'grbac_latency_us_bucket{le="+Inf"} 4\n'
    "grbac_latency_us_sum 250\n"
    "grbac_latency_us_count 4\n"
)


# ----------------------------------------------------------------------
# merge_prometheus
# ----------------------------------------------------------------------
def test_merge_adds_shard_labels_and_single_type_lines() -> None:
    merged = merge_prometheus({"w0": COUNTER_A, "w1": COUNTER_B})
    assert merged.count("# TYPE grbac_requests_total counter") == 1
    assert 'grbac_requests_total{shard="w0"} 5' in merged
    assert 'grbac_requests_total{shard="w1"} 7' in merged


def test_merge_preserves_existing_labels() -> None:
    text = (
        "# TYPE grbac_decisions_total counter\n"
        'grbac_decisions_total{outcome="grant"} 9\n'
    )
    merged = merge_prometheus({"w3": text})
    assert (
        'grbac_decisions_total{outcome="grant",shard="w3"} 9' in merged
    )


def test_histogram_series_grouped_under_one_family_type() -> None:
    merged = merge_prometheus({"w0": HISTOGRAM, "w1": HISTOGRAM})
    # One TYPE declaration for the family; bucket/sum/count samples
    # all carry shard labels and sit under it.
    assert merged.count("# TYPE grbac_latency_us histogram") == 1
    assert merged.count('grbac_latency_us_sum{shard=') == 2
    assert 'grbac_latency_us_bucket{le="100",shard="w1"} 3' in merged
    type_at = merged.index("# TYPE grbac_latency_us histogram")
    assert type_at < merged.index("grbac_latency_us_bucket")


def test_unparseable_shard_counts_as_scrape_error() -> None:
    merged = merge_prometheus({"w0": COUNTER_A, "w1": "}{ not prom"})
    assert 'grbac_requests_total{shard="w0"} 5' in merged
    assert 'grbac_cluster_scrape_errors_total{shard="w1"} 1' in merged
    assert 'grbac_cluster_scrape_errors_total{shard="w0"} 0' in merged


def test_merge_of_nothing_is_just_the_error_family() -> None:
    merged = merge_prometheus({})
    assert "grbac_cluster_scrape_errors_total" in merged
    assert merged.endswith("\n")


# ----------------------------------------------------------------------
# merge_health
# ----------------------------------------------------------------------
def test_health_all_good_single_generation() -> None:
    merged = merge_health(
        {
            "w0": {"healthy": True, "generation": 3},
            "w1": {"healthy": True, "generation": 3},
        }
    )
    assert merged["healthy"] is True
    assert merged["generations"] == [3]
    assert merged["mixed_generations"] is False
    assert merged["workers"]["w0"]["reachable"] is True


def test_health_mixed_generations_is_unhealthy() -> None:
    merged = merge_health(
        {
            "w0": {"healthy": True, "generation": 3},
            "w1": {"healthy": True, "generation": 4},
        }
    )
    assert merged["healthy"] is False
    assert merged["mixed_generations"] is True
    assert merged["generations"] == [3, 4]


def test_health_unreachable_worker_is_unhealthy() -> None:
    merged = merge_health(
        {"w0": {"healthy": True, "generation": 0}, "w1": None}
    )
    assert merged["healthy"] is False
    assert merged["workers"]["w1"] == {
        "healthy": False,
        "reachable": False,
    }


def test_health_of_empty_cluster_is_unhealthy() -> None:
    assert merge_health({})["healthy"] is False


# ----------------------------------------------------------------------
# merge_flight
# ----------------------------------------------------------------------
def test_flight_interleave_tags_shards_and_orders() -> None:
    merged = merge_flight(
        {
            "w1": [{"seq": 2, "subject": "b"}, {"seq": 5, "subject": "d"}],
            "w0": [{"seq": 1, "subject": "a"}, {"seq": 4, "subject": "c"}],
        }
    )
    assert [e["shard"] for e in merged] == ["w0", "w1", "w0", "w1"]
    assert [e["seq"] for e in merged] == [1, 2, 4, 5]


def test_flight_limit_keeps_the_last_n() -> None:
    merged = merge_flight(
        {
            "w0": [{"seq": 1}, {"seq": 3}],
            "w1": [{"seq": 2}, {"seq": 9}],
        },
        limit=2,
    )
    assert [e["seq"] for e in merged] == [3, 9]


def test_flight_equal_seq_breaks_ties_by_shard() -> None:
    merged = merge_flight({"w1": [{"seq": 7}], "w0": [{"seq": 7}]})
    assert [e["shard"] for e in merged] == ["w0", "w1"]
