"""The consistent-hash ring: evenness, minimal remap, determinism.

The ring is the cluster's shard map: every decision cache stays hot
only if (a) one key always lands on one worker and (b) membership
changes move as few keys as possible.  These tests pin both, plus the
statistical property the vnode count buys — reasonable evenness
across 4–16 workers without a rebalancer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import ConsistentHashRing, stable_hash
from repro.exceptions import ServiceError

KEYS = [f"home{i}/device{j}" for i in range(500) for j in range(4)]


def members(n: int) -> list:
    return [f"w{i}" for i in range(n)]


# ----------------------------------------------------------------------
# Basics
# ----------------------------------------------------------------------
def test_empty_ring_refuses_to_route() -> None:
    ring = ConsistentHashRing()
    with pytest.raises(ServiceError):
        ring.route("alice")


def test_single_member_owns_everything() -> None:
    ring = ConsistentHashRing(["w0"])
    assert all(ring.route(key) == "w0" for key in KEYS[:100])


def test_duplicate_and_empty_members_rejected() -> None:
    ring = ConsistentHashRing(["w0"])
    with pytest.raises(ServiceError):
        ring.add("w0")
    with pytest.raises(ServiceError):
        ring.add("")
    with pytest.raises(ServiceError):
        ConsistentHashRing(vnodes=0)


def test_stable_hash_is_stable_across_processes() -> None:
    # md5-derived, never the salted builtin hash(): these exact values
    # must hold on any interpreter, or worker restarts reshuffle keys.
    assert stable_hash("alice") == stable_hash("alice")
    assert stable_hash("w0#0") != stable_hash("w0#1")
    assert 0 <= stable_hash("anything") < 2**32


def test_routing_is_deterministic() -> None:
    first = ConsistentHashRing(members(8))
    second = ConsistentHashRing(list(reversed(members(8))))
    # Same membership => same ownership, regardless of insert order.
    assert [first.route(k) for k in KEYS] == [second.route(k) for k in KEYS]


# ----------------------------------------------------------------------
# Satellite: evenness across 4..16 workers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [4, 8, 12, 16])
def test_distribution_evenness(n: int) -> None:
    ring = ConsistentHashRing(members(n))
    counts = ring.distribution(KEYS)
    assert set(counts) == set(members(n))
    expected = len(KEYS) / n
    # 128 vnodes/member keeps every worker within ~2x of fair share
    # for a realistic keyspace; gross skew here means the ring (or the
    # hash) broke, not bad luck.
    for member, count in counts.items():
        assert count > 0.45 * expected, (member, counts)
        assert count < 2.0 * expected, (member, counts)


# ----------------------------------------------------------------------
# Satellite: minimal remap on join and leave
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n", [4, 8, 16])
def test_join_remaps_roughly_one_nth(n: int) -> None:
    ring = ConsistentHashRing(members(n))
    before = {key: ring.route(key) for key in KEYS}
    ring.add(f"w{n}")
    moved = sum(1 for key in KEYS if ring.route(key) != before[key])
    fair = len(KEYS) / (n + 1)
    # Consistent hashing's contract: a join steals ~1/(n+1) of the
    # keys and nothing else moves.
    assert moved < 2.0 * fair, (moved, fair)
    for key in KEYS:
        after = ring.route(key)
        assert after == before[key] or after == f"w{n}"


@pytest.mark.parametrize("n", [4, 8, 16])
def test_leave_remaps_only_the_departed_keys(n: int) -> None:
    ring = ConsistentHashRing(members(n))
    before = {key: ring.route(key) for key in KEYS}
    ring.remove("w0")
    for key in KEYS:
        if before[key] == "w0":
            assert ring.route(key) != "w0"
        else:
            # Keys that never lived on w0 must not move at all.
            assert ring.route(key) == before[key]


def test_join_then_leave_restores_ownership() -> None:
    ring = ConsistentHashRing(members(4))
    before = {key: ring.route(key) for key in KEYS}
    ring.add("w4")
    ring.remove("w4")
    assert {key: ring.route(key) for key in KEYS} == before


# ----------------------------------------------------------------------
# Property: fixed membership => stable routing
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=16),
    keys=st.lists(st.text(min_size=1, max_size=24), min_size=1, max_size=40),
)
def test_fixed_membership_routing_is_a_pure_function(n, keys) -> None:
    ring = ConsistentHashRing(members(n))
    other = ConsistentHashRing(members(n))
    for key in keys:
        owner = ring.route(key)
        assert owner in ring.members
        # Same key, same ring state, any time, any instance.
        assert ring.route(key) == owner
        assert other.route(key) == owner


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    keys=st.lists(st.text(min_size=1, max_size=24), min_size=1, max_size=30),
    victim=st.integers(min_value=0, max_value=9),
)
def test_membership_churn_never_strands_a_key(n, keys, victim) -> None:
    ring = ConsistentHashRing(members(n))
    name = f"w{victim % n}"
    ring.remove(name)
    ring.add(name)
    for key in keys:
        assert ring.route(key) in ring.members
