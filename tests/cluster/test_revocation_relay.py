"""Push revocation through the shard router (§4.2.2 at cluster scale).

The router never interprets revocations: ``_Upstream._pump`` forwards
any worker frame byte-for-byte and any NDJSON line whose id is not an
outstanding request, so a worker's unsolicited ``revoke`` reaches the
client unchanged.  The ``env`` op is the one continuous-authorization
message the router *does* treat specially — it broadcasts to every
worker, because each worker holds its own environment replica.

The restart test pins the failure semantics: a worker's
:class:`SessionGrantTable` dies with the worker, so a grant watched
by a dead worker is simply gone — the client re-subscribes after the
restart and the new worker's table takes over.
"""

from __future__ import annotations

import asyncio
from datetime import datetime

import pytest

from repro.cluster import ShardRouter
from repro.core import AccessRequest, GrbacPolicy, MediationEngine
from repro.env.runtime import EnvironmentRuntime
from repro.env.temporal import time_window
from repro.service import (
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)

EVENING = datetime(2000, 1, 17, 20, 0)  # inside free-time 19:00-22:00
REQUEST = AccessRequest("watch", "den/tv", subject="bobby")


def make_worker(port: int = 0) -> PDPServer:
    runtime = EnvironmentRuntime(start=EVENING)
    policy = GrbacPolicy()
    policy.add_subject("bobby")
    policy.add_subject_role("child")
    policy.assign_subject("bobby", "child")
    policy.add_object("den/tv")
    policy.add_object_role("entertainment")
    policy.assign_object("den/tv", "entertainment")
    runtime.define_time_role(policy, "free-time", time_window("19:00", "22:00"))
    policy.grant("child", "watch", "entertainment", "free-time")
    engine = MediationEngine(policy, runtime.activator)
    pdp = PolicyDecisionPoint(engine, env_revision=runtime)
    return PDPServer(pdp, port=port, environment=runtime)


@pytest.mark.parametrize("wire", ["json", "binary"])
def test_revocation_relays_through_router(wire: str) -> None:
    async def scenario():
        worker = make_worker()
        await worker.start()
        router = ShardRouter({"w0": ("127.0.0.1", worker.port)})
        await router.start()
        try:
            client = await RemotePDPClient.connect(
                "127.0.0.1", router.port, wire=wire
            )
            received = asyncio.Event()
            client.subscribe(lambda r: received.set())
            response = await client.decide(REQUEST, subscribe=True)
            assert response.outcome is PDPOutcome.GRANT
            assert worker.pdp.grants.grants == 1
            # env rides the broadcast path; the flip's revocations are
            # queued on the worker before its answer, and the relayed
            # push races the answer at worst by one pump iteration.
            out = await client.env("advance", seconds=3 * 3600)
            assert out["active"] == []
            await asyncio.wait_for(received.wait(), timeout=2.0)
            revocations = list(client.revocations)
            await client.close()
            return revocations
        finally:
            await router.stop()
            await worker.stop()

    revocations = asyncio.run(scenario())
    assert len(revocations) == 1
    assert revocations[0].subject == "bobby"
    assert revocations[0].roles == ("free-time",)
    assert "free-time" in revocations[0].reason


def test_env_broadcast_reaches_every_worker() -> None:
    async def scenario():
        workers = [make_worker(), make_worker()]
        for worker in workers:
            await worker.start()
        router = ShardRouter(
            {
                f"w{i}": ("127.0.0.1", w.port)
                for i, w in enumerate(workers)
            }
        )
        await router.start()
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            revisions_before = [
                w.environment.revision for w in workers
            ]
            await client.env("advance", seconds=3 * 3600)
            # The answer resolves on the first worker's reply; the
            # others process the same broadcast line — give their
            # replicas a beat to apply it.
            for _ in range(50):
                if all(
                    w.environment.revision > before
                    for w, before in zip(workers, revisions_before)
                ):
                    break
                await asyncio.sleep(0.02)
            actives = [sorted(w.environment.active_roles()) for w in workers]
            await client.close()
            return actives
        finally:
            await router.stop()
            for worker in workers:
                await worker.stop()

    actives = asyncio.run(scenario())
    # 23:00 everywhere: every replica crossed the 22:00 boundary.
    assert actives == [[], []]


def test_worker_restart_drops_watches_and_resubscribe_recovers() -> None:
    async def scenario():
        worker = make_worker()
        await worker.start()
        port = worker.port
        router = ShardRouter({"w0": ("127.0.0.1", port)})
        await router.start()
        try:
            client = await RemotePDPClient.connect("127.0.0.1", router.port)
            received = asyncio.Event()
            client.subscribe(lambda r: received.set())
            first = await client.decide(REQUEST, subscribe=True)
            assert first.outcome is PDPOutcome.GRANT
            assert worker.pdp.grants.grants == 1

            # Mid-stream restart: the grant table dies with the worker.
            # stop() only closes the listener (in-process handlers keep
            # their sockets); a crashed process drops them — simulate
            # that by severing the router's upstream connections too.
            await worker.stop()
            for session in list(router._sessions):
                for upstream in list(session.upstreams.values()):
                    await upstream.close(synthesize=True)
            replacement = make_worker(port=port)
            await replacement.start()
            assert replacement.pdp.grants.grants == 0

            # Re-subscribing is the client's recovery move; the router
            # reconnects its upstream lazily on the next request.  The
            # first attempts may land while the old upstream is being
            # torn down — retry like a real client would.
            second = None
            for _ in range(20):
                try:
                    second = await client.decide(REQUEST, subscribe=True)
                    if second.outcome is PDPOutcome.GRANT:
                        break
                except Exception:
                    pass
                await asyncio.sleep(0.1)
            assert second is not None
            assert second.outcome is PDPOutcome.GRANT
            assert replacement.pdp.grants.grants == 1

            out = await client.env("advance", seconds=3 * 3600)
            assert out["active"] == []
            await asyncio.wait_for(received.wait(), timeout=2.0)
            revocations = list(client.revocations)
            await client.close()
            await replacement.stop()
            # Only the re-subscribed grant was ever revoked: the
            # pre-restart watch died with the old worker's table.
            return first.request_id, second.request_id, revocations
        finally:
            await router.stop()
            await worker.stop()

    first_id, second_id, revocations = asyncio.run(scenario())
    assert len(revocations) == 1
    assert revocations[0].id == second_id
    assert revocations[0].roles == ("free-time",)
