"""Tests for explicit authenticators and evidence objects."""

import pytest

from repro.auth.authenticator import (
    Evidence,
    PasswordAuthenticator,
    Presence,
    TokenAuthenticator,
)
from repro.auth.claims import IdentityClaim, RoleClaim
from repro.exceptions import AuthenticationError


class TestEvidence:
    def test_empty(self):
        assert Evidence("src").empty
        assert not Evidence(
            "src", identity_claims=(IdentityClaim("a", 0.5),)
        ).empty

    def test_identity_map_keeps_best(self):
        evidence = Evidence(
            "src",
            identity_claims=(
                IdentityClaim("alice", 0.5),
                IdentityClaim("alice", 0.8),
                IdentityClaim("bob", 0.3),
            ),
        )
        assert evidence.identity_map() == {"alice": 0.8, "bob": 0.3}

    def test_role_map(self):
        evidence = Evidence(
            "src", role_claims=(RoleClaim("child", 0.9), RoleClaim("child", 0.7))
        )
        assert evidence.role_map() == {"child": 0.9}

    def test_describe(self):
        assert "<nothing>" in Evidence("floor").describe()
        text = Evidence(
            "floor", identity_claims=(IdentityClaim("alice", 0.75),)
        ).describe()
        assert "floor" in text and "alice" in text


class TestPresence:
    def test_features_copied(self):
        features = {"weight_lb": 94}
        presence = Presence("alice", features)
        features["weight_lb"] = 10
        assert presence.feature("weight_lb") == 94

    def test_feature_default(self):
        assert Presence("alice").feature("missing", 1) == 1


class TestPasswordAuthenticator:
    def test_successful_login(self):
        auth = PasswordAuthenticator()
        auth.enroll("mom", "hunter2")
        evidence = auth.login("mom", "hunter2")
        assert evidence.identity_map() == {"mom": 1.0}

    def test_wrong_password_empty_evidence(self):
        auth = PasswordAuthenticator()
        auth.enroll("mom", "hunter2")
        assert auth.login("mom", "wrong").empty

    def test_unenrolled_subject_empty_evidence(self):
        auth = PasswordAuthenticator()
        assert auth.login("stranger", "x").empty

    def test_presence_without_password_empty(self):
        auth = PasswordAuthenticator()
        auth.enroll("mom", "hunter2")
        assert auth.observe(Presence("mom")).empty

    def test_empty_password_rejected_at_enroll(self):
        with pytest.raises(AuthenticationError):
            PasswordAuthenticator().enroll("mom", "")

    def test_reenroll_replaces(self):
        auth = PasswordAuthenticator()
        auth.enroll("mom", "old")
        auth.enroll("mom", "new")
        assert auth.login("mom", "old").empty
        assert not auth.login("mom", "new").empty

    def test_secrets_not_stored_in_plaintext(self):
        auth = PasswordAuthenticator()
        auth.enroll("mom", "hunter2")
        stored = list(auth._secrets.values())[0]
        assert "hunter2" not in stored


class TestTokenAuthenticator:
    def test_issued_token_identifies_owner(self):
        auth = TokenAuthenticator(confidence=0.95)
        auth.issue("dad", "fob-1")
        evidence = auth.observe(Presence("whoever", {"token": "fob-1"}))
        assert evidence.identity_map() == {"dad": 0.95}

    def test_unknown_token_empty(self):
        auth = TokenAuthenticator()
        assert auth.observe(Presence("x", {"token": "ghost"})).empty

    def test_revoked_token_empty(self):
        auth = TokenAuthenticator()
        auth.issue("dad", "fob-1")
        auth.revoke("fob-1")
        assert auth.observe(Presence("x", {"token": "fob-1"})).empty

    def test_duplicate_issue_rejected(self):
        auth = TokenAuthenticator()
        auth.issue("dad", "fob-1")
        with pytest.raises(AuthenticationError):
            auth.issue("mom", "fob-1")

    def test_token_is_evidence_of_owner_not_bearer(self):
        # A lent/stolen badge identifies its OWNER - which is exactly
        # why confidence should stay below 1.0.
        auth = TokenAuthenticator()
        auth.issue("dad", "fob-1")
        evidence = auth.observe(Presence("burglar", {"token": "fob-1"}))
        assert "dad" in evidence.identity_map()
