"""Tests for claims and confidence fusion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.auth.claims import IdentityClaim, RoleClaim, validate_confidence
from repro.auth.fusion import FusionStrategy, fuse, fuse_claim_map
from repro.exceptions import AuthenticationError


class TestClaims:
    def test_identity_claim(self):
        claim = IdentityClaim("alice", 0.75, "smart-floor")
        assert claim.subject == "alice"
        assert "alice@0.75" in claim.describe()
        assert "smart-floor" in claim.describe()

    def test_role_claim(self):
        claim = RoleClaim("child", 0.98)
        assert "child@0.98" in claim.describe()

    def test_confidence_validated(self):
        with pytest.raises(AuthenticationError):
            IdentityClaim("alice", 1.5)
        with pytest.raises(AuthenticationError):
            RoleClaim("child", -0.1)
        with pytest.raises(AuthenticationError):
            validate_confidence("high")

    def test_empty_names_rejected(self):
        with pytest.raises(AuthenticationError):
            IdentityClaim("", 0.5)
        with pytest.raises(AuthenticationError):
            RoleClaim("", 0.5)


class TestFuse:
    def test_empty_rejected(self):
        with pytest.raises(AuthenticationError):
            fuse([])

    def test_max_min_mean(self):
        values = [0.2, 0.6, 0.4]
        assert fuse(values, FusionStrategy.MAX) == 0.6
        assert fuse(values, FusionStrategy.MIN) == 0.2
        assert fuse(values, FusionStrategy.MEAN) == pytest.approx(0.4)

    def test_independent_two_sensors(self):
        # Two 0.7 sensors agreeing: 1 - 0.3*0.3 = 0.91.
        assert fuse([0.7, 0.7], FusionStrategy.INDEPENDENT) == pytest.approx(0.91)

    def test_independent_with_certainty(self):
        assert fuse([0.5, 1.0], FusionStrategy.INDEPENDENT) == 1.0

    def test_independent_single_value_identity(self):
        assert fuse([0.42], FusionStrategy.INDEPENDENT) == pytest.approx(0.42)

    def test_paper_example_face_plus_voice(self):
        # §3: face 90%, voice 70% -> agreeing evidence should beat
        # either alone under independence.
        combined = fuse([0.9, 0.7], FusionStrategy.INDEPENDENT)
        assert combined == pytest.approx(0.97)


class TestFuseProperties:
    confidences = st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8)

    @given(confidences)
    @settings(max_examples=200, deadline=None)
    def test_all_strategies_stay_in_unit_interval(self, values):
        for strategy in FusionStrategy:
            assert 0.0 <= fuse(values, strategy) <= 1.0

    @given(confidences)
    @settings(max_examples=200, deadline=None)
    def test_independent_dominates_max(self, values):
        # Independent fusion never reports less than the best sensor.
        assert fuse(values, FusionStrategy.INDEPENDENT) >= (
            fuse(values, FusionStrategy.MAX) - 1e-9
        )

    @given(confidences, st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_independent_monotone_in_added_evidence(self, values, extra):
        # Adding evidence never lowers independent-fused confidence.
        assert fuse(values + [extra], FusionStrategy.INDEPENDENT) >= (
            fuse(values, FusionStrategy.INDEPENDENT) - 1e-9
        )

    @given(confidences)
    @settings(max_examples=100, deadline=None)
    def test_min_lower_bounds_everything(self, values):
        low = fuse(values, FusionStrategy.MIN)
        for strategy in FusionStrategy:
            assert fuse(values, strategy) >= low - 1e-9


class TestFuseClaimMap:
    def test_keywise_fusion(self):
        fused = fuse_claim_map(
            [{"alice": 0.7, "bobby": 0.2}, {"alice": 0.7}],
            FusionStrategy.INDEPENDENT,
        )
        assert fused["alice"] == pytest.approx(0.91)
        # Missing key contributes no evidence, not zero.
        assert fused["bobby"] == pytest.approx(0.2)

    def test_empty_input(self):
        assert fuse_claim_map([]) == {}
