"""Tests for the authentication service (the §5.2 pipeline)."""

import pytest

from repro.auth.authenticator import (
    Evidence,
    PasswordAuthenticator,
    Presence,
    TokenAuthenticator,
)
from repro.auth.claims import IdentityClaim, RoleClaim
from repro.auth.fusion import FusionStrategy
from repro.auth.service import AuthenticationService
from repro.exceptions import AuthenticationError


class FakeSensor:
    """An authenticator returning canned evidence."""

    name = "fake"

    def __init__(self, *claims):
        identity = tuple(c for c in claims if isinstance(c, IdentityClaim))
        roles = tuple(c for c in claims if isinstance(c, RoleClaim))
        self._evidence = Evidence(self.name, identity, roles)

    def observe(self, presence):
        return self._evidence


@pytest.fixture
def service(figure2_policy):
    return AuthenticationService(figure2_policy, identity_threshold=0.5)


class TestAuthenticate:
    def test_requires_authenticators(self, service):
        with pytest.raises(AuthenticationError):
            service.authenticate(Presence("alice"))

    def test_single_sensor_identity(self, service):
        service.register(FakeSensor(IdentityClaim("alice", 0.8)))
        result = service.authenticate(Presence("alice"))
        assert result.subject == "alice"
        assert result.identity_confidence == pytest.approx(0.8)

    def test_identity_derives_role_confidence(self, service):
        service.register(FakeSensor(IdentityClaim("alice", 0.8)))
        result = service.authenticate(Presence("alice"))
        # Alice is assigned 'child' in the figure-2 policy.
        assert result.role_confidences["child"] == pytest.approx(0.8)

    def test_direct_role_claim_beats_weaker_derivation(self, service):
        service.register(
            FakeSensor(IdentityClaim("alice", 0.75), RoleClaim("child", 0.98))
        )
        result = service.authenticate(Presence("alice"))
        assert result.role_confidences["child"] == pytest.approx(0.98)

    def test_multi_sensor_fusion(self, figure2_policy):
        service = AuthenticationService(
            figure2_policy, strategy=FusionStrategy.INDEPENDENT
        )
        service.register(FakeSensor(IdentityClaim("alice", 0.7)))
        service.register(FakeSensor(IdentityClaim("alice", 0.7)))
        result = service.authenticate(Presence("alice"))
        assert result.identity_confidence == pytest.approx(0.91)

    def test_best_candidate_wins(self, service):
        service.register(
            FakeSensor(IdentityClaim("alice", 0.6), IdentityClaim("bobby", 0.3))
        )
        result = service.authenticate(Presence("alice"))
        assert result.subject == "alice"
        assert result.identity_confidences["bobby"] == pytest.approx(0.3)

    def test_tie_broken_deterministically(self, service):
        service.register(
            FakeSensor(IdentityClaim("alice", 0.5), IdentityClaim("bobby", 0.5))
        )
        # Ties break by name (max over (confidence, name)).
        assert service.authenticate(Presence("x")).subject == "bobby"

    def test_no_evidence_at_all(self, service):
        service.register(FakeSensor())
        result = service.authenticate(Presence("alice"))
        assert result.subject is None
        assert result.identity_confidence == 0.0
        assert result.role_confidences == {}

    def test_describe(self, service):
        service.register(FakeSensor(IdentityClaim("alice", 0.8)))
        text = service.authenticate(Presence("alice")).describe()
        assert "alice@0.80" in text


class TestBuildRequest:
    def test_identity_above_threshold_attached(self, service):
        service.register(FakeSensor(IdentityClaim("alice", 0.8)))
        result = service.authenticate(Presence("alice"))
        request = service.build_request(result, "watch", "tv")
        assert request.subject == "alice"
        assert request.identity_confidence == pytest.approx(0.8)

    def test_identity_below_threshold_dropped(self, figure2_policy):
        service = AuthenticationService(figure2_policy, identity_threshold=0.9)
        service.register(
            FakeSensor(IdentityClaim("alice", 0.75), RoleClaim("child", 0.98))
        )
        result = service.authenticate(Presence("alice"))
        request = service.build_request(result, "watch", "tv")
        assert request.subject is None
        assert request.role_claims["child"] == pytest.approx(0.98)

    def test_unknown_role_claims_filtered(self, service):
        service.register(
            FakeSensor(IdentityClaim("alice", 0.8), RoleClaim("wizard", 0.99))
        )
        result = service.authenticate(Presence("alice"))
        request = service.build_request(result, "watch", "tv")
        assert "wizard" not in request.role_claims

    def test_nothing_usable_raises(self, figure2_policy):
        service = AuthenticationService(figure2_policy, identity_threshold=0.99)
        service.register(FakeSensor(RoleClaim("wizard", 0.99)))
        result = service.authenticate(Presence("x"))
        with pytest.raises(AuthenticationError):
            service.build_request(result, "watch", "tv")

    def test_threshold_validation(self, figure2_policy):
        with pytest.raises(AuthenticationError):
            AuthenticationService(figure2_policy, identity_threshold=1.5)


class TestWithRealAuthenticators:
    def test_password_plus_token_stack(self, figure2_policy):
        service = AuthenticationService(figure2_policy)
        password = PasswordAuthenticator()
        password.enroll("mom", "secret")
        token = TokenAuthenticator(confidence=0.95)
        token.issue("mom", "fob")
        service.register(password)
        service.register(token)
        presence = Presence("mom", {"password": "secret", "token": "fob"})
        result = service.authenticate(presence)
        assert result.subject == "mom"
        assert result.identity_confidence == 1.0  # certainty dominates
        assert len(service.authenticators()) == 2
