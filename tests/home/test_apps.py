"""Tests for the four Aware Home applications."""

from datetime import datetime

import pytest

from repro.exceptions import AccessDeniedError, UnknownEntityError
from repro.home.apps import (
    AGENT_SUBJECT,
    CyberfridgeApp,
    ElderCareApp,
    MediaGuardApp,
    UtilityApp,
)
from repro.home.devices import (
    Camera,
    DoorLock,
    MedicalMonitor,
    Refrigerator,
    Television,
    Thermostat,
    WaterHeater,
)
from repro.home.registry import SecureHome
from repro.home.residents import standard_household
from repro.policy.templates import install_figure2_roles
from repro.sensors.motion import OccupancyProvider


@pytest.fixture
def home() -> SecureHome:
    home = SecureHome(start=datetime(2000, 1, 17, 19, 0))  # Monday evening
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    return home


class TestCyberfridge:
    @pytest.fixture
    def app(self, home) -> CyberfridgeApp:
        fridge = Refrigerator("fridge", "kitchen")
        home.register_device(fridge)
        CyberfridgeApp.install_policy(home)
        home.policy.add_subject("grocer")
        home.policy.assign_subject("grocer", "delivery-agent")
        return CyberfridgeApp(home, fridge)

    def test_family_members_read_from_anywhere(self, app):
        # Alice is a child -> family-member via hierarchy.
        assert app.read_inventory("alice") == {}

    def test_parents_manage_inventory(self, app):
        assert app.stock("mom", "milk", 2) == 2
        assert app.consume("dad", "milk", 1) == 1

    def test_children_cannot_modify(self, app):
        with pytest.raises(AccessDeniedError):
            app.stock("alice", "soda", 6)

    def test_delivery_agent_read_only(self, app):
        assert app.read_inventory("grocer") == {}
        with pytest.raises(AccessDeniedError):
            app.stock("grocer", "milk", 1)

    def test_auto_reorder_below_par(self, app):
        app.set_par_level("milk", 3)
        app.set_par_level("eggs", 12)
        app.stock("mom", "milk", 1)
        orders = app.check_and_reorder("mom")
        assert {"item": "eggs", "quantity": 12} in orders
        assert {"item": "milk", "quantity": 2} in orders
        assert app.pending_orders() == orders

    def test_no_reorder_when_stocked(self, app):
        app.set_par_level("milk", 1)
        app.stock("mom", "milk", 5)
        assert app.check_and_reorder("mom") == []

    def test_par_level_validation(self, app):
        with pytest.raises(ValueError):
            app.set_par_level("milk", 0)
        app.set_par_level("milk", 2)
        assert app.par_levels() == {"milk": 2}


class TestElderCare:
    @pytest.fixture
    def app(self, home) -> ElderCareApp:
        monitor = MedicalMonitor("vitals", "master-bedroom")
        camera = Camera("camera", "master-bedroom")
        door = DoorLock("front-door", "foyer")
        for device in (monitor, camera, door):
            home.register_device(device)
        app = ElderCareApp(home, monitor, camera, door)
        ElderCareApp.install_policy(home)
        home.policy.add_subject("nurse")
        home.policy.assign_subject("nurse", "caregiver")
        home.policy.add_subject("uncle")
        home.policy.assign_subject("uncle", "relative")
        home.policy.grant("caregiver", "clear_alert", "information")
        return app

    def test_caregiver_reads_vitals_anytime(self, app):
        app.record_vitals(72, 118)
        assert app.read_vitals("nurse") == [{"heart_rate": 72, "systolic": 118}]

    def test_relative_snapshot_only_normally(self, app):
        assert app.view_camera("uncle")["kind"] == "snapshot"
        with pytest.raises(AccessDeniedError):
            app.view_camera("uncle", stream=True)

    def test_emergency_escalates_access(self, app):
        assert not app.alert_active
        app.record_vitals(150, 195)  # abnormal -> alert
        assert app.alert_active
        assert app.view_camera("uncle", stream=True)["kind"] == "stream"
        assert app.read_vitals("uncle")
        assert app.unlock_door("nurse") is True

    def test_relative_cannot_unlock_even_in_emergency(self, app):
        app.record_vitals(150, 195)
        with pytest.raises(AccessDeniedError):
            app.unlock_door("uncle")

    def test_clearing_alert_restores_normal_policy(self, app):
        app.record_vitals(150, 195)
        app.clear_alert("nurse")
        assert not app.alert_active
        with pytest.raises(AccessDeniedError):
            app.view_camera("uncle", stream=True)

    def test_relative_cannot_clear_alert(self, app):
        app.record_vitals(150, 195)
        with pytest.raises(AccessDeniedError):
            app.clear_alert("uncle")
        assert app.alert_active


class TestUtility:
    @pytest.fixture
    def app(self, home) -> UtilityApp:
        thermostat = Thermostat("thermostat", "foyer")
        heater = WaterHeater("heater", "garage")
        home.register_device(thermostat)
        home.register_device(heater)
        home.runtime.providers.register(
            OccupancyProvider(home.runtime.location, ["home"])
        )
        app = UtilityApp(home, thermostat, heater)
        UtilityApp.install_policy(home)
        return app

    def test_heats_when_occupied(self, app, home):
        home.move("mom", "kitchen")
        app.tick()
        status = app.status()
        assert status["heating"] is True
        assert status["setpoint_f"] == 68
        # 19:00 is inside the default evening hot-water window.
        assert status["hot_water"] is True

    def test_sets_back_when_empty(self, app, home):
        home.move("mom", "kitchen")
        app.tick()
        home.runtime.location.leave("mom")
        home.runtime.providers.refresh_all()
        app.tick()
        status = app.status()
        assert status["heating"] is False
        assert status["hot_water"] is False

    def test_hot_water_respects_schedule(self, app, home):
        home.move("mom", "kitchen")
        home.runtime.clock.advance(hours=4)  # 23:00, outside windows
        app.tick()
        assert app.status()["hot_water"] is False
        assert app.status()["heating"] is True  # still occupied

    def test_agent_is_a_regular_audited_subject(self, app, home):
        home.move("mom", "kitchen")
        before = home.audit.total
        app.tick()
        agent_records = home.audit.records(subject=AGENT_SUBJECT)
        assert len(agent_records) == home.audit.total - before


class TestMediaGuard:
    @pytest.fixture
    def app(self, home) -> MediaGuardApp:
        tv = Television("tv", "livingroom")
        home.register_device(tv)
        app = MediaGuardApp(home, tv)
        MediaGuardApp.install_policy(home)
        app.add_program(2, "cartoons", "G")
        app.add_program(4, "family-movie", "PG")
        app.add_program(5, "action-movie", "R")
        app.add_program(7, "thriller", "PG-13")
        return app

    def test_child_limited_to_g_and_pg(self, app):
        # §3: "a child may be prohibited from viewing any television
        # program or movie that is not rated G or PG".
        assert app.allowed_channels("alice") == [2, 4]

    def test_parent_watches_anything(self, app):
        assert app.allowed_channels("mom") == [2, 4, 5, 7]

    def test_watch_drives_the_television(self, app):
        result = app.watch("alice", 2)
        assert result == {"channel": 2, "rating": "G"}

    def test_denied_watch_raises_and_leaves_tv_alone(self, app, home):
        tv = home.device("livingroom/tv")
        with pytest.raises(AccessDeniedError):
            app.watch("alice", 5)
        assert tv.state["channel"] != 5

    def test_new_program_immediately_governed(self, app):
        # §5.1's "newly purchased device" argument, applied to media.
        app.add_program(9, "new-cartoon", "G")
        assert app.can_watch("alice", 9)
        app.add_program(10, "new-slasher", "R")
        assert not app.can_watch("alice", 10)

    def test_unlisted_channel(self, app):
        assert not app.can_watch("mom", 99)
        with pytest.raises(UnknownEntityError):
            app.watch("mom", 99)

    def test_bad_rating_rejected(self, app):
        with pytest.raises(UnknownEntityError):
            app.add_program(11, "mystery", "NC-99")

    def test_guide(self, app):
        assert app.guide()[5] == ("program/action-movie", "R")


class TestAppEdgeCases:
    def test_utility_custom_hot_water_window(self, home):
        from repro.env.temporal import time_window

        thermostat = Thermostat("thermostat2", "foyer")
        heater = WaterHeater("heater2", "garage")
        home.register_device(thermostat)
        home.register_device(heater)
        home.runtime.providers.register(
            OccupancyProvider(home.runtime.location, ["home"])
        )
        app = UtilityApp(
            home, thermostat, heater,
            hot_water_windows=time_window("21:00", "22:00"),
        )
        UtilityApp.install_policy(home)
        home.move("mom", "kitchen")
        app.tick()  # 19:00: outside the custom window
        assert app.status()["hot_water"] is False
        home.runtime.clock.advance(hours=2, minutes=30)  # 21:30
        app.tick()
        assert app.status()["hot_water"] is True

    def test_eldercare_without_door(self, home):
        monitor = MedicalMonitor("vitals2", "master-bedroom")
        camera = Camera("camera2", "master-bedroom")
        home.register_device(monitor)
        home.register_device(camera)
        app = ElderCareApp(home, monitor, camera)  # no door
        ElderCareApp.install_policy(home)
        home.policy.add_subject("medic")
        home.policy.assign_subject("medic", "caregiver")
        with pytest.raises(ValueError, match="no door lock"):
            app.unlock_door("medic")
