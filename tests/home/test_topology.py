"""Tests for the home topology model."""

import pytest

from repro.env.location import OUTSIDE
from repro.home.topology import HOME_ZONE, Home, TopologyError, standard_home


class TestConstruction:
    def test_add_room_and_floor(self):
        home = Home()
        home.add_room("kitchen", "ground")
        assert home.rooms() == ["kitchen"]
        assert home.floor_of("kitchen") == "ground"
        assert home.floors() == ["ground"]

    def test_add_room_idempotent_same_floor(self):
        home = Home()
        home.add_room("kitchen", "ground")
        home.add_room("kitchen", "ground")
        assert home.rooms() == ["kitchen"]

    def test_room_cannot_move_floors(self):
        home = Home()
        home.add_room("kitchen", "ground")
        with pytest.raises(TopologyError):
            home.add_room("kitchen", "upstairs")

    def test_reserved_names_rejected(self):
        home = Home()
        with pytest.raises(TopologyError):
            home.add_room(OUTSIDE)
        with pytest.raises(TopologyError):
            home.add_room(HOME_ZONE)
        with pytest.raises(TopologyError):
            home.add_room("")

    def test_zone_definition_validates_rooms(self):
        home = Home()
        home.add_room("kitchen")
        with pytest.raises(TopologyError):
            home.define_zone("z", ["kitchen", "narnia"])
        with pytest.raises(TopologyError):
            home.define_zone("z", [])
        home.define_zone("z", ["kitchen"])
        assert home.zones() == ["z"]

    def test_zone_name_cannot_shadow_room(self):
        home = Home()
        home.add_room("kitchen")
        with pytest.raises(TopologyError):
            home.define_zone("kitchen", ["kitchen"])

    def test_connect_validates(self):
        home = Home()
        home.add_room("kitchen")
        with pytest.raises(TopologyError):
            home.connect("kitchen", "narnia")
        with pytest.raises(TopologyError):
            home.connect("kitchen", "kitchen")
        home.connect("kitchen", OUTSIDE)
        assert OUTSIDE in home.adjacent_to("kitchen")


class TestContainment:
    @pytest.fixture
    def home(self) -> Home:
        return standard_home()

    def test_room_contains_itself(self, home):
        assert home.contains("kitchen", "kitchen")

    def test_home_zone_contains_all_rooms(self, home):
        for room in home.rooms():
            assert home.contains(room, HOME_ZONE)

    def test_floor_containment(self, home):
        assert home.contains("kitchen", "downstairs-floor")
        assert not home.contains("kitchen", "upstairs-floor")

    def test_zone_containment(self, home):
        assert home.contains("kids-bedroom", "upstairs")
        assert home.contains("kids-bedroom", "private")
        assert not home.contains("bathroom", "private")

    def test_outside_contained_nowhere(self, home):
        assert not home.contains(OUTSIDE, HOME_ZONE)
        assert home.contains(OUTSIDE, OUTSIDE)

    def test_unknown_location_contained_nowhere(self, home):
        assert not home.contains("narnia", HOME_ZONE)

    def test_zone_resolver_adapter(self, home):
        resolver = home.zone_resolver()
        assert resolver("kitchen", HOME_ZONE)
        assert not resolver("kitchen", "upstairs")


class TestPathfinding:
    @pytest.fixture
    def home(self) -> Home:
        return standard_home()

    def test_trivial_path(self, home):
        assert home.path("kitchen", "kitchen") == ["kitchen"]

    def test_shortest_path(self, home):
        path = home.path(OUTSIDE, "kitchen")
        assert path is not None
        assert path[0] == OUTSIDE
        assert path[-1] == "kitchen"
        # Through the garage is 2 hops; through the foyer is longer.
        assert len(path) == 3

    def test_all_rooms_reachable_from_outside(self, home):
        for room in home.rooms():
            assert home.path(OUTSIDE, room) is not None

    def test_unknown_room_raises(self, home):
        with pytest.raises(TopologyError):
            home.path("kitchen", "narnia")

    def test_unreachable_returns_none(self):
        home = Home()
        home.add_room("kitchen")
        home.add_room("island")
        assert home.path("kitchen", "island") is None


class TestStandardHome:
    def test_shape(self):
        home = standard_home()
        assert len(home.rooms()) == 9
        assert set(home.zones()) == {"upstairs", "downstairs", "private"}
        assert len(home.floors()) == 2
