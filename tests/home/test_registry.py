"""Tests for SecureHome — the enforced integration layer."""

from datetime import datetime

import pytest

from repro.exceptions import AccessDeniedError, DeviceError, UnknownEntityError
from repro.home.devices import Refrigerator, Television
from repro.home.registry import SecureHome
from repro.home.residents import Resident, standard_household
from repro.policy.templates import install_figure2_roles


@pytest.fixture
def home() -> SecureHome:
    home = SecureHome(start=datetime(2000, 1, 17, 19, 30))
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    home.register_device(Television("tv", "livingroom"))
    home.register_device(Refrigerator("fridge", "kitchen"))
    return home


class TestRegistration:
    def test_resident_becomes_subject_with_roles(self, home):
        assert home.policy.subject("alice").attribute("age") == 11
        assert home.policy.authorized_subject_role_names("alice") == {"child"}
        assert home.resident("alice").name == "alice"
        assert len(home.residents()) == 4

    def test_resident_roles_must_exist(self):
        bare = SecureHome()
        with pytest.raises(UnknownEntityError):
            bare.register_resident(
                Resident("x", age=30, weight_lb=150.0, roles=("undeclared",))
            )

    def test_device_becomes_object_with_category_role(self, home):
        roles = {
            r.name for r in home.policy.effective_object_roles("livingroom/tv")
        }
        assert "entertainment" in roles
        assert home.policy.object("livingroom/tv").attribute("room") == "livingroom"
        assert home.device("livingroom/tv").name == "tv"
        assert len(home.devices()) == 2

    def test_device_operations_become_transactions(self, home):
        assert home.policy.transaction("watch")
        assert home.policy.transaction("read_inventory")

    def test_device_room_must_exist(self, home):
        with pytest.raises(UnknownEntityError):
            home.register_device(Television("tv2", "narnia"))

    def test_unknown_lookups(self, home):
        with pytest.raises(UnknownEntityError):
            home.device("nowhere/nothing")
        with pytest.raises(UnknownEntityError):
            home.resident("stranger")


class TestEnforcedOperation:
    def test_operate_granted_returns_device_result(self, home):
        home.policy.grant("parent", "read_inventory", "kitchen")
        assert home.operate("mom", "kitchen/fridge", "read_inventory") == {}

    def test_operate_denied_raises_with_decision(self, home):
        with pytest.raises(AccessDeniedError) as excinfo:
            home.operate("alice", "kitchen/fridge", "read_inventory")
        assert excinfo.value.decision is not None
        assert not excinfo.value.decision.granted

    def test_try_operate_returns_outcome(self, home):
        outcome = home.try_operate("alice", "kitchen/fridge", "read_inventory")
        assert not outcome.granted
        assert outcome.result is None

    def test_device_errors_propagate_after_grant(self, home):
        home.policy.grant("child", "watch", "entertainment")
        with pytest.raises(DeviceError):
            home.operate("alice", "livingroom/tv", "watch")  # TV is off

    def test_kwargs_forwarded(self, home):
        home.policy.grant("parent", "add_item", "kitchen")
        count = home.operate(
            "mom", "kitchen/fridge", "add_item", item="milk", quantity=2
        )
        assert count == 2

    def test_every_decision_audited(self, home):
        home.try_operate("alice", "kitchen/fridge", "read_inventory")
        home.policy.grant("parent", "read_inventory", "kitchen")
        home.try_operate("mom", "kitchen/fridge", "read_inventory")
        assert home.audit.total == 2
        assert home.audit.deny_count == 1
        assert home.audit.grant_count == 1

    def test_audit_timestamps_use_simulated_clock(self, home):
        home.try_operate("alice", "kitchen/fridge", "read_inventory")
        record = list(home.audit)[0]
        assert record.timestamp == home.runtime.clock.now()

    def test_session_restricted_operation(self, home):
        home.policy.grant("parent", "read_inventory", "kitchen")
        session = home.policy.sessions.open("mom")  # nothing active
        outcome = home.try_operate(
            "mom", "kitchen/fridge", "read_inventory", session=session
        )
        assert not outcome.granted
        session.activate("parent")
        outcome = home.try_operate(
            "mom", "kitchen/fridge", "read_inventory", session=session
        )
        assert outcome.granted


class TestMovement:
    def test_move_updates_location_state(self, home):
        home.move("alice", "kitchen")
        assert home.runtime.location.location_of("alice") == "kitchen"
        assert home.runtime.state.get("location.alice") == "kitchen"

    def test_presence_path_requires_auth_service(self, home):
        with pytest.raises(UnknownEntityError):
            home.operate_with_presence(
                home.resident("alice").presence(), "livingroom/tv", "watch"
            )
