"""Tests for the device models."""

import pytest

from repro.exceptions import DeviceError
from repro.home.devices import (
    Camera,
    DeviceCategory,
    Dishwasher,
    DocumentStore,
    DoorLock,
    MedicalMonitor,
    Oven,
    Refrigerator,
    Television,
    Thermostat,
    Videophone,
)


class TestDeviceBase:
    def test_qualified_name(self):
        assert Television("tv", "livingroom").qualified_name == "livingroom/tv"

    def test_unsupported_operation_raises(self):
        tv = Television("tv", "livingroom")
        with pytest.raises(DeviceError, match="does not support"):
            tv.perform("levitate")

    def test_supports_and_operations(self):
        tv = Television("tv", "livingroom")
        assert tv.supports("watch")
        assert not tv.supports("bake")
        assert "power_on" in tv.operations()

    def test_construction_validation(self):
        with pytest.raises(DeviceError):
            Television("", "livingroom")
        with pytest.raises(DeviceError):
            Television("tv", "")


class TestTelevision:
    def test_power_cycle_and_watch(self):
        tv = Television("tv", "livingroom")
        with pytest.raises(DeviceError):
            tv.perform("watch")  # off
        tv.perform("power_on")
        assert tv.perform("watch") == {"channel": 1, "rating": "G"}
        tv.perform("power_off")
        with pytest.raises(DeviceError):
            tv.perform("watch")

    def test_change_channel_sets_rating(self):
        tv = Television("tv", "livingroom")
        tv.perform("power_on")
        tv.perform("change_channel", channel=5, rating="R")
        assert tv.perform("watch")["rating"] == "R"

    def test_channel_and_rating_validation(self):
        tv = Television("tv", "livingroom")
        with pytest.raises(DeviceError):
            tv.perform("change_channel", channel=0)
        with pytest.raises(DeviceError):
            tv.perform("change_channel", channel=2, rating="X")

    def test_category(self):
        assert Television("tv", "x").category is DeviceCategory.ENTERTAINMENT


class TestRefrigerator:
    def test_inventory_lifecycle(self):
        fridge = Refrigerator("fridge", "kitchen")
        assert fridge.perform("read_inventory") == {}
        fridge.perform("add_item", item="milk", quantity=2)
        fridge.perform("add_item", item="milk", quantity=1)
        assert fridge.inventory == {"milk": 3}
        fridge.perform("remove_item", item="milk", quantity=3)
        assert fridge.inventory == {}

    def test_remove_validation(self):
        fridge = Refrigerator("fridge", "kitchen")
        with pytest.raises(DeviceError):
            fridge.perform("remove_item", item="eggs")
        fridge.perform("add_item", item="eggs", quantity=1)
        with pytest.raises(DeviceError):
            fridge.perform("remove_item", item="eggs", quantity=5)

    def test_add_validation(self):
        fridge = Refrigerator("fridge", "kitchen")
        with pytest.raises(DeviceError):
            fridge.perform("add_item", item="", quantity=1)
        with pytest.raises(DeviceError):
            fridge.perform("add_item", item="milk", quantity=0)

    def test_reorder_records_orders(self):
        fridge = Refrigerator("fridge", "kitchen")
        order = fridge.perform("reorder", item="milk", quantity=2)
        assert order == {"item": "milk", "quantity": 2}
        assert fridge.state["orders"] == [order]


class TestSafetyDevices:
    def test_oven_requires_power(self):
        oven = Oven("oven", "kitchen")
        with pytest.raises(DeviceError):
            oven.perform("set_temperature", temperature_f=350)
        oven.perform("power_on")
        assert oven.perform("set_temperature", temperature_f=350) == 350
        with pytest.raises(DeviceError):
            oven.perform("set_temperature", temperature_f=900)
        oven.perform("power_off")
        assert oven.state["temperature_f"] == 0

    def test_oven_is_safety_critical(self):
        assert Oven("oven", "kitchen").category is DeviceCategory.SAFETY_CRITICAL


class TestDishwasher:
    def test_fault_blocks_cycles_until_repaired(self):
        dishwasher = Dishwasher("dw", "kitchen")
        dishwasher.state["fault"] = "pump failure"
        dishwasher.perform("power_on")
        assert dishwasher.perform("diagnose") == "pump failure"
        with pytest.raises(DeviceError):
            dishwasher.perform("run_cycle")
        dishwasher.perform("repair")
        assert dishwasher.perform("run_cycle") == "normal"


class TestCamera:
    def test_stream_vs_snapshot(self):
        camera = Camera("cam", "kids-bedroom")
        stream = camera.perform("view_stream")
        snapshot = camera.perform("view_snapshot")
        assert stream["kind"] == "stream"
        assert snapshot["kind"] == "snapshot"
        # Snapshots do not advance the live frame counter.
        assert snapshot["frame"] == stream["frame"]

    def test_disabled_camera_refuses(self):
        camera = Camera("cam", "kids-bedroom")
        camera.perform("disable")
        with pytest.raises(DeviceError):
            camera.perform("view_stream")
        camera.perform("enable")
        camera.perform("view_stream")


class TestOtherDevices:
    def test_thermostat_bounds(self):
        thermostat = Thermostat("t", "foyer")
        assert thermostat.perform("set_temperature", setpoint_f=68) == 68
        with pytest.raises(DeviceError):
            thermostat.perform("set_temperature", setpoint_f=120)

    def test_videophone_single_call(self):
        phone = Videophone("vp", "kitchen")
        phone.perform("place_call", callee="grandma")
        with pytest.raises(DeviceError):
            phone.perform("place_call", callee="uncle")
        phone.perform("hang_up")
        phone.perform("place_call", callee="uncle")

    def test_door_lock(self):
        door = DoorLock("front", "foyer")
        assert door.perform("read_status") is True
        door.perform("unlock")
        assert door.perform("read_status") is False

    def test_document_store(self):
        docs = DocumentStore("docs", "study")
        docs.perform("write_document", document="tax-return", content="1040")
        assert docs.perform("read_document", document="tax-return") == "1040"
        assert docs.perform("list_documents") == ["tax-return"]
        with pytest.raises(DeviceError):
            docs.perform("read_document", document="missing")
        with pytest.raises(DeviceError):
            docs.perform("write_document", document="", content="x")

    def test_medical_monitor_alerts(self):
        monitor = MedicalMonitor("vitals", "master-bedroom")
        monitor.perform("record_vitals", heart_rate=72, systolic=120)
        assert monitor.perform("read_alert") is None
        monitor.perform("record_vitals", heart_rate=150, systolic=190)
        assert monitor.perform("read_alert") is not None
        assert len(monitor.perform("read_vitals", last=2)) == 2
        monitor.perform("clear_alert")
        assert monitor.perform("read_alert") is None
        with pytest.raises(DeviceError):
            monitor.perform("record_vitals", heart_rate=-1, systolic=120)
        with pytest.raises(DeviceError):
            monitor.perform("read_vitals", last=0)
