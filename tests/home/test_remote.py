"""Tests for the remote-access gateway."""

from datetime import datetime

import pytest

from repro.auth import AuthenticationService, PasswordAuthenticator, Presence
from repro.exceptions import AccessDeniedError, AuthenticationError
from repro.home.devices import Camera, Refrigerator
from repro.home.registry import SecureHome
from repro.home.remote import INSIDE_ROLE, REMOTE_ROLE, RemoteGateway
from repro.home.residents import standard_household
from repro.policy.templates import install_figure2_roles


@pytest.fixture
def setup():
    home = SecureHome(start=datetime(2000, 1, 17, 12, 0))
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    home.register_device(Refrigerator("fridge", "kitchen"))
    home.register_device(Camera("camera", "kids-bedroom"))
    gateway = RemoteGateway(home)
    policy = home.policy
    # Fridge inventory: readable by family from anywhere.
    policy.grant("family-member", "read_inventory", "kitchen", name="rg-fridge")
    # Camera streams: parents, and ONLY from inside the home.
    policy.grant("parent", "view_stream", "security", INSIDE_ROLE, name="rg-cam")
    # Snapshot: parents, explicitly allowed remotely.
    policy.grant("parent", "view_snapshot", "security", REMOTE_ROLE, name="rg-snap")
    return home, gateway


class TestChannels:
    def test_channel_roles_registered(self, setup):
        home, _ = setup
        assert INSIDE_ROLE in home.policy.environment_roles
        assert REMOTE_ROLE in home.policy.environment_roles

    def test_inventory_readable_from_both_channels(self, setup):
        home, gateway = setup
        home.move("mom", "kitchen")
        assert gateway.operate_local("mom", "kitchen/fridge", "read_inventory").granted
        assert gateway.operate_remote(
            "dad", "kitchen/fridge", "read_inventory"
        ).granted

    def test_stream_inside_only(self, setup):
        home, gateway = setup
        home.move("mom", "livingroom")
        assert gateway.operate_local(
            "mom", "kids-bedroom/camera", "view_stream"
        ).granted
        assert not gateway.operate_remote(
            "mom", "kids-bedroom/camera", "view_stream"
        ).granted

    def test_snapshot_remote_tier(self, setup):
        _, gateway = setup
        outcome = gateway.operate_remote("mom", "kids-bedroom/camera", "view_snapshot")
        assert outcome.granted
        assert outcome.result["kind"] == "snapshot"

    def test_local_channel_requires_physical_presence(self, setup):
        home, gateway = setup
        # Mom has not been placed anywhere: the house believes she is
        # outside, so a "local" request in her name is refused.
        with pytest.raises(AuthenticationError, match="not inside"):
            gateway.operate_local("mom", "kitchen/fridge", "read_inventory")

    def test_children_not_widened_by_channel_roles(self, setup):
        home, gateway = setup
        home.move("alice", "kitchen")
        # Family-member grant covers alice for the fridge...
        assert gateway.operate_local(
            "alice", "kitchen/fridge", "read_inventory"
        ).granted
        # ...but no channel role gives her the camera.
        assert not gateway.operate_local(
            "alice", "kids-bedroom/camera", "view_stream"
        ).granted


class TestRemoteCredentials:
    def test_credentials_required_when_auth_attached(self, setup):
        home, gateway = setup
        password = PasswordAuthenticator()
        password.enroll("mom", "hunter2")
        service = AuthenticationService(home.policy)
        service.register(password)
        home.auth = service
        with pytest.raises(AuthenticationError, match="requires credentials"):
            gateway.operate_remote("mom", "kitchen/fridge", "read_inventory")

    def test_valid_credentials_pass(self, setup):
        home, gateway = setup
        password = PasswordAuthenticator()
        password.enroll("mom", "hunter2")
        service = AuthenticationService(home.policy)
        service.register(password)
        home.auth = service
        outcome = gateway.operate_remote(
            "mom",
            "kitchen/fridge",
            "read_inventory",
            credentials=Presence("mom", {"password": "hunter2"}),
        )
        assert outcome.granted

    def test_wrong_identity_rejected(self, setup):
        home, gateway = setup
        password = PasswordAuthenticator()
        password.enroll("mom", "hunter2")
        password.enroll("dad", "swordfish")
        service = AuthenticationService(home.policy)
        service.register(password)
        home.auth = service
        # Dad's valid credentials do not let him act as mom.
        with pytest.raises(AuthenticationError, match="not 'mom'"):
            gateway.operate_remote(
                "mom",
                "kitchen/fridge",
                "read_inventory",
                credentials=Presence("dad", {"password": "swordfish"}),
            )


class TestAuditAndErrors:
    def test_remote_decisions_audited(self, setup):
        home, gateway = setup
        gateway.operate_remote("mom", "kids-bedroom/camera", "view_stream")
        record = list(home.audit)[-1]
        assert not record.granted
        assert REMOTE_ROLE in record.decision.environment_roles

    def test_require_remote_raises_on_denial(self, setup):
        _, gateway = setup
        with pytest.raises(AccessDeniedError):
            gateway.require_remote("mom", "kids-bedroom/camera", "view_stream")

    def test_require_remote_returns_result(self, setup):
        _, gateway = setup
        result = gateway.require_remote(
            "mom", "kids-bedroom/camera", "view_snapshot"
        )
        assert result["kind"] == "snapshot"

    def test_channel_roles_compose_with_time_roles(self, setup):
        home, gateway = setup
        from repro.env.temporal import time_window

        home.runtime.define_time_role(
            home.policy, "daytime", time_window("08:00", "20:00")
        )
        home.policy.grant(
            "child", "open", "kitchen", "daytime", name="kids-daytime"
        )
        home.move("alice", "kitchen")
        assert gateway.operate_local("alice", "kitchen/fridge", "open").granted
        home.runtime.clock.advance(hours=10)  # 22:00
        assert not gateway.operate_local("alice", "kitchen/fridge", "open").granted
