"""Tests for residents and daily schedules."""

from datetime import datetime

import pytest

from repro.env.location import OUTSIDE
from repro.exceptions import GrbacError
from repro.home.residents import (
    DailySchedule,
    Resident,
    ScheduleError,
    standard_household,
)


class TestDailySchedule:
    @pytest.fixture
    def schedule(self) -> DailySchedule:
        return DailySchedule(
            [
                ("07:00", "kitchen"),
                ("08:00", OUTSIDE),
                ("17:00", "livingroom"),
                ("22:00", "master-bedroom"),
            ]
        )

    def test_location_between_waypoints(self, schedule):
        assert schedule.location_at(datetime(2000, 1, 17, 7, 30)) == "kitchen"
        assert schedule.location_at(datetime(2000, 1, 17, 12, 0)) == OUTSIDE
        assert schedule.location_at(datetime(2000, 1, 17, 18, 0)) == "livingroom"

    def test_waypoint_boundary_inclusive(self, schedule):
        assert schedule.location_at(datetime(2000, 1, 17, 7, 0)) == "kitchen"

    def test_wraps_around_midnight(self, schedule):
        # Before 07:00 the person is where 22:00 left them: in bed.
        assert schedule.location_at(datetime(2000, 1, 17, 3, 0)) == "master-bedroom"

    def test_entries_sorted(self):
        schedule = DailySchedule([("17:00", "b"), ("07:00", "a")])
        assert [e.location for e in schedule.entries()] == ["a", "b"]

    def test_duplicate_times_rejected(self):
        with pytest.raises(ScheduleError):
            DailySchedule([("07:00", "a"), ("07:00", "b")])

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            DailySchedule([])

    def test_transition_times(self, schedule):
        assert len(schedule.transition_times()) == 4


class TestResident:
    def test_defaults(self):
        resident = Resident("alice", age=11, weight_lb=94.0)
        assert resident.face_signature == "face:alice"
        assert resident.voice_signature == "voice:alice"
        assert not resident.is_adult
        assert Resident("mom", age=40, weight_lb=135.0).is_adult

    def test_presence_carries_ground_truth(self):
        resident = Resident("alice", age=11, weight_lb=94.0)
        presence = resident.presence()
        assert presence.subject == "alice"
        assert presence.feature("weight_lb") == 94.0
        assert presence.feature("face") == "face:alice"

    def test_presence_extra_features(self):
        presence = Resident("mom", age=40, weight_lb=135.0).presence(
            password="secret"
        )
        assert presence.feature("password") == "secret"

    def test_location_without_schedule_is_outside(self):
        visitor = Resident("tech", age=35, weight_lb=170.0)
        assert visitor.location_at(datetime(2000, 1, 17, 9, 0)) == OUTSIDE

    def test_validation(self):
        with pytest.raises(GrbacError):
            Resident("", age=1, weight_lb=1)
        with pytest.raises(GrbacError):
            Resident("x", age=-1, weight_lb=100)
        with pytest.raises(GrbacError):
            Resident("x", age=5, weight_lb=0)


class TestStandardHousehold:
    def test_cast_of_characters(self):
        household = {r.name: r for r in standard_household()}
        assert set(household) == {"mom", "dad", "alice", "bobby"}
        # §5.2's exact numbers.
        assert household["alice"].age == 11
        assert household["alice"].weight_lb == 94.0
        assert household["alice"].roles == ("child",)
        assert household["mom"].roles == ("parent",)

    def test_everyone_has_a_schedule(self):
        for resident in standard_household():
            assert resident.schedule is not None
            # Everyone is home in the evening (the §5.1 scenario).
            evening = resident.location_at(datetime(2000, 1, 17, 19, 30))
            assert evening != OUTSIDE
