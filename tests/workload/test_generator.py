"""Tests for the synthetic policy and request generators."""

import pytest

from repro.core import MediationEngine
from repro.exceptions import WorkloadError
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)


class TestConfig:
    def test_defaults_are_valid(self):
        RandomPolicyConfig()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RandomPolicyConfig(subjects=0)
        with pytest.raises(WorkloadError):
            RandomPolicyConfig(deny_fraction=1.5)


class TestGeneratePolicy:
    def test_shape_matches_config(self):
        config = RandomPolicyConfig(
            subjects=5, objects=7, transactions=3, permissions=20, seed=1
        )
        policy = generate_policy(config)
        stats = policy.stats()
        assert stats["subjects"] == 5
        assert stats["objects"] == 7
        assert stats["transactions"] == 3
        assert stats["permissions"] == 20

    def test_deterministic_for_same_seed(self):
        a = generate_policy(RandomPolicyConfig(seed=42))
        b = generate_policy(RandomPolicyConfig(seed=42))
        assert [p.key for p in a.permissions()] == [p.key for p in b.permissions()]

    def test_different_seeds_differ(self):
        a = generate_policy(RandomPolicyConfig(seed=1))
        b = generate_policy(RandomPolicyConfig(seed=2))
        assert [p.key for p in a.permissions()] != [p.key for p in b.permissions()]

    def test_everyone_has_roles(self):
        policy = generate_policy(RandomPolicyConfig(seed=3))
        for subject in policy.subjects():
            assert policy.authorized_subject_role_names(subject.name)

    def test_impossible_permission_count_raises(self):
        config = RandomPolicyConfig(
            subject_roles=1,
            object_roles=1,
            environment_roles=1,
            transactions=1,
            permissions=100,  # only ~8 unique tuples exist
            seed=0,
        )
        with pytest.raises(WorkloadError):
            generate_policy(config)

    def test_policies_are_mediatable(self):
        policy = generate_policy(RandomPolicyConfig(seed=9))
        engine = MediationEngine(policy)
        for generated in generate_requests(policy, 20, seed=9):
            engine.decide(
                generated.request,
                environment_roles=set(generated.active_environment_roles),
            )


class TestGenerateRequests:
    def test_count_and_determinism(self):
        policy = generate_policy(RandomPolicyConfig(seed=5))
        a = generate_requests(policy, 50, seed=7)
        b = generate_requests(policy, 50, seed=7)
        assert len(a) == 50
        assert [g.request for g in a] == [g.request for g in b]
        assert [g.active_environment_roles for g in a] == [
            g.active_environment_roles for g in b
        ]

    def test_zipf_bias_favors_low_ranked_subjects(self):
        policy = generate_policy(RandomPolicyConfig(subjects=10, seed=5))
        requests = generate_requests(policy, 800, seed=1)
        counts = {}
        for generated in requests:
            counts[generated.request.subject] = (
                counts.get(generated.request.subject, 0) + 1
            )
        assert counts["subject-0"] > counts.get("subject-9", 0)

    def test_negative_count_rejected(self):
        policy = generate_policy(RandomPolicyConfig(seed=5))
        with pytest.raises(WorkloadError):
            generate_requests(policy, -1)

    def test_env_sets_bounded(self):
        policy = generate_policy(RandomPolicyConfig(seed=5))
        for generated in generate_requests(policy, 100, seed=2, max_active_env_roles=1):
            assert len(generated.active_environment_roles) <= 1
