"""Tests for the adversarial workload (the §1 electronic intruder)."""

from datetime import datetime

import pytest

from repro.workload.adversary import AdversarySimulator, AttackReport
from repro.workload.scenarios import (
    build_repairman_scenario,
    build_s51_scenario,
)


@pytest.fixture
def s51_home():
    return build_s51_scenario(start=datetime(2000, 1, 17, 19, 30)).home


class TestStrangerProbe:
    def test_stranger_gets_nothing(self, s51_home):
        simulator = AdversarySimulator(s51_home)
        report = AttackReport()
        simulator.stranger_probe(report)
        assert report.grant_count("stranger") == 0
        assert report.attempts["stranger"] > 10  # whole surface probed

    def test_stranger_registered_without_roles(self, s51_home):
        AdversarySimulator(s51_home)
        assert s51_home.policy.authorized_subject_role_names("intruder") == set()

    def test_open_world_policy_leaks_and_is_caught(self, s51_home):
        from repro.core import Sign

        s51_home.policy.default_sign = Sign.GRANT  # a misconfiguration
        simulator = AdversarySimulator(s51_home)
        report = AttackReport()
        simulator.stranger_probe(report)
        assert report.grant_count("stranger") == report.attempts["stranger"]


class TestClaimSpoofProbe:
    def test_spoofed_child_claim_reaches_exactly_the_s51_surface(self, s51_home):
        # During free time, asserting "child" grants exactly what §5.2
        # says sensed child-evidence should grant: watch/power_on on
        # entertainment devices.  Nothing else.
        simulator = AdversarySimulator(s51_home)
        report = AttackReport()
        simulator.claim_spoof_probe(report, confidences=(0.99,))
        grants = report.grants_for("claim-spoof")
        assert grants, "the s51 policy intends sensed children to get TV access"
        for grant in grants:
            assert grant.transaction in ("watch", "power_on")
            assert "child" in grant.detail or "family" in grant.detail or (
                "home-user" in grant.detail
            )

    def test_spoofing_gains_nothing_outside_free_time(self):
        home = build_s51_scenario(start=datetime(2000, 1, 17, 9, 0)).home
        simulator = AdversarySimulator(home)
        report = AttackReport()
        simulator.claim_spoof_probe(report, confidences=(0.99,))
        assert report.grant_count("claim-spoof") == 0

    def test_confidence_threshold_blocks_weak_spoofs(self, s51_home):
        s51_home.engine.confidence_threshold = 0.9
        simulator = AdversarySimulator(s51_home)
        report = AttackReport()
        simulator.claim_spoof_probe(report, confidences=(0.5,))
        assert report.grant_count("claim-spoof") == 0

    def test_summary_renders(self, s51_home):
        simulator = AdversarySimulator(s51_home)
        report = simulator.run()
        text = report.summary()
        assert "stranger:" in text
        assert "claim-spoof:" in text


class TestReplayProbe:
    def test_repairman_replay_after_window_fails(self):
        scenario = build_repairman_scenario()
        home = scenario.home
        home.runtime.clock.advance(hours=2)  # 09:00, in window
        home.move("repair-tech", "kitchen")
        legitimate = [
            ("diagnose", "kitchen/dishwasher"),
            ("open", "kitchen/fridge"),
        ]
        # Sanity: these were legitimately grantable in the window.
        for operation, device in legitimate:
            assert home.try_operate("repair-tech", device, operation).granted

        # Midnight replay: same subject, same requests.
        home.runtime.clock.advance(hours=15)
        simulator = AdversarySimulator(home)
        report = AttackReport()
        simulator.replay_probe(report, "repair-tech", legitimate)
        assert report.grant_count("replay") == 0

    def test_replay_inside_window_would_succeed(self):
        # The probe measures the window, not magic: inside it, the
        # same requests are (correctly) granted.
        scenario = build_repairman_scenario()
        home = scenario.home
        home.runtime.clock.advance(hours=2)
        home.move("repair-tech", "kitchen")
        simulator = AdversarySimulator(home)
        report = AttackReport()
        simulator.replay_probe(
            report, "repair-tech", [("diagnose", "kitchen/dishwasher")]
        )
        assert report.grant_count("replay") == 1


class TestPrivilegeMap:
    def test_blast_radius_follows_roles(self, s51_home):
        simulator = AdversarySimulator(s51_home)
        mapping = simulator.privilege_map()
        # During free time children reach the entertainment surface.
        assert any("watch" in item for item in mapping["alice"])
        # Parents reach nothing via the s51 rule.
        assert mapping["mom"] == []
        # The intruder is excluded from the legitimate map.
        assert "intruder" not in mapping

    def test_empty_outside_free_time(self):
        home = build_s51_scenario(start=datetime(2000, 1, 17, 9, 0)).home
        simulator = AdversarySimulator(home)
        mapping = simulator.privilege_map()
        assert all(not reachable for reachable in mapping.values())
