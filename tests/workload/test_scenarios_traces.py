"""Tests for the paper scenarios and the day-trace simulator."""

from datetime import datetime

import pytest

from repro.workload.scenarios import (
    build_figure2_policy,
    build_negative_rights_scenario,
    build_repairman_scenario,
    build_s51_scenario,
    build_s52_scenario,
)
from repro.workload.traces import DayTraceSimulator


class TestFigure2Scenario:
    def test_policy_shape(self):
        policy = build_figure2_policy()
        assert policy.subjects_in_role("home-user") == {
            "mom",
            "dad",
            "alice",
            "bobby",
            "dishwasher-repair-tech",
        }


class TestS51Scenario:
    def test_oracle_matches_mediation_across_a_week(self):
        scenario = build_s51_scenario(start=datetime(2000, 1, 16, 18, 0))  # Sunday
        home = scenario.home
        clock = home.runtime.clock
        for _ in range(7 * 8):  # a week in 3-hour steps
            clock.advance(hours=3)
            moment = clock.now_datetime()
            for subject, role in [("alice", "child"), ("mom", "parent")]:
                expected = scenario.oracle(role, moment)
                actual = home.try_operate(subject, "livingroom/tv", "power_on").granted
                assert actual == expected, (subject, moment)

    def test_all_entertainment_devices_covered(self):
        scenario = build_s51_scenario(start=datetime(2000, 1, 17, 19, 30))
        home = scenario.home
        for device in ("livingroom/tv", "livingroom/vcr", "livingroom/stereo",
                       "kids-bedroom/console"):
            assert home.try_operate("bobby", device, "power_on").granted

    def test_fridge_not_covered(self):
        scenario = build_s51_scenario(start=datetime(2000, 1, 17, 19, 30))
        assert not scenario.home.try_operate(
            "alice", "kitchen/fridge", "open"
        ).granted


class TestS52Scenario:
    def test_paper_numbers_reproduced(self):
        scenario = build_s52_scenario()
        home = scenario.home
        alice = home.resident("alice")
        result = home.auth.authenticate(alice.presence())
        assert result.subject == "alice"
        assert result.identity_confidence == pytest.approx(0.75, abs=0.02)
        assert result.role_confidences["child"] == pytest.approx(0.98, abs=0.01)

    def test_identity_alone_insufficient_but_role_grants(self):
        scenario = build_s52_scenario()
        home = scenario.home
        alice = home.resident("alice")
        outcome = home.operate_with_presence(
            alice.presence(), "livingroom/tv", "power_on"
        )
        assert outcome.granted
        # The grant came through the role claim, not identity: strip
        # the role claims and the same identity confidence fails.
        from repro.core import AccessRequest

        identity_only = AccessRequest(
            transaction="power_on",
            obj="livingroom/tv",
            subject="alice",
            identity_confidence=0.75,
        )
        assert not home.engine.decide(identity_only).granted

    def test_parent_presence_does_not_get_child_grant(self):
        scenario = build_s52_scenario()
        home = scenario.home
        mom = home.resident("mom")
        outcome = home.operate_with_presence(
            mom.presence(), "livingroom/tv", "power_on"
        )
        assert not outcome.granted


class TestRepairmanScenario:
    def test_oracle_grid(self):
        scenario = build_repairman_scenario()
        home = scenario.home
        # 07:00, outside: too early.
        assert not home.try_operate(
            "repair-tech", "kitchen/dishwasher", "diagnose"
        ).granted
        home.runtime.clock.advance(hours=2)  # 09:00
        home.move("repair-tech", "kitchen")
        assert home.try_operate(
            "repair-tech", "kitchen/dishwasher", "diagnose"
        ).granted
        assert home.try_operate("repair-tech", "kitchen/fridge", "open").granted
        # Steps outside -> access lapses immediately.
        home.runtime.location.leave("repair-tech")
        assert not home.try_operate(
            "repair-tech", "kitchen/fridge", "open"
        ).granted
        # Back inside but after 13:00 -> window closed.
        home.move("repair-tech", "kitchen")
        home.runtime.clock.advance(hours=5)  # 14:00
        assert not home.try_operate(
            "repair-tech", "kitchen/dishwasher", "repair"
        ).granted

    def test_family_never_covered_by_repair_rule(self):
        scenario = build_repairman_scenario()
        home = scenario.home
        home.runtime.clock.advance(hours=2)
        home.move("mom", "kitchen")
        assert not home.try_operate("mom", "kitchen/dishwasher", "diagnose").granted

    def test_repair_actually_fixes_the_dishwasher(self):
        scenario = build_repairman_scenario()
        home = scenario.home
        home.runtime.clock.advance(hours=2)
        home.move("repair-tech", "kitchen")
        assert home.operate("repair-tech", "kitchen/dishwasher", "diagnose") == (
            "pump failure"
        )
        home.operate("repair-tech", "kitchen/dishwasher", "repair")
        assert home.operate("repair-tech", "kitchen/dishwasher", "diagnose") is None


class TestNegativeRightsScenario:
    def test_oracle_grid(self):
        scenario = build_negative_rights_scenario()
        home = scenario.home
        cases = [
            ("alice", "livingroom/tv", True),   # child, safe device
            ("alice", "kitchen/oven", False),   # child, dangerous
            ("bobby", "kitchen/oven", False),
            ("mom", "kitchen/oven", True),      # parent, anything
            ("dad", "livingroom/tv", True),
        ]
        for subject, device, expected in cases:
            assert (
                home.try_operate(subject, device, "power_on").granted == expected
            ), (subject, device)

    def test_oracle_function_agrees(self):
        scenario = build_negative_rights_scenario()
        assert scenario.oracle("child", device_dangerous=False)
        assert not scenario.oracle("child", device_dangerous=True)
        assert scenario.oracle("parent", device_dangerous=True)


class TestDayTrace:
    def test_deterministic_and_plausible(self):
        results = []
        for _ in range(2):
            scenario = build_s51_scenario(start=datetime(2000, 1, 17, 0, 0))
            simulator = DayTraceSimulator(
                scenario.home, step_minutes=30, seed=11
            )
            results.append(simulator.run(hours=24))
        a, b = results
        assert len(a.events) == len(b.events)
        assert [e.operation for e in a.events] == [e.operation for e in b.events]
        assert a.moves > 0
        assert len(a.events) > 0

    def test_s51_trace_grants_only_in_free_time(self):
        scenario = build_s51_scenario(start=datetime(2000, 1, 17, 0, 0))
        simulator = DayTraceSimulator(scenario.home, step_minutes=15, seed=3)
        result = simulator.run(hours=24)
        for event in result.events:
            if event.granted:
                assert 19 <= event.moment.hour < 22
                assert event.subject in ("alice", "bobby")

    def test_by_subject_accounting(self):
        scenario = build_s51_scenario(start=datetime(2000, 1, 17, 0, 0))
        simulator = DayTraceSimulator(scenario.home, step_minutes=30, seed=5)
        result = simulator.run(hours=24)
        per_subject = result.by_subject()
        total = sum(g + d for g, d in per_subject.values())
        assert total == len(result.events)
        assert result.grants + result.denials == len(result.events)
        assert "attempts" in result.summary()

    def test_validation(self):
        scenario = build_s51_scenario()
        from repro.exceptions import WorkloadError

        with pytest.raises(WorkloadError):
            DayTraceSimulator(scenario.home, step_minutes=0)
        simulator = DayTraceSimulator(scenario.home)
        with pytest.raises(WorkloadError):
            simulator.run(hours=0)


class TestRoomByRoomMovement:
    def test_walk_produces_more_moves_than_teleport(self):
        from datetime import datetime

        walked = DayTraceSimulator(
            build_s51_scenario(start=datetime(2000, 1, 17, 0, 0)).home,
            step_minutes=30, seed=11, walk_through_rooms=True,
        ).run(hours=24)
        teleported = DayTraceSimulator(
            build_s51_scenario(start=datetime(2000, 1, 17, 0, 0)).home,
            step_minutes=30, seed=11, walk_through_rooms=False,
        ).run(hours=24)
        assert walked.moves >= teleported.moves
        # Device attempts are unaffected by how people walked there.
        assert len(walked.events) == len(teleported.events)

    def test_walk_ends_at_the_scheduled_room(self):
        from datetime import datetime

        scenario = build_s51_scenario(start=datetime(2000, 1, 17, 6, 0))
        simulator = DayTraceSimulator(scenario.home, step_minutes=30, seed=1)
        simulator.run(hours=1.5)  # through the 07:00 kitchen transition,
        # stopping before the 08:00 departure
        assert scenario.home.runtime.location.location_of("alice") == "kitchen"


class TestReplay:
    def test_replay_requests_batch_matches_singles(self):
        from repro.core import MediationEngine
        from repro.workload.generator import (
            RandomPolicyConfig,
            generate_policy,
            generate_requests,
            replay_requests,
        )

        policy = generate_policy(RandomPolicyConfig(seed=3, permissions=40))
        generated = generate_requests(policy, 30, seed=4)
        engine = MediationEngine(policy)
        batched = replay_requests(engine, generated, batch=True)
        singles = replay_requests(engine, generated, batch=False)
        assert len(batched) == len(generated)
        assert [d.granted for d in batched] == [d.granted for d in singles]

    def test_replay_trace_rebuilds_event_requests(self):
        from repro.workload.traces import replay_trace

        scenario = build_s51_scenario(start=datetime(2000, 1, 17, 0, 0))
        simulator = DayTraceSimulator(scenario.home, step_minutes=30, seed=11)
        result = simulator.run(hours=24)
        decisions = replay_trace(scenario.home, result.events)
        assert len(decisions) == len(result.events)
        for event, decision in zip(result.events, decisions):
            assert decision.request.subject == event.subject
            assert decision.request.obj == event.device
            assert decision.request.transaction == event.operation

    def test_replay_trace_accepts_trace_result(self):
        from repro.workload.traces import TraceEvent, TraceResult, replay_trace

        scenario = build_s51_scenario(start=datetime(2000, 1, 17, 19, 30))
        trace = TraceResult(
            events=[
                TraceEvent(
                    moment=datetime(2000, 1, 17, 19, 30),
                    subject="alice",
                    device="livingroom/tv",
                    operation="watch",
                    granted=True,
                )
            ]
        )
        (decision,) = replay_trace(scenario.home, trace)
        # Re-mediated against the *current* home state (Monday 19:30,
        # inside weekday-free-time), so the grant reproduces.
        assert decision.granted
