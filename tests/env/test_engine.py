"""Tests for the incremental activation engine.

Covers the three defects this layer fixes:

* the old memo key contained ``clock.now()``, so with a real wall
  clock every query re-evaluated every condition (the memo never hit);
* ``len(bindings)`` in the key missed a same-length unbind+bind swap;
* the revision was lazily observed — nothing moved, and no
  ``role.deactivated`` event fired, until a query happened to look.
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.env.activation import EnvironmentRoleActivator
from repro.env.clock import Clock, SimulatedClock, to_timestamp
from repro.env.conditions import (
    AllOf,
    Condition,
    Not,
    always_true,
    during,
    state_equals,
    subject_located,
)
from repro.env.engine import TimerWheel, analyze_condition
from repro.env.events import EventBus
from repro.env.state import EnvironmentState
from repro.env.temporal import (
    always,
    months,
    never,
    one_off,
    time_window,
    weekdays,
)


class WallClock(Clock):
    """A steppable clock *without* advance notifications — what a real
    ``SystemClock`` looks like to the activator."""

    def __init__(self, start: datetime) -> None:
        self._now = to_timestamp(start)

    def now(self) -> float:
        return self._now

    def step(self, **units: float) -> None:
        self._now += timedelta(**units).total_seconds()


# ----------------------------------------------------------------------
# Dependency analysis
# ----------------------------------------------------------------------
class TestAnalyzeCondition:
    def test_state_condition_reports_its_variable(self):
        deps = analyze_condition(state_equals("alarm", True))
        assert deps.variables == frozenset({"alarm"})
        assert not deps.expressions and not deps.opaque

    def test_temporal_condition_reports_its_expression(self):
        expr = time_window("19:00", "22:00")
        deps = analyze_condition(during(expr))
        assert deps.expressions == (expr,)
        assert not deps.variables and not deps.opaque

    def test_combinators_union_children(self):
        expr = weekdays()
        condition = AllOf(
            (
                during(expr),
                Not(state_equals("alarm", True)),
                subject_located("alice", "kitchen"),
            )
        )
        deps = analyze_condition(condition)
        assert deps.variables == frozenset({"alarm", "location.alice"})
        assert deps.expressions == (expr,)
        assert not deps.opaque

    def test_constants_depend_on_nothing(self):
        deps = analyze_condition(always_true())
        assert not deps.variables and not deps.expressions and not deps.opaque

    def test_unknown_condition_class_is_opaque(self):
        class Custom(Condition):
            def evaluate(self, state, clock):
                return True

            def describe(self):
                return "custom"

        assert analyze_condition(Custom()).opaque
        assert analyze_condition(Not(Custom())).opaque


# ----------------------------------------------------------------------
# Timer wheel / next_boundary
# ----------------------------------------------------------------------
class TestNextBoundary:
    def test_time_of_day_window_edges(self):
        expr = time_window("19:00", "22:00")
        monday_18 = datetime(2000, 1, 17, 18, 0)
        assert expr.next_boundary(monday_18) == datetime(2000, 1, 17, 19, 0)
        inside = datetime(2000, 1, 17, 20, 30)
        assert expr.next_boundary(inside) == datetime(2000, 1, 17, 22, 0)
        after = datetime(2000, 1, 17, 22, 30)
        assert expr.next_boundary(after) == datetime(2000, 1, 18, 19, 0)

    def test_wrapping_window(self):
        expr = time_window("22:00", "06:00")
        late = datetime(2000, 1, 17, 23, 0)
        assert expr.next_boundary(late) == datetime(2000, 1, 18, 6, 0)

    def test_constants_have_no_boundary(self):
        moment = datetime(2000, 1, 17, 8, 0)
        assert always().next_boundary(moment) is None
        assert never().next_boundary(moment) is None

    def test_one_off_window(self):
        expr = one_off(
            datetime(2000, 1, 17, 8, 0), datetime(2000, 1, 17, 13, 0)
        )
        before = datetime(2000, 1, 17, 7, 0)
        assert expr.next_boundary(before) == datetime(2000, 1, 17, 8, 0)
        inside = datetime(2000, 1, 17, 9, 0)
        assert expr.next_boundary(inside) == datetime(2000, 1, 17, 13, 0)
        assert expr.next_boundary(datetime(2000, 1, 17, 14, 0)) is None

    def test_weekday_granularity_is_midnight(self):
        expr = weekdays()
        moment = datetime(2000, 1, 17, 18, 0)
        assert expr.next_boundary(moment) == datetime(2000, 1, 18, 0, 0)

    def test_month_set_jumps_to_month_turn(self):
        expr = months(7)
        moment = datetime(2000, 1, 17, 18, 0)
        assert expr.next_boundary(moment) == datetime(2000, 2, 1)
        december = datetime(2000, 12, 31, 23, 0)
        assert expr.next_boundary(december) == datetime(2001, 1, 1)

    def test_composites_take_earliest_member_boundary(self):
        expr = weekdays() & time_window("19:00", "22:00")
        moment = datetime(2000, 1, 17, 18, 0)
        assert expr.next_boundary(moment) == datetime(2000, 1, 17, 19, 0)
        complement = ~time_window("19:00", "22:00")
        assert complement.next_boundary(moment) == datetime(2000, 1, 17, 19, 0)

    def test_boundaries_are_never_late(self):
        # Walk a composite expression minute-by-minute across a day:
        # every observed value flip must coincide with (or follow) a
        # boundary the expression itself predicted.
        expr = (weekdays() & time_window("19:00", "22:00")) | time_window(
            "06:30", "07:15"
        )
        moment = datetime(2000, 1, 17, 0, 0)
        horizon = moment + timedelta(days=2)
        value = expr.contains(moment)
        boundary = expr.next_boundary(moment)
        while moment < horizon:
            moment += timedelta(minutes=1)
            new_value = expr.contains(moment)
            if new_value != value:
                assert boundary is not None and boundary <= moment
            if boundary is not None and moment >= boundary:
                boundary = expr.next_boundary(moment)
            value = new_value


class TestTimerWheel:
    def test_advance_pops_due_entries_in_order(self):
        wheel = TimerWheel()
        expr = always()
        wheel.schedule(10.0, "b", expr)
        wheel.schedule(5.0, "a", expr)
        wheel.schedule(20.0, "c", expr)
        assert wheel.next_deadline() == 5.0
        crossed = wheel.advance(12.0)
        assert [role for role, _ in crossed] == ["a", "b"]
        assert wheel.crossings == 2
        assert wheel.next_deadline() == 20.0

    def test_drop_role_discards_pending(self):
        wheel = TimerWheel()
        expr = always()
        wheel.schedule(5.0, "a", expr)
        wheel.schedule(6.0, "b", expr)
        wheel.drop_role("a")
        assert len(wheel) == 1
        assert wheel.next_deadline() == 6.0


# ----------------------------------------------------------------------
# The memo defects (satellite: activation.py:125)
# ----------------------------------------------------------------------
class TestMemoKey:
    def test_real_clock_queries_hit_the_memo_between_boundaries(self):
        # The old key contained clock.now(): with a wall clock every
        # query was a miss and re-evaluated every binding.  Keyed on
        # the wheel's crossing count, queries inside one boundary
        # window evaluate nothing.
        clock = WallClock(datetime(2000, 1, 17, 18, 0))
        state = EnvironmentState()
        activator = EnvironmentRoleActivator(state, clock)
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        activator.bind("armed", state_equals("alarm", True))
        baseline = activator.evaluations
        for _ in range(50):
            clock.step(seconds=0.25)  # time moves between every query
            assert activator.active_environment_roles() == set()
        assert activator.memo_hits == 50
        assert activator.evaluations == baseline  # zero re-evaluations

    def test_boundary_crossing_re_evaluates_only_temporal_roles(self):
        clock = WallClock(datetime(2000, 1, 17, 18, 59))
        state = EnvironmentState()
        activator = EnvironmentRoleActivator(state, clock)
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        activator.bind("armed", state_equals("alarm", True))
        assert activator.active_environment_roles() == set()
        baseline = activator.evaluations
        clock.step(minutes=2)  # crosses 19:00
        assert activator.active_environment_roles() == {"free-time"}
        assert activator.evaluations == baseline + 1  # free-time only

    def test_same_length_swap_is_not_masked(self):
        # unbind+bind at constant len(bindings): the old key never
        # noticed; the bindings revision and the eager rebind path do.
        clock = SimulatedClock(datetime(2000, 1, 17, 18, 0))
        state = EnvironmentState()
        activator = EnvironmentRoleActivator(state, clock)
        activator.bind("a", during(never()))
        activator.bind("b", during(never()))
        assert activator.active_environment_roles() == set()
        revision = activator.revision
        bindings_before = activator.bindings_revision
        activator.unbind("b")
        activator.bind("c", during(always()))
        assert activator.bindings_revision == bindings_before + 2
        assert activator.active_environment_roles() == {"c"}
        assert activator.revision > revision

    def test_memo_miss_on_unobserved_state_write(self):
        # Without a bus, state writes are only visible via the state
        # revision — the query path must miss and re-evaluate.
        clock = WallClock(datetime(2000, 1, 17, 18, 0))
        state = EnvironmentState()
        activator = EnvironmentRoleActivator(state, clock)
        activator.bind("armed", state_equals("alarm", True))
        assert activator.active_environment_roles() == set()
        state.set("alarm", True)
        assert activator.active_environment_roles() == {"armed"}
        assert activator.memo_misses >= 1


# ----------------------------------------------------------------------
# Eager transitions (the lazily-observed-revision bug)
# ----------------------------------------------------------------------
class TestEagerTransitions:
    def test_clock_advance_bumps_revision_with_zero_queries(self):
        # The pre-fix activator moved its revision inside
        # active_environment_roles(); an advance with no query in
        # flight left the counter — and every PDP cache key — stale.
        clock = SimulatedClock(datetime(2000, 1, 17, 18, 0))
        bus = EventBus(clock=clock)
        state = EnvironmentState(bus)
        activator = EnvironmentRoleActivator(state, clock, bus=bus)
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        revision = activator._revision  # raw: no observing read
        deactivations = []
        bus.subscribe("role.activated", lambda e: deactivations.append(e))
        clock.advance(hours=2)  # 20:00 — no query anywhere
        assert activator._revision > revision
        assert len(deactivations) == 1

    def test_wall_clock_flip_caught_on_first_observation(self):
        clock = WallClock(datetime(2000, 1, 17, 19, 30))
        bus = EventBus()
        state = EnvironmentState(bus)
        activator = EnvironmentRoleActivator(state, clock, bus=bus)
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        assert activator.is_active("free-time")
        clock.step(hours=3)  # 22:30 — nothing notifies the activator
        deactivated = []
        bus.subscribe("role.deactivated", lambda e: deactivated.append(e))
        # The first read advances the wheel, publishes the transition,
        # and moves the revision — all before returning the set.
        assert activator.active_environment_roles() == set()
        assert [e.get("role") for e in deactivated] == ["free-time"]

    def test_next_boundary_exposed_for_push_drivers(self):
        clock = SimulatedClock(datetime(2000, 1, 17, 18, 0))
        state = EnvironmentState()
        activator = EnvironmentRoleActivator(state, clock)
        assert activator.next_boundary() is None
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        deadline = activator.next_boundary()
        assert deadline == to_timestamp(datetime(2000, 1, 17, 19, 0))
        clock.advance(hours=2)
        # Crossed 19:00: the wheel now holds the 22:00 edge.
        assert activator.next_boundary() == to_timestamp(
            datetime(2000, 1, 17, 22, 0)
        )

    def test_jump_across_whole_window_stays_scheduled(self):
        # One big jump across start *and* end of the window: the set
        # is unchanged at the destination (a single jump cannot
        # observe the interior, exactly like a full recompute), but
        # the crossing is counted and the wheel reschedules from the
        # destination — the next day's window will still be pushed.
        clock = SimulatedClock(datetime(2000, 1, 17, 18, 0))
        state = EnvironmentState()
        activator = EnvironmentRoleActivator(state, clock)
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        clock.advance(hours=9)  # 03:00 next day
        assert activator.active_environment_roles() == set()
        assert activator.boundaries_crossed == 1
        assert activator.next_boundary() == to_timestamp(
            datetime(2000, 1, 18, 19, 0)
        )
