"""Failure injection — the substrate must fail closed, not fall over.

The home's sensors and event consumers are the least trustworthy part
of the system (§3: residents are not technologists; hardware is
flaky).  These tests inject the failures a deployment will actually
see — garbage sensor values, missing variables, crashing event
handlers, providers that throw — and check two things everywhere:

1. the system keeps running (no propagated exceptions on the hot path);
2. every ambiguity resolves toward DENY / inactive (fail closed).
"""

from datetime import datetime

import pytest

from repro.core import GrbacPolicy, MediationEngine
from repro.env import (
    EnvironmentRoleActivator,
    EnvironmentState,
    EventBus,
    SimulatedClock,
    state_below,
    state_equals,
)
from repro.env.providers import CallbackProvider, ProviderRegistry
from repro.exceptions import EnvironmentError_


@pytest.fixture
def stack():
    clock = SimulatedClock(datetime(2000, 1, 17, 12, 0))
    bus = EventBus(clock=clock)
    state = EnvironmentState(bus)
    activator = EnvironmentRoleActivator(state, clock, bus=bus)
    return clock, bus, state, activator


class TestGarbageSensorValues:
    def test_malformed_numeric_deactivates_role(self, stack):
        clock, _, state, activator = stack
        activator.bind("low-load", state_below("system.load", 0.5))
        state.set("system.load", 0.2)
        assert activator.is_active("low-load")
        # The "sensor" starts reporting garbage.
        state.set("system.load", "!!corrupt!!")
        assert not activator.is_active("low-load")
        # And recovers.
        state.set("system.load", 0.1)
        assert activator.is_active("low-load")

    def test_none_value_fails_closed(self, stack):
        clock, _, state, activator = stack
        activator.bind("door-locked", state_equals("door", "locked"))
        state.set("door", None)
        assert not activator.is_active("door-locked")

    def test_missing_variable_role_inactive_not_error(self, stack):
        clock, _, state, activator = stack
        activator.bind("never-fed", state_below("ghost.sensor", 1))
        assert activator.active_environment_roles() == set()

    def test_mediation_stays_deny_under_garbage(self, stack):
        clock, _, state, activator = stack
        policy = GrbacPolicy()
        policy.add_subject("alice")
        policy.add_subject_role("child")
        policy.assign_subject("alice", "child")
        policy.add_object("tv")
        policy.add_environment_role("calm")
        activator.bind("calm", state_below("noise", 10))
        policy.grant("child", "watch", "any-object", "calm")
        engine = MediationEngine(policy, activator)
        state.set("noise", 3)
        assert engine.check("alice", "watch", "tv")
        state.set("noise", {"unexpected": "dict"})
        assert not engine.check("alice", "watch", "tv")


class TestCrashingConsumers:
    def test_crashing_handler_does_not_block_role_activation(self, stack):
        clock, bus, state, activator = stack
        bus.subscribe("env.changed", lambda e: 1 / 0)  # a broken app
        activator.bind("flag-up", state_equals("flag", True))
        state.set("flag", True)  # delivery hits the broken handler
        assert activator.is_active("flag-up")
        assert len(bus.errors) >= 1

    def test_crashing_condition_fails_that_role_only(self, stack):
        clock, _, state, activator = stack
        from repro.env.conditions import Condition

        class Exploding(Condition):
            def evaluate(self, state_, clock_):
                raise RuntimeError("sensor driver bug")

            def describe(self):
                return "exploding"

        activator.bind("healthy", state_equals("ok", True))
        state.set("ok", True)
        # A condition that raises (not just returns garbage) is a
        # programming error and must surface — already at bind time,
        # where the activator eagerly evaluates the new role...
        with pytest.raises(RuntimeError):
            activator.bind("broken", Exploding())
        # ...and again on any later query while the binding stands.
        with pytest.raises(RuntimeError):
            activator.active_environment_roles()
        # The healthy role is unaffected by its broken neighbour.
        assert "healthy" in activator.bound_roles()


class TestProviderFailures:
    def test_provider_exception_surfaces_on_registration(self, stack):
        clock, _, state, _ = stack
        registry = ProviderRegistry(state, clock)

        def broken(clock_):
            raise OSError("sensor bus offline")

        with pytest.raises(OSError):
            registry.register(CallbackProvider("broken", broken))

    def test_clock_refuses_time_regression(self, stack):
        clock, _, _, _ = stack
        with pytest.raises(EnvironmentError_):
            clock.advance(-10)

    def test_state_rejects_anonymous_variables(self, stack):
        _, _, state, _ = stack
        with pytest.raises(EnvironmentError_):
            state.set("", 1)


class TestConfidenceEdgeCases:
    def test_zero_confidence_claims_never_grant(self):
        policy = GrbacPolicy()
        policy.add_subject_role("child")
        policy.add_object("tv")
        policy.grant("child", "watch", min_confidence=0.01)
        engine = MediationEngine(policy)
        from repro.core import AccessRequest

        request = AccessRequest(
            transaction="watch", obj="tv", role_claims={"child": 0.0}
        )
        assert not engine.decide(request).granted

    def test_threshold_one_requires_certainty(self):
        policy = GrbacPolicy()
        policy.add_subject("alice")
        policy.add_subject_role("child")
        policy.assign_subject("alice", "child")
        policy.add_object("tv")
        policy.grant("child", "watch")
        engine = MediationEngine(policy, confidence_threshold=1.0)
        from repro.core import AccessRequest

        nearly = AccessRequest(
            transaction="watch", obj="tv", subject="alice",
            identity_confidence=0.999999,
        )
        certain = AccessRequest(
            transaction="watch", obj="tv", subject="alice",
            identity_confidence=1.0,
        )
        assert not engine.decide(nearly).granted
        assert engine.decide(certain).granted
