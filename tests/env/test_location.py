"""Tests for the location service."""

from datetime import datetime

import pytest

from repro.env.clock import SimulatedClock
from repro.env.location import OUTSIDE, LocationService
from repro.env.state import EnvironmentState
from repro.exceptions import EnvironmentError_
from repro.home.topology import standard_home


@pytest.fixture
def state():
    return EnvironmentState()


@pytest.fixture
def service(state):
    home = standard_home()
    return LocationService(state, resolver=home.zone_resolver())


class TestTracking:
    def test_move_and_query(self, service, state):
        service.move("alice", "kitchen")
        assert service.location_of("alice") == "kitchen"
        assert state.get("location.alice") == "kitchen"

    def test_untracked_subject_is_outside(self, service):
        assert service.location_of("stranger") == OUTSIDE

    def test_leave(self, service):
        service.move("alice", "kitchen")
        service.leave("alice")
        assert service.location_of("alice") == OUTSIDE

    def test_whitelist_enforced(self, state):
        service = LocationService(state, valid_locations=["kitchen"])
        service.move("alice", "kitchen")
        service.leave("alice")  # OUTSIDE is always valid
        with pytest.raises(EnvironmentError_):
            service.move("alice", "narnia")


class TestZones:
    def test_room_in_home_zone(self, service):
        service.move("alice", "kitchen")
        assert service.is_in_zone("alice", "home")
        assert service.is_in_zone("alice", "kitchen")
        assert service.is_in_zone("alice", "downstairs")
        assert not service.is_in_zone("alice", "upstairs")

    def test_outside_is_in_no_zone_but_outside(self, service):
        service.leave("alice")
        assert not service.is_in_zone("alice", "home")
        assert service.is_in_zone("alice", OUTSIDE)

    def test_subjects_in_zone_and_occupancy(self, service):
        service.move("alice", "kitchen")
        service.move("mom", "livingroom")
        service.move("dad", "master-bedroom")
        assert set(service.subjects_in_zone("home")) == {"alice", "mom", "dad"}
        assert service.occupancy("downstairs") == 2
        assert service.occupancy("upstairs") == 1


class TestConditions:
    def test_in_zone_condition(self, service, state):
        clock = SimulatedClock(datetime(2000, 1, 17))
        condition = service.in_zone_condition("alice", "home")
        assert not condition.evaluate(state, clock)  # untracked
        service.move("alice", "kitchen")
        assert condition.evaluate(state, clock)
        service.leave("alice")
        assert not condition.evaluate(state, clock)

    def test_in_zone_condition_with_floor_zone(self, service, state):
        clock = SimulatedClock(datetime(2000, 1, 17))
        condition = service.in_zone_condition("alice", "upstairs")
        service.move("alice", "kids-bedroom")
        assert condition.evaluate(state, clock)
        service.move("alice", "kitchen")
        assert not condition.evaluate(state, clock)

    def test_zone_occupied_condition(self, service, state):
        clock = SimulatedClock(datetime(2000, 1, 17))
        condition = service.zone_occupied_condition("home", minimum=2)
        service.move("alice", "kitchen")
        assert not condition.evaluate(state, clock)
        service.move("mom", "livingroom")
        assert condition.evaluate(state, clock)
        assert "occupancy(home) >= 2" == condition.describe()
