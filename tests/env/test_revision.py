"""Regression tests for the environment revision counters.

The PDP decision cache (PR 3) keys cached answers on
``(policy.decision_revision, environment revision, request)``; a
revision counter that fails to move when the active environment-role
set changes would let the cache serve a stale grant.  These tests pin
the contract: every activation/deactivation — whether driven by the
clock, by state writes, or by rebinding — is observable as a revision
bump *before* the new active set can be read.
"""

from __future__ import annotations

from datetime import datetime

from repro.env.conditions import state_equals
from repro.env.runtime import EnvironmentRuntime
from repro.env.temporal import time_window, weekdays


def make_runtime() -> EnvironmentRuntime:
    # Monday 2000-01-17, 18:00 — §5.1's canonical week.
    return EnvironmentRuntime(start=datetime(2000, 1, 17, 18, 0))


class TestActivatorRevision:
    def test_clock_driven_activation_bumps_revision(self, empty_policy):
        runtime = make_runtime()
        runtime.define_time_role(
            empty_policy, "free-time", weekdays() & time_window("19:00", "22:00")
        )
        before = runtime.activator.revision
        assert "free-time" not in runtime.active_roles()

        runtime.clock.advance(hours=2)  # 20:00 — inside the window
        assert "free-time" in runtime.active_roles()
        after_activate = runtime.activator.revision
        assert after_activate > before

        runtime.clock.advance(hours=3)  # 23:00 — outside again
        assert "free-time" not in runtime.active_roles()
        assert runtime.activator.revision > after_activate

    def test_state_driven_activation_bumps_revision(self, empty_policy):
        runtime = make_runtime()
        runtime.define_role(
            empty_policy, "emergency", state_equals("alarm", "on")
        )
        before = runtime.activator.revision
        runtime.state.set("alarm", "on")
        assert "emergency" in runtime.active_roles()
        assert runtime.activator.revision > before

    def test_revision_observable_without_prior_query(self, empty_policy):
        # Reading .revision alone must fold in pending transitions —
        # a cache that reads the counter before the set is safe.
        runtime = make_runtime()
        runtime.define_time_role(
            empty_policy, "free-time", time_window("19:00", "22:00")
        )
        before = runtime.activator.revision
        runtime.clock.advance(hours=2)
        # No active_roles() call in between: the property itself must see it.
        assert runtime.activator.revision > before

    def test_revision_stable_when_nothing_changes(self, empty_policy):
        runtime = make_runtime()
        runtime.define_time_role(
            empty_policy, "free-time", time_window("19:00", "22:00")
        )
        revision = runtime.activator.revision
        assert runtime.activator.revision == revision
        # A clock advance that does not cross an activation boundary
        # leaves the activation revision alone (cache stays warm).
        runtime.clock.advance(minutes=5)  # 18:05, still outside
        assert runtime.activator.revision == revision

    def test_unbind_bumps_revision_when_role_was_active(self, empty_policy):
        runtime = make_runtime()
        runtime.define_role(empty_policy, "armed", state_equals("alarm", "on"))
        runtime.state.set("alarm", "on")
        assert "armed" in runtime.active_roles()
        before = runtime.activator.revision
        runtime.activator.unbind("armed")
        assert "armed" not in runtime.active_roles()
        assert runtime.activator.revision > before

    def test_revision_is_monotonic(self, empty_policy):
        runtime = make_runtime()
        runtime.define_role(empty_policy, "armed", state_equals("alarm", "on"))
        seen = [runtime.activator.revision]
        for value in ("on", "off", "on", "on", "off"):
            runtime.state.set("alarm", value)
            runtime.clock.advance(minutes=1)
            seen.append(runtime.activator.revision)
        assert seen == sorted(seen)


class TestRuntimeRevision:
    def test_runtime_revision_covers_state_writes(self, empty_policy):
        # Requester-relative sources (location injection) read state
        # directly, so the runtime-level revision must move on *any*
        # state write even when no bound role flips.
        runtime = make_runtime()
        before = runtime.revision
        runtime.state.set("location.alice", "kitchen")
        assert runtime.revision > before

    def test_runtime_revision_covers_activation(self, empty_policy):
        runtime = make_runtime()
        runtime.define_time_role(
            empty_policy, "free-time", time_window("19:00", "22:00")
        )
        before = runtime.revision
        runtime.clock.advance(hours=2)
        assert runtime.revision > before

    def test_sum_of_counters_cannot_alias_distinct_snapshots(self, empty_policy):
        # runtime.revision is activator.revision + state.revision.  A
        # sum of counters is only alias-free if *both* components are
        # monotonically non-decreasing — then the sum strictly
        # increases whenever either moves, so one value can never
        # stand for two different (state, activation) snapshots.
        # Drive both counters through interleaved bumps and check the
        # pairing: every distinct (activator, state) pair the runtime
        # ever exposes maps to a distinct sum.
        runtime = make_runtime()
        runtime.define_role(empty_policy, "armed", state_equals("alarm", "on"))
        runtime.define_time_role(
            empty_policy, "free-time", time_window("19:00", "22:00")
        )
        seen = {}
        for step in range(40):
            if step % 3 == 0:
                runtime.state.set("alarm", "on" if step % 2 else "off")
            if step % 5 == 0:
                runtime.clock.advance(hours=1)
            pair = (runtime.activator.revision, runtime.state.revision)
            total = runtime.revision
            if pair in seen:
                assert seen[pair] == total
            else:
                assert total not in seen.values(), (
                    f"sum {total} aliases {pair} with another snapshot"
                )
                seen[pair] = total

    def test_revision_regression_is_asserted(self, empty_policy):
        # The property guards itself: a component that ever stepped
        # backwards must trip the monotonicity assertion, not silently
        # reuse a key.
        import pytest

        runtime = make_runtime()
        runtime.state.set("x", 1)
        assert runtime.revision > 0
        runtime.state.revision = 0  # simulate a buggy reset
        with pytest.raises(AssertionError):
            runtime.revision

    def test_policy_mutations_move_decision_revision(self, empty_policy):
        # The policy side of the PR 1 invalidation path, audited: every
        # decision-relevant mutation must move decision_revision.
        policy = empty_policy
        seen = [policy.decision_revision]
        policy.add_subject("alice")
        policy.add_subject_role("child")
        policy.assign_subject("alice", "child")
        seen.append(policy.decision_revision)
        policy.add_object("tv")
        policy.add_object_role("entertainment")
        policy.assign_object("tv", "entertainment")
        seen.append(policy.decision_revision)
        rule = policy.grant("child", "watch", "entertainment")
        seen.append(policy.decision_revision)
        policy.remove_permission(rule)
        seen.append(policy.decision_revision)
        policy.revoke_subject("alice", "child")
        seen.append(policy.decision_revision)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen), "every mutation must bump"
