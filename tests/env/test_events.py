"""Tests for the trusted event system."""

import pytest

from repro.env.clock import SimulatedClock
from repro.env.events import Event, EventBus
from repro.exceptions import EnvironmentError_


class TestEvent:
    def test_payload_copied(self):
        payload = {"a": 1}
        event = Event("env.changed", payload)
        payload["a"] = 2
        assert event.get("a") == 1

    def test_invalid_type_rejected(self):
        with pytest.raises(EnvironmentError_):
            Event("")
        with pytest.raises(EnvironmentError_):
            Event("has space")

    def test_get_default(self):
        assert Event("x").get("missing", 7) == 7


class TestSubscription:
    def test_exact_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("env.changed", seen.append)
        bus.publish("env.changed", name="x")
        bus.publish("role.activated", role="r")
        assert len(seen) == 1
        assert seen[0].get("name") == "x"

    def test_prefix_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("role.*", seen.append)
        bus.publish("role.activated", role="a")
        bus.publish("role.deactivated", role="b")
        bus.publish("env.changed")
        assert [e.type for e in seen] == ["role.activated", "role.deactivated"]

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish("a.b")
        bus.publish("c.d")
        assert len(seen) == 2

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe("x", seen.append)
        bus.publish("x")
        unsubscribe()
        bus.publish("x")
        assert len(seen) == 1

    def test_delivery_in_publication_order(self):
        bus = EventBus()
        order = []
        bus.subscribe("*", lambda e: order.append(e.get("n")))
        for n in range(5):
            bus.publish("tick", n=n)
        assert order == [0, 1, 2, 3, 4]


class TestErrorHandling:
    def test_nonstrict_captures_handler_errors(self):
        bus = EventBus()
        bus.subscribe("x", lambda e: 1 / 0)
        seen = []
        bus.subscribe("x", seen.append)
        bus.publish("x")
        assert len(bus.errors) == 1
        assert isinstance(bus.errors[0].error, ZeroDivisionError)
        # Later subscribers still got the event.
        assert len(seen) == 1

    def test_strict_propagates(self):
        bus = EventBus(strict=True)
        bus.subscribe("x", lambda e: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            bus.publish("x")


class TestTimestampsAndHistory:
    def test_clock_stamps_events(self):
        clock = SimulatedClock()
        bus = EventBus(clock=clock)
        event = bus.publish("x")
        assert event.timestamp == clock.now()

    def test_no_clock_no_stamp(self):
        assert EventBus().publish("x").timestamp is None

    def test_history_filter(self):
        bus = EventBus()
        bus.publish("a")
        bus.publish("b")
        bus.publish("a")
        assert len(bus.history()) == 3
        assert len(bus.history("a")) == 2
        assert bus.published_count == 3

    def test_history_bounded(self):
        bus = EventBus()
        bus._history_capacity = 10
        for n in range(25):
            bus.publish("tick", n=n)
        assert len(bus.history()) == 10
        assert bus.history()[-1].get("n") == 24
        assert bus.published_count == 25

    def test_clear_history(self):
        bus = EventBus()
        bus.subscribe("x", lambda e: 1 / 0)
        bus.publish("x")
        bus.clear_history()
        assert bus.history() == []
        assert bus.errors == []
