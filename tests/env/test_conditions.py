"""Tests for environment-role conditions."""

from datetime import datetime

import pytest

from repro.env.clock import SimulatedClock
from repro.env.conditions import (
    always_false,
    always_true,
    during,
    state_above,
    state_below,
    state_equals,
    state_test,
    subject_located,
)
from repro.env.state import EnvironmentState
from repro.env.temporal import time_window, weekdays


@pytest.fixture
def state():
    return EnvironmentState()


@pytest.fixture
def clock():
    return SimulatedClock(datetime(2000, 1, 17, 19, 30))  # Monday evening


class TestTemporalCondition:
    def test_follows_the_clock(self, state, clock):
        condition = during(weekdays() & time_window("19:00", "22:00"))
        assert condition.evaluate(state, clock)
        clock.advance(hours=3)  # 22:30
        assert not condition.evaluate(state, clock)

    def test_describe(self, state, clock):
        assert "time in" in during(weekdays()).describe()


class TestStateConditions:
    def test_equals(self, state, clock):
        condition = state_equals("door.front", "locked")
        assert not condition.evaluate(state, clock)  # missing -> False
        state.set("door.front", "locked")
        assert condition.evaluate(state, clock)
        state.set("door.front", "open")
        assert not condition.evaluate(state, clock)

    def test_below_above(self, state, clock):
        state.set("system.load", 0.4)
        assert state_below("system.load", 0.5).evaluate(state, clock)
        assert not state_above("system.load", 0.5).evaluate(state, clock)
        state.set("system.load", 0.9)
        assert state_above("system.load", 0.5).evaluate(state, clock)

    def test_arbitrary_predicate(self, state, clock):
        condition = state_test("occupancy.home", lambda n: n >= 2, "2+ home")
        state.set("occupancy.home", 3)
        assert condition.evaluate(state, clock)
        assert condition.describe() == "2+ home"

    def test_missing_variable_fails_closed(self, state, clock):
        assert not state_below("never.set", 100).evaluate(state, clock)

    def test_malformed_value_fails_closed(self, state, clock):
        state.set("system.load", "not-a-number")
        assert not state_below("system.load", 0.5).evaluate(state, clock)

    def test_subject_located(self, state, clock):
        condition = subject_located("alice", "kitchen")
        state.set("location.alice", "kitchen")
        assert condition.evaluate(state, clock)
        state.set("location.alice", "garage")
        assert not condition.evaluate(state, clock)


class TestCombinators:
    def test_and_or_not(self, state, clock):
        state.set("a", 1)
        a = state_equals("a", 1)
        b = state_equals("b", 1)
        assert (a | b).evaluate(state, clock)
        assert not (a & b).evaluate(state, clock)
        assert (~b).evaluate(state, clock)
        state.set("b", 1)
        assert (a & b).evaluate(state, clock)

    def test_constants(self, state, clock):
        assert always_true().evaluate(state, clock)
        assert not always_false().evaluate(state, clock)

    def test_describe_composites(self, state, clock):
        text = (state_equals("a", 1) & ~state_equals("b", 2)).describe()
        assert "and" in text and "not" in text
