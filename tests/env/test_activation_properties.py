"""Property: incremental activation ≡ full recompute.

The event-driven activator re-evaluates only the roles affected by
each change (dependency index, timer wheel).  Over *any* interleaving
of state writes, location moves, clock advances, and bind/unbind
operations, its answer must be identical to evaluating every bound
condition from scratch — and its revision must move between any two
observations whose active sets differ.
"""

from __future__ import annotations

from datetime import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.activation import EnvironmentRoleActivator
from repro.env.clock import SimulatedClock
from repro.env.conditions import (
    AllOf,
    AnyOf,
    Not,
    during,
    state_equals,
    subject_located,
)
from repro.env.events import EventBus
from repro.env.state import EnvironmentState
from repro.env.temporal import time_window, weekdays, weekends

START = datetime(2000, 1, 17, 8, 0)  # Monday

SUBJECTS = ["alice", "bobby"]
ZONES = ["kitchen", "den", "outside"]
VARIABLES = ["alarm", "noise", "guests"]

#: A small vocabulary of analyzable and composite conditions.
CONDITIONS = [
    ("free-time", during(time_window("19:00", "22:00"))),
    ("weekday", during(weekdays())),
    ("weekend-morning", during(weekends() & time_window("06:00", "12:00"))),
    ("armed", state_equals("alarm", True)),
    ("quiet", Not(state_equals("noise", "loud"))),
    ("alice-kitchen", subject_located("alice", "kitchen")),
    (
        "supervised-tv",
        AllOf(
            (
                subject_located("bobby", "den"),
                AnyOf(
                    (
                        subject_located("alice", "den"),
                        state_equals("guests", True),
                    )
                ),
            )
        ),
    ),
]


def op_strategy():
    set_state = st.tuples(
        st.just("set"),
        st.sampled_from(VARIABLES),
        st.sampled_from([True, False, "loud", "soft", 1, 2]),
    )
    move = st.tuples(
        st.just("move"),
        st.sampled_from(SUBJECTS),
        st.sampled_from(ZONES),
    )
    advance = st.tuples(
        st.just("advance"),
        st.integers(min_value=1, max_value=18 * 60),  # minutes
        st.just(None),
    )
    bind = st.tuples(
        st.just("bind"), st.integers(0, len(CONDITIONS) - 1), st.just(None)
    )
    unbind = st.tuples(
        st.just("unbind"), st.integers(0, len(CONDITIONS) - 1), st.just(None)
    )
    return st.one_of(set_state, move, advance, bind, unbind)


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy(), min_size=1, max_size=40))
def test_incremental_activation_matches_full_recompute(ops) -> None:
    clock = SimulatedClock(START)
    bus = EventBus(clock=clock, strict=True)
    state = EnvironmentState(bus)
    activator = EnvironmentRoleActivator(state, clock, bus=bus)
    bound = {}

    last_revision = -1
    last_active = None
    for op, a, b in ops:
        if op == "set":
            state.set(a, b)
        elif op == "move":
            state.set(f"location.{a}", b)
        elif op == "advance":
            clock.advance(minutes=a)
        elif op == "bind":
            name, condition = CONDITIONS[a]
            activator.bind(name, condition)
            bound[name] = condition
        elif op == "unbind":
            name, _ = CONDITIONS[a]
            if name in bound:
                activator.unbind(name)
                del bound[name]

        observed = activator.active_environment_roles()
        # Ground truth: evaluate every bound condition from scratch.
        expected = {
            name
            for name, condition in bound.items()
            if condition.evaluate(state, clock)
        }
        assert observed == expected, (op, a, b)

        revision = activator.revision
        assert revision >= last_revision
        if last_active is not None and observed != last_active:
            assert revision > last_revision, (
                "active set changed without a revision bump"
            )
        last_revision = revision
        last_active = observed


@settings(max_examples=40, deadline=None)
@given(
    st.lists(op_strategy(), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=len(CONDITIONS) - 1),
)
def test_refresh_is_a_noop_after_incremental_updates(ops, seed_binding) -> None:
    # With the handlers wired, every transition is applied at its
    # cause; a trailing full refresh() must find nothing left to do.
    clock = SimulatedClock(START)
    bus = EventBus(clock=clock, strict=True)
    state = EnvironmentState(bus)
    activator = EnvironmentRoleActivator(state, clock, bus=bus)
    name, condition = CONDITIONS[seed_binding]
    activator.bind(name, condition)
    for op, a, b in ops:
        if op == "set":
            state.set(a, b)
        elif op == "move":
            state.set(f"location.{a}", b)
        elif op == "advance":
            clock.advance(minutes=a)
        elif op == "bind":
            bind_name, bind_condition = CONDITIONS[a]
            activator.bind(bind_name, bind_condition)
        elif op == "unbind":
            unbind_name, _ = CONDITIONS[a]
            if unbind_name in activator.bound_roles():
                activator.unbind(unbind_name)
    assert activator.refresh() == {}
