"""Tests for the periodic-time algebra — the paper's named periods."""

from datetime import date, datetime, time

import pytest

from repro.env.temporal import (
    always,
    date_range,
    days,
    intersection,
    months,
    never,
    nth_weekday,
    one_off,
    parse_time_of_day,
    time_window,
    union,
    weekdays,
    weekends,
)
from repro.exceptions import TemporalExpressionError

MONDAY_EVENING = datetime(2000, 1, 17, 19, 30)  # Monday
SATURDAY_EVENING = datetime(2000, 1, 22, 19, 30)  # Saturday
MONDAY_MORNING = datetime(2000, 1, 17, 9, 0)


class TestParseTime:
    def test_basic(self):
        assert parse_time_of_day("19:00") == time(19, 0)
        assert parse_time_of_day("07:05:30") == time(7, 5, 30)

    @pytest.mark.parametrize("bad", ["25:00", "12:61", "noon", "19", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(TemporalExpressionError):
            parse_time_of_day(bad)


class TestTimeWindow:
    def test_free_time_window(self):
        # §5.1: free time is 19:00-22:00.
        free_time = time_window("19:00", "22:00")
        assert MONDAY_EVENING in free_time
        assert datetime(2000, 1, 17, 22, 0) not in free_time  # end exclusive
        assert datetime(2000, 1, 17, 19, 0) in free_time  # start inclusive
        assert MONDAY_MORNING not in free_time

    def test_midnight_wrap(self):
        night = time_window("22:00", "06:00")
        assert datetime(2000, 1, 17, 23, 30) in night
        assert datetime(2000, 1, 18, 3, 0) in night
        assert datetime(2000, 1, 17, 12, 0) not in night

    def test_degenerate_rejected(self):
        with pytest.raises(TemporalExpressionError):
            time_window("09:00", "09:00")


class TestWeekdaySets:
    def test_weekdays_and_weekends_partition(self):
        for day in range(17, 24):  # a full week of Jan 2000
            moment = datetime(2000, 1, day, 12, 0)
            assert (moment in weekdays()) != (moment in weekends())

    def test_specific_days(self):
        mondays = days("monday")
        assert MONDAY_EVENING in mondays
        assert SATURDAY_EVENING not in mondays

    def test_case_insensitive_names(self):
        assert MONDAY_EVENING in days("MONDAY")

    def test_unknown_day_rejected(self):
        with pytest.raises(TemporalExpressionError):
            days("funday")

    def test_describe(self):
        assert "monday" in days("monday", "friday").describe()


class TestMonths:
    def test_by_number_and_name(self):
        july = months(7)
        assert datetime(2000, 7, 4) in july
        assert datetime(2000, 6, 30) not in july
        assert datetime(2000, 7, 4) in months("july")

    def test_unknown_month_rejected(self):
        with pytest.raises(TemporalExpressionError):
            months("jully")
        with pytest.raises(TemporalExpressionError):
            months(13)


class TestNthWeekday:
    def test_first_monday_of_month(self):
        # §4.2.2: "the first Monday of each month".
        first_monday = nth_weekday(1, "monday")
        assert datetime(2000, 1, 3, 10, 0) in first_monday
        assert datetime(2000, 1, 10, 10, 0) not in first_monday  # second Monday
        assert datetime(2000, 1, 4, 10, 0) not in first_monday  # a Tuesday
        assert datetime(2000, 2, 7, 10, 0) in first_monday  # next month

    def test_last_friday(self):
        last_friday = nth_weekday(-1, "friday")
        assert datetime(2000, 1, 28, 17, 0) in last_friday
        assert datetime(2000, 1, 21, 17, 0) not in last_friday

    def test_fifth_occurrence_only_in_long_months(self):
        fifth_monday = nth_weekday(5, "monday")
        assert datetime(2000, 1, 31) in fifth_monday  # Jan 2000 has 5 Mondays
        assert all(
            datetime(2000, 2, d) not in fifth_monday for d in range(1, 30)
        )

    def test_invalid_parameters(self):
        with pytest.raises(TemporalExpressionError):
            nth_weekday(0, "monday")
        with pytest.raises(TemporalExpressionError):
            nth_weekday(6, "monday")
        with pytest.raises(TemporalExpressionError):
            nth_weekday(1, "blursday")

    def test_describe_first_and_last(self):
        assert nth_weekday(1, "monday").describe() == "first monday of the month"
        assert nth_weekday(-1, "friday").describe() == "last friday of the month"


class TestRanges:
    def test_date_range_inclusive(self):
        vacation = date_range(date(2000, 7, 1), date(2000, 7, 14))
        assert datetime(2000, 7, 1, 0, 0) in vacation
        assert datetime(2000, 7, 14, 23, 59) in vacation
        assert datetime(2000, 7, 15, 0, 0) not in vacation

    def test_date_range_order_checked(self):
        with pytest.raises(TemporalExpressionError):
            date_range(date(2000, 2, 1), date(2000, 1, 1))

    def test_one_off_repairman_window(self):
        # §3: January 17, 2000, 8:00 a.m. to 1:00 p.m.
        visit = one_off(
            datetime(2000, 1, 17, 8, 0), datetime(2000, 1, 17, 13, 0)
        )
        assert datetime(2000, 1, 17, 8, 0) in visit
        assert datetime(2000, 1, 17, 12, 59) in visit
        assert datetime(2000, 1, 17, 13, 0) not in visit
        assert datetime(2000, 1, 18, 9, 0) not in visit

    def test_one_off_order_checked(self):
        with pytest.raises(TemporalExpressionError):
            one_off(datetime(2000, 1, 2), datetime(2000, 1, 1))


class TestAlgebra:
    def test_weekday_free_time(self):
        # §5.1's composite: weekdays AND 19:00-22:00.
        combined = weekdays() & time_window("19:00", "22:00")
        assert MONDAY_EVENING in combined
        assert SATURDAY_EVENING not in combined
        assert MONDAY_MORNING not in combined

    def test_weekday_mornings_in_july(self):
        # §6's "Weekday mornings in July".
        expression = weekdays() & time_window("06:00", "12:00") & months("july")
        assert datetime(2000, 7, 3, 9, 0) in expression  # July Monday morning
        assert datetime(2000, 7, 1, 9, 0) not in expression  # July Saturday
        assert datetime(2000, 6, 26, 9, 0) not in expression  # June Monday

    def test_union(self):
        either = days("monday") | days("friday")
        assert MONDAY_EVENING in either
        assert datetime(2000, 1, 21, 12, 0) in either  # Friday
        assert datetime(2000, 1, 19, 12, 0) not in either  # Wednesday

    def test_complement(self):
        not_weekend = ~weekends()
        assert MONDAY_EVENING in not_weekend
        assert SATURDAY_EVENING not in not_weekend

    def test_always_never(self):
        assert MONDAY_EVENING in always()
        assert MONDAY_EVENING not in never()

    def test_union_intersection_builders(self):
        u = union([days("monday"), days("tuesday")])
        i = intersection([weekdays(), time_window("09:00", "17:00")])
        assert MONDAY_EVENING in u
        assert MONDAY_MORNING in i
        with pytest.raises(TemporalExpressionError):
            union([])
        with pytest.raises(TemporalExpressionError):
            intersection([])

    def test_describe_composites(self):
        text = (weekdays() & time_window("19:00", "22:00")).describe()
        assert "and" in text
        assert "19:00-22:00" in text
