"""Property-based tests for the temporal algebra (hypothesis).

Set-theoretic laws must hold pointwise for arbitrary moments, and the
structured expressions must agree with brute-force calendar scans.
"""

from __future__ import annotations

import calendar
from datetime import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.temporal import (
    Complement,
    Intersection,
    Union,
    WeekdaySet,
    nth_weekday,
    time_window,
    weekdays,
    weekends,
)

moments = st.datetimes(
    min_value=datetime(1999, 1, 1), max_value=datetime(2003, 12, 31)
)

hours = st.integers(0, 23)
minutes = st.integers(0, 59)


@st.composite
def windows(draw):
    start = f"{draw(hours):02d}:{draw(minutes):02d}"
    end = f"{draw(hours):02d}:{draw(minutes):02d}"
    if start == end:
        end = f"{(int(end[:2]) + 1) % 24:02d}:{end[3:]}"
    return time_window(start, end)


@st.composite
def weekday_sets(draw):
    chosen = draw(st.sets(st.integers(0, 6), min_size=1, max_size=7))
    return WeekdaySet(frozenset(chosen))


simple_expressions = st.one_of(windows(), weekday_sets())


@st.composite
def expressions(draw, depth=2):
    if depth == 0:
        return draw(simple_expressions)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(simple_expressions)
    if kind == 1:
        return Complement(draw(expressions(depth=depth - 1)))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if kind == 2:
        return Union((left, right))
    return Intersection((left, right))


@given(expressions(), expressions(), moments)
@settings(max_examples=150, deadline=None)
def test_union_and_intersection_are_pointwise(a, b, moment):
    assert ((a | b).contains(moment)) == (a.contains(moment) or b.contains(moment))
    assert ((a & b).contains(moment)) == (a.contains(moment) and b.contains(moment))


@given(expressions(), moments)
@settings(max_examples=150, deadline=None)
def test_complement_is_involutive_and_pointwise(a, moment):
    assert (~a).contains(moment) == (not a.contains(moment))
    assert (~~a).contains(moment) == a.contains(moment)


@given(expressions(), expressions(), moments)
@settings(max_examples=100, deadline=None)
def test_de_morgan(a, b, moment):
    assert (~(a | b)).contains(moment) == ((~a) & (~b)).contains(moment)
    assert (~(a & b)).contains(moment) == ((~a) | (~b)).contains(moment)


@given(moments)
@settings(max_examples=150, deadline=None)
def test_weekdays_weekends_partition_every_moment(moment):
    assert weekdays().contains(moment) != weekends().contains(moment)


@given(windows(), moments)
@settings(max_examples=150, deadline=None)
def test_window_membership_matches_arithmetic(window, moment):
    moment_time = moment.time()
    if window.start < window.end:
        expected = window.start <= moment_time < window.end
    else:
        expected = moment_time >= window.start or moment_time < window.end
    assert window.contains(moment) == expected


@given(
    st.integers(1, 5),
    st.integers(0, 6),
    st.integers(1999, 2003),
    st.integers(1, 12),
)
@settings(max_examples=100, deadline=None)
def test_nth_weekday_matches_bruteforce_calendar_scan(n, weekday, year, month):
    expression = nth_weekday(n, calendar.day_name[weekday].lower())
    # Brute force: the n-th occurrence of the weekday in the month.
    matches = [
        day
        for day in range(1, calendar.monthrange(year, month)[1] + 1)
        if datetime(year, month, day).weekday() == weekday
    ]
    expected_day = matches[n - 1] if len(matches) >= n else None
    for day in range(1, calendar.monthrange(year, month)[1] + 1):
        moment = datetime(year, month, day, 12, 0)
        assert expression.contains(moment) == (day == expected_day)


@given(st.integers(0, 6), st.integers(1999, 2003), st.integers(1, 12))
@settings(max_examples=100, deadline=None)
def test_last_weekday_matches_bruteforce(weekday, year, month):
    expression = nth_weekday(-1, calendar.day_name[weekday].lower())
    matches = [
        day
        for day in range(1, calendar.monthrange(year, month)[1] + 1)
        if datetime(year, month, day).weekday() == weekday
    ]
    last = matches[-1]
    for day in matches:
        moment = datetime(year, month, day, 12, 0)
        assert expression.contains(moment) == (day == last)
