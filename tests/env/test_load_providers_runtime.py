"""Tests for the load provider, provider registry, and runtime."""

from datetime import datetime

import pytest

from repro.core import GrbacPolicy, MediationEngine
from repro.env.clock import SimulatedClock
from repro.env.conditions import state_below
from repro.env.load import LOAD_VARIABLE, SimulatedLoadProvider
from repro.env.providers import CallbackProvider, ClockProvider, ProviderRegistry
from repro.env.runtime import EnvironmentRuntime
from repro.env.state import EnvironmentState
from repro.env.temporal import time_window, weekdays
from repro.exceptions import EnvironmentError_


class TestLoadProvider:
    def test_initial_and_set(self):
        state = EnvironmentState()
        provider = SimulatedLoadProvider(state, initial=0.3)
        assert state.get(LOAD_VARIABLE) == 0.3
        provider.set_load(0.8)
        assert provider.load == 0.8
        assert state.get(LOAD_VARIABLE) == 0.8

    def test_random_walk_is_seeded_and_bounded(self):
        state_a = EnvironmentState()
        state_b = EnvironmentState()
        a = SimulatedLoadProvider(state_a, seed=7)
        b = SimulatedLoadProvider(state_b, seed=7)
        trace_a = [a.step() for _ in range(50)]
        trace_b = [b.step() for _ in range(50)]
        assert trace_a == trace_b
        assert all(0.0 <= value <= 1.0 for value in trace_a)

    def test_play_trace(self):
        state = EnvironmentState()
        provider = SimulatedLoadProvider(state)
        provider.play_trace([0.1, 0.9])
        assert state.get(LOAD_VARIABLE) == 0.9

    def test_validation(self):
        state = EnvironmentState()
        with pytest.raises(EnvironmentError_):
            SimulatedLoadProvider(state, initial=1.5)
        provider = SimulatedLoadProvider(state)
        with pytest.raises(EnvironmentError_):
            provider.set_load(-0.1)
        with pytest.raises(EnvironmentError_):
            provider.step(0)

    def test_gacl_style_gating(self):
        """§6 / Woo & Lam: execute heavy jobs only under low load."""
        state = EnvironmentState()
        clock = SimulatedClock(datetime(2000, 1, 1))
        provider = SimulatedLoadProvider(state, initial=0.9)
        low_load = state_below(LOAD_VARIABLE, 0.5)
        assert not low_load.evaluate(state, clock)
        provider.set_load(0.2)
        assert low_load.evaluate(state, clock)


class TestProviders:
    def test_clock_provider_mirrors_calendar(self):
        state = EnvironmentState()
        clock = SimulatedClock(datetime(2000, 1, 17, 9, 30))  # Monday
        ClockProvider().refresh(state, clock)
        assert state.get("time.hour") == 9
        assert state.get("time.weekday") == 0
        assert state.get("time.month") == 1

    def test_callback_provider(self):
        state = EnvironmentState()
        clock = SimulatedClock(datetime(2000, 1, 17))
        provider = CallbackProvider("temp", lambda c: {"temperature_f": 68})
        provider.refresh(state, clock)
        assert state.get("temperature_f") == 68

    def test_registry_refreshes_on_clock_advance(self):
        state = EnvironmentState()
        clock = SimulatedClock(datetime(2000, 1, 17, 9, 0))
        registry = ProviderRegistry(state, clock)
        registry.register(ClockProvider())
        assert state.get("time.hour") == 9
        clock.advance(hours=3)
        assert state.get("time.hour") == 12

    def test_registry_rejects_non_provider(self):
        state = EnvironmentState()
        clock = SimulatedClock(datetime(2000, 1, 17))
        registry = ProviderRegistry(state, clock)
        with pytest.raises(EnvironmentError_):
            registry.register(lambda: None)

    def test_registry_lists_providers(self):
        state = EnvironmentState()
        clock = SimulatedClock(datetime(2000, 1, 17))
        registry = ProviderRegistry(state, clock)
        provider = registry.register(ClockProvider())
        assert registry.providers() == [provider]


class TestRuntime:
    def test_define_time_role_end_to_end(self):
        runtime = EnvironmentRuntime(start=datetime(2000, 1, 17, 18, 0))
        policy = GrbacPolicy()
        runtime.define_time_role(
            policy, "free-time", time_window("19:00", "22:00")
        )
        assert "free-time" in policy.environment_roles
        assert "free-time" not in runtime.active_roles()
        runtime.clock.advance(hours=2)
        assert "free-time" in runtime.active_roles()

    def test_define_location_role(self):
        from repro.home.topology import standard_home

        home = standard_home()
        runtime = EnvironmentRuntime(
            start=datetime(2000, 1, 17, 9, 0), zone_resolver=home.zone_resolver()
        )
        policy = GrbacPolicy()
        runtime.define_location_role(policy, "tech-inside", "tech", "home")
        assert "tech-inside" not in runtime.active_roles()
        runtime.location.move("tech", "kitchen")
        assert "tech-inside" in runtime.active_roles()

    def test_start_and_clock_are_exclusive(self):
        with pytest.raises(ValueError):
            EnvironmentRuntime(
                start=datetime(2000, 1, 1),
                clock=SimulatedClock(datetime(2000, 1, 1)),
            )

    def test_now_reports_clock(self):
        runtime = EnvironmentRuntime(start=datetime(2000, 5, 5, 5, 5))
        assert runtime.now() == datetime(2000, 5, 5, 5, 5)

    def test_runtime_feeds_mediation(self):
        runtime = EnvironmentRuntime(start=datetime(2000, 1, 17, 20, 0))
        policy = GrbacPolicy()
        policy.add_subject("alice")
        policy.add_subject_role("child")
        policy.assign_subject("alice", "child")
        policy.add_object("tv")
        runtime.define_time_role(
            policy, "weekday-free-time", weekdays() & time_window("19:00", "22:00")
        )
        policy.grant("child", "watch", "any-object", "weekday-free-time")
        engine = MediationEngine(policy, runtime.activator)
        assert engine.check("alice", "watch", "tv")
        runtime.clock.advance(days=5)  # Saturday
        assert not engine.check("alice", "watch", "tv")
