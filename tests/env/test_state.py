"""Tests for EnvironmentState."""

import pytest

from repro.env.events import EventBus
from repro.env.state import EnvironmentState
from repro.exceptions import EnvironmentError_


class TestBasics:
    def test_set_get(self):
        state = EnvironmentState()
        state.set("location.alice", "kitchen")
        assert state.get("location.alice") == "kitchen"
        assert "location.alice" in state
        assert len(state) == 1

    def test_get_default(self):
        assert EnvironmentState().get("missing", 42) == 42

    def test_require_raises_when_missing(self):
        with pytest.raises(EnvironmentError_):
            EnvironmentState().require("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(EnvironmentError_):
            EnvironmentState().set("", 1)

    def test_update_many(self):
        state = EnvironmentState()
        state.update(a=1, b=2)
        assert state.get("a") == 1 and state.get("b") == 2

    def test_delete(self):
        state = EnvironmentState()
        state.set("x", 1)
        state.delete("x")
        assert "x" not in state
        state.delete("x")  # safe when absent

    def test_snapshot_is_copy(self):
        state = EnvironmentState()
        state.set("x", 1)
        snap = state.snapshot()
        snap["x"] = 99
        assert state.get("x") == 1

    def test_iteration(self):
        state = EnvironmentState()
        state.update(a=1, b=2)
        assert sorted(state) == ["a", "b"]


class TestRevisions:
    def test_revision_bumps_on_change(self):
        state = EnvironmentState()
        r0 = state.revision
        state.set("x", 1)
        assert state.revision == r0 + 1

    def test_no_bump_on_same_value(self):
        state = EnvironmentState()
        state.set("x", 1)
        r = state.revision
        state.set("x", 1)
        assert state.revision == r

    def test_delete_bumps(self):
        state = EnvironmentState()
        state.set("x", 1)
        r = state.revision
        state.delete("x")
        assert state.revision == r + 1


class TestEventEmission:
    def test_change_publishes_env_changed(self):
        bus = EventBus()
        state = EnvironmentState(bus)
        events = []
        bus.subscribe("env.changed", events.append)
        state.set("x", 1)
        state.set("x", 2)
        assert len(events) == 2
        assert events[0].get("old") is None and events[0].get("new") == 1
        assert events[1].get("old") == 1 and events[1].get("new") == 2

    def test_no_event_for_noop_set(self):
        bus = EventBus()
        state = EnvironmentState(bus)
        state.set("x", 1)
        count = bus.published_count
        state.set("x", 1)
        assert bus.published_count == count

    def test_delete_publishes(self):
        bus = EventBus()
        state = EnvironmentState(bus)
        state.set("x", 1)
        events = []
        bus.subscribe("env.changed", events.append)
        state.delete("x")
        assert events[0].get("new") is None
