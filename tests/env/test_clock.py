"""Tests for the simulated clock."""

from datetime import datetime, timedelta

import pytest

from repro.env.clock import (
    EPOCH,
    SimulatedClock,
    SystemClock,
    from_timestamp,
    to_timestamp,
)
from repro.exceptions import EnvironmentError_


class TestConversions:
    def test_round_trip(self):
        moment = datetime(2000, 1, 17, 8, 30, 15)
        assert from_timestamp(to_timestamp(moment)) == moment

    def test_epoch_is_zero(self):
        assert to_timestamp(EPOCH) == 0.0


class TestSimulatedClock:
    def test_default_start_is_the_repairman_morning(self):
        clock = SimulatedClock()
        assert clock.now_datetime() == datetime(2000, 1, 17, 8, 0)

    def test_advance_seconds(self):
        clock = SimulatedClock(datetime(2000, 1, 1))
        clock.advance(90)
        assert clock.now_datetime() == datetime(2000, 1, 1, 0, 1, 30)

    def test_advance_with_units(self):
        clock = SimulatedClock(datetime(2000, 1, 1))
        clock.advance(days=1, hours=2, minutes=30)
        assert clock.now_datetime() == datetime(2000, 1, 2, 2, 30)

    def test_advance_to(self):
        clock = SimulatedClock(datetime(2000, 1, 1))
        clock.advance_to(datetime(2000, 3, 15, 12, 0))
        assert clock.now_datetime() == datetime(2000, 3, 15, 12, 0)

    def test_backwards_movement_rejected(self):
        clock = SimulatedClock(datetime(2000, 1, 2))
        with pytest.raises(EnvironmentError_):
            clock.advance(-1)
        with pytest.raises(EnvironmentError_):
            clock.advance_to(datetime(2000, 1, 1))

    def test_observers_fire_on_every_advance(self):
        clock = SimulatedClock(datetime(2000, 1, 1))
        ticks = []
        clock.on_advance(lambda: ticks.append(clock.now()))
        clock.advance(10)
        clock.advance(hours=1)
        assert len(ticks) == 2
        assert ticks[0] < ticks[1]

    def test_iterate_steps_and_stops(self):
        clock = SimulatedClock(datetime(2000, 1, 1, 0, 0))
        moments = list(
            clock.iterate(datetime(2000, 1, 1, 1, 0), timedelta(minutes=15))
        )
        assert len(moments) == 4
        assert moments[-1] == datetime(2000, 1, 1, 1, 0)

    def test_iterate_rejects_nonpositive_step(self):
        clock = SimulatedClock(datetime(2000, 1, 1))
        with pytest.raises(EnvironmentError_):
            clock.iterate(datetime(2000, 1, 2), timedelta(0))

    def test_iterate_notifies_observers(self):
        clock = SimulatedClock(datetime(2000, 1, 1))
        ticks = []
        clock.on_advance(lambda: ticks.append(1))
        list(clock.iterate(datetime(2000, 1, 1, 0, 30), timedelta(minutes=10)))
        assert len(ticks) == 3


class TestSystemClock:
    def test_now_is_positive_and_monotonicish(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert first > 0
        assert second >= first

    def test_now_datetime_matches_now(self):
        clock = SystemClock()
        stamp = clock.now()
        moment = clock.now_datetime()
        assert abs(to_timestamp(moment) - stamp) < 5.0
