"""Tests for the environment-role activator."""

from datetime import datetime

import pytest

from repro.env.activation import EnvironmentRoleActivator
from repro.env.clock import SimulatedClock
from repro.env.conditions import during, state_equals
from repro.env.events import EventBus
from repro.env.state import EnvironmentState
from repro.env.temporal import time_window, weekdays
from repro.exceptions import EnvironmentError_


@pytest.fixture
def setup():
    clock = SimulatedClock(datetime(2000, 1, 17, 18, 0))  # Monday 18:00
    bus = EventBus(clock=clock)
    state = EnvironmentState(bus)
    activator = EnvironmentRoleActivator(state, clock, bus=bus)
    return clock, bus, state, activator


class TestBindings:
    def test_bind_and_query(self, setup):
        clock, bus, state, activator = setup
        activator.bind("weekdays", during(weekdays()))
        assert activator.is_active("weekdays")
        assert activator.bound_roles() == ["weekdays"]
        assert activator.condition_of("weekdays") is not None

    def test_unbind(self, setup):
        _, _, _, activator = setup
        activator.bind("x", during(weekdays()))
        activator.unbind("x")
        assert activator.active_environment_roles() == set()
        with pytest.raises(EnvironmentError_):
            activator.unbind("x")
        with pytest.raises(EnvironmentError_):
            activator.condition_of("x")

    def test_rebind_replaces_condition(self, setup):
        clock, _, state, activator = setup
        activator.bind("flex", state_equals("flag", True))
        assert not activator.is_active("flex")
        activator.bind("flex", during(weekdays()))
        assert activator.is_active("flex")

    def test_empty_name_rejected(self, setup):
        _, _, _, activator = setup
        with pytest.raises(EnvironmentError_):
            activator.bind("", during(weekdays()))


class TestActivationDynamics:
    def test_time_based_transition(self, setup):
        clock, _, _, activator = setup
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        assert not activator.is_active("free-time")
        clock.advance(hours=2)  # 20:00
        assert activator.is_active("free-time")
        clock.advance(hours=3)  # 23:00
        assert not activator.is_active("free-time")

    def test_state_based_transition(self, setup):
        _, _, state, activator = setup
        activator.bind("alert", state_equals("alarm", True))
        assert not activator.is_active("alert")
        state.set("alarm", True)
        assert activator.is_active("alert")
        state.set("alarm", False)
        assert not activator.is_active("alert")

    def test_cache_is_keyed_on_time_and_state(self, setup):
        clock, _, state, activator = setup
        calls = []

        from repro.env.conditions import Condition

        class Counting(Condition):
            def evaluate(self, state_, clock_):
                calls.append(1)
                return True

            def describe(self):
                return "counting"

        activator.bind("counted", Counting())
        activator.active_environment_roles()
        activator.active_environment_roles()  # cached
        assert len(calls) == 1
        clock.advance(1)
        activator.active_environment_roles()
        assert len(calls) == 2
        state.set("anything", 1)
        activator.active_environment_roles()
        assert len(calls) == 3


class TestTransitionEvents:
    def test_events_published_on_transitions(self, setup):
        clock, bus, _, activator = setup
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        activated = []
        deactivated = []
        bus.subscribe("role.activated", lambda e: activated.append(e.get("role")))
        bus.subscribe(
            "role.deactivated", lambda e: deactivated.append(e.get("role"))
        )
        clock.advance(hours=2)  # 20:00: inactive -> active
        clock.advance(minutes=30)  # still active: no event
        clock.advance(hours=2)  # 22:30: active -> inactive
        assert activated == ["free-time"]
        assert deactivated == ["free-time"]

    def test_refresh_returns_changes(self, setup):
        clock, _, _, activator = setup
        activator.bind("free-time", during(time_window("19:00", "22:00")))
        activator.refresh()
        # Manually advance the raw time without observers by using a
        # fresh refresh call after a clock advance.
        changes = activator.refresh()
        assert changes == {}

    def test_state_change_triggers_refresh_via_bus(self, setup):
        _, bus, state, activator = setup
        activator.bind("alert", state_equals("alarm", True))
        events = []
        bus.subscribe("role.activated", events.append)
        state.set("alarm", True)  # env.changed -> refresh -> role.activated
        assert len(events) == 1
