"""Unit tests for the append-only multi-tenant policy store.

The lineage contract under test:

* ``put`` appends, never rewrites — re-putting the head's exact
  content is a no-op, and identical text across versions/tenants is
  stored once (content-hash dedup);
* ``activate`` moves a pointer through the lint gate; a rejected
  candidate raises and the pointer does not move;
* ``rollback`` reactivates the previous *distinct* version without
  re-linting, and alternates when repeated (history, not a stack pop);
* the JSONL log replays to identical state, tolerating a torn final
  line (crash mid-append) but refusing interior corruption;
* compiled snapshots are content-addressed and LRU-bounded, so memory
  scales with distinct active texts, not tenant count.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import AccessRequest, MediationEngine
from repro.exceptions import PolicyStoreError
from repro.obs.metrics import MetricsRegistry
from repro.store import (
    DEFAULT_TENANT,
    CompiledSnapshotCache,
    PolicyStore,
    content_hash,
)

GRANT_DSL = """
subject role child
object role tv-devices
environment role free-time
subject alice is child
object livingroom/tv is tv-devices
allow child to watch on tv-devices when free-time
"""

DENY_DSL = GRANT_DSL.replace("allow child", "deny child")

THIRD_DSL = GRANT_DSL + "allow child to watch on tv-devices\n"

REQUEST = AccessRequest("watch", "livingroom/tv", subject="alice")
ENV = {"free-time"}


def decide(engine: MediationEngine) -> bool:
    return engine.decide(REQUEST, environment_roles=set(ENV)).granted


# ----------------------------------------------------------------------
# Lineage basics
# ----------------------------------------------------------------------
class TestLineage:
    def test_create_put_activate(self):
        store = PolicyStore()
        store.create_tenant("unit-a", actor="test")
        version = store.put("unit-a", GRANT_DSL, actor="test", note="v1")
        assert version.version == 1
        assert version.content_hash == content_hash(GRANT_DSL)
        assert store.active_version("unit-a") is None
        store.activate("unit-a")
        assert store.active_version("unit-a") == 1
        assert store.text("unit-a") == GRANT_DSL

    def test_put_appends_and_never_rewrites(self):
        store = PolicyStore()
        store.create_tenant("t", actor="test")
        store.put("t", GRANT_DSL)
        store.put("t", DENY_DSL)
        lineage = store.lineage("t")
        assert [v.version for v in lineage.versions] == [1, 2]
        # v1's content is still reachable after v2 landed.
        assert store.text("t", 1) == GRANT_DSL
        assert store.text("t", 2) == DENY_DSL

    def test_put_identical_head_is_noop(self):
        store = PolicyStore()
        store.create_tenant("t")
        first = store.put("t", GRANT_DSL)
        again = store.put("t", GRANT_DSL)
        assert again.version == first.version == 1
        assert len(store.lineage("t").versions) == 1
        assert store.dedup_hits == 1

    def test_blob_dedup_across_tenants(self):
        store = PolicyStore()
        store.create_tenant("a")
        store.create_tenant("b")
        store.put("a", GRANT_DSL)
        store.put("b", GRANT_DSL)
        assert store.stats()["blobs"] == 1
        assert store.dedup_hits == 1

    def test_invalid_tenant_names_rejected(self):
        store = PolicyStore()
        for bad in ("", "-leading", "a" * 65, "has space", ".dot"):
            with pytest.raises(PolicyStoreError):
                store.create_tenant(bad)

    def test_duplicate_tenant_rejected(self):
        store = PolicyStore()
        store.create_tenant("t")
        with pytest.raises(PolicyStoreError):
            store.create_tenant("t")

    def test_unknown_tenant_and_version_raise(self):
        store = PolicyStore()
        with pytest.raises(PolicyStoreError):
            store.lineage("ghost")
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        with pytest.raises(PolicyStoreError):
            store.text("t", 7)


# ----------------------------------------------------------------------
# Activation gate
# ----------------------------------------------------------------------
class TestActivationGate:
    def test_unparseable_candidate_blocks_and_pointer_stays(self):
        store = PolicyStore()
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        store.put("t", "not a policy ???")
        with pytest.raises(PolicyStoreError, match="parse error"):
            store.activate("t")
        assert store.active_version("t") == 1

    def test_strict_gate_blocks_conflicting_candidate(self):
        # allow + deny of the same triple lints as a "conflict"
        # warning: a fail_on="warning" store must refuse to serve it.
        store = PolicyStore(fail_on="warning")
        conflicted = GRANT_DSL + "deny child to watch on tv-devices when free-time\n"
        store.create_tenant("t")
        store.put("t", conflicted)
        with pytest.raises(PolicyStoreError, match="validation failed"):
            store.activate("t")
        assert store.active_version("t") is None

    def test_default_gate_lets_warnings_through(self):
        # fail_on="error" (the default) mirrors PolicyAdministrator:
        # warnings are recorded in the activate event, not blocking.
        conflicted = GRANT_DSL + "deny child to watch on tv-devices when free-time\n"
        store = PolicyStore()
        store.create_tenant("t")
        store.put("t", conflicted)
        store.activate("t")  # does not raise
        assert store.active_version("t") == 1

    def test_activate_is_idempotent(self):
        store = PolicyStore()
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        before = store.activations
        store.activate("t")
        assert store.activations == before
        assert len(store.lineage("t").activations) == 1

    def test_lint_memoized_per_content_hash(self):
        store = PolicyStore()
        for index in range(5):
            name = f"unit-{index}"
            store.create_tenant(name)
            store.put(name, GRANT_DSL)
            store.activate(name)
        # One shared text -> one lint, however many tenants activated.
        assert len(store._lint_memo) == 1


# ----------------------------------------------------------------------
# Rollback
# ----------------------------------------------------------------------
class TestRollback:
    def test_rollback_restores_previous_distinct_version(self):
        store = PolicyStore()
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        store.put("t", DENY_DSL)
        store.activate("t")
        assert store.active_version("t") == 2
        restored = store.rollback("t")
        assert restored.version == 1
        assert store.active_version("t") == 1

    def test_rollback_alternates_like_git_revert(self):
        store = PolicyStore()
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        store.put("t", DENY_DSL)
        store.activate("t")
        assert store.rollback("t").version == 1
        assert store.rollback("t").version == 2
        assert store.rollback("t").version == 1

    def test_rollback_without_history_raises(self):
        store = PolicyStore()
        store.create_tenant("t")
        with pytest.raises(PolicyStoreError):
            store.rollback("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        with pytest.raises(PolicyStoreError, match="no earlier distinct"):
            store.rollback("t")

    def test_rollback_skips_lint_gate(self):
        # v1 activates under a permissive gate; after the gate
        # tightens, rollback to it must still work — the escape hatch
        # never re-lints (the target already served once).
        store = PolicyStore(fail_on=None)
        conflicted = GRANT_DSL + "deny child to watch on tv-devices when free-time\n"
        store.create_tenant("t")
        store.put("t", conflicted)
        store.activate("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        store.fail_on = "warning"  # would now block activate(v1)
        restored = store.rollback("t")
        assert restored.version == 1
        assert store.active_version("t") == 1


# ----------------------------------------------------------------------
# Durability: replay, torn tail, corruption
# ----------------------------------------------------------------------
class TestDurability:
    def test_replay_reconstructs_state(self, tmp_path):
        path = str(tmp_path / "store")
        with PolicyStore(path) as store:
            store.create_tenant("a", actor="me")
            store.put("a", GRANT_DSL, note="first")
            store.activate("a")
            store.put("a", DENY_DSL)
            store.activate("a")
            store.rollback("a")
        with PolicyStore(path) as reopened:
            assert reopened.tenants() == ["a"]
            lineage = reopened.lineage("a")
            assert [v.version for v in lineage.versions] == [1, 2]
            assert lineage.versions[0].note == "first"
            assert reopened.active_version("a") == 1
            assert reopened.text("a") == GRANT_DSL
            # Appending after replay continues the sequence cleanly.
            reopened.put("a", THIRD_DSL)
            assert reopened.lineage("a").head.version == 3

    def test_torn_tail_is_dropped_and_counted(self, tmp_path):
        path = str(tmp_path / "store")
        with PolicyStore(path) as store:
            store.create_tenant("a")
            store.put("a", GRANT_DSL)
            store.activate("a")
        log_path = os.path.join(path, "store.jsonl")
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99, "event": "activ')  # crash mid-append
        with PolicyStore(path) as reopened:
            assert reopened.torn_tail_recovered == 1
            assert reopened.active_version("a") == 1

    def test_interior_corruption_refuses_to_open(self, tmp_path):
        path = str(tmp_path / "store")
        with PolicyStore(path) as store:
            store.create_tenant("a")
            store.put("a", GRANT_DSL)
        log_path = os.path.join(path, "store.jsonl")
        with open(log_path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[0] = "garbage not json\n"
        with open(log_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(PolicyStoreError, match="store.jsonl:1"):
            PolicyStore(path)

    def test_log_events_are_json_with_monotonic_seq(self, tmp_path):
        path = str(tmp_path / "store")
        with PolicyStore(path) as store:
            store.create_tenant("a")
            store.put("a", GRANT_DSL)
            store.activate("a")
        with open(os.path.join(path, "store.jsonl"), encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        assert [e["event"] for e in events] == [
            "create",
            "blob",
            "put",
            "activate",
        ]


# ----------------------------------------------------------------------
# Serving: lazy compile, content-addressed LRU
# ----------------------------------------------------------------------
class TestServing:
    def test_engine_serves_active_version(self):
        store = PolicyStore()
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        engine, version = store.engine("t")
        assert version == 1
        assert decide(engine) is True
        store.put("t", DENY_DSL)
        store.activate("t")
        engine2, version2 = store.engine("t")
        assert version2 == 2
        assert decide(engine2) is False

    def test_engine_without_activation_raises(self):
        store = PolicyStore()
        store.create_tenant("t")
        with pytest.raises(PolicyStoreError):
            store.engine("t")
        store.put("t", GRANT_DSL)
        with pytest.raises(PolicyStoreError):
            store.engine("t")

    def test_tenants_sharing_text_share_compiled_engine(self):
        store = PolicyStore()
        for name in ("a", "b", "c"):
            store.create_tenant(name)
            store.put(name, GRANT_DSL)
            store.activate(name)
        engines = {id(store.engine(name)[0]) for name in ("a", "b", "c")}
        assert len(engines) == 1
        assert store.compiled.misses == 1
        assert store.compiled.hits == 2

    def test_compiled_lru_bounded_with_evictions(self):
        store = PolicyStore(compiled_cache_size=2)
        texts = [
            GRANT_DSL,
            DENY_DSL,
            THIRD_DSL,
        ]
        for index, text in enumerate(texts):
            name = f"t{index}"
            store.create_tenant(name)
            store.put(name, text)
            store.activate(name)
            store.engine(name)
        assert len(store.compiled) == 2
        assert store.compiled.evictions == 1
        # The evicted entry rebuilds on demand (correctly, not stale).
        engine, _ = store.engine("t0")
        assert decide(engine) is True

    def test_snapshot_cache_rejects_zero_capacity(self):
        with pytest.raises(PolicyStoreError):
            CompiledSnapshotCache(0)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_stats_shape(self, tmp_path):
        store = PolicyStore(str(tmp_path / "store"))
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        store.engine("t")
        stats = store.stats()
        assert stats["tenants"] == 1
        assert stats["versions"] == 1
        assert stats["blobs"] == 1
        assert stats["activations"] == 1
        assert stats["compiled"]["entries"] == 1

    def test_bind_metrics_exports_gauges(self):
        store = PolicyStore()
        registry = MetricsRegistry()
        store.bind_metrics(registry)
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        snapshot = registry.snapshot()
        gauges = snapshot["gauges"]
        assert gauges["store.tenants"] == 1
        assert gauges["store.versions"] == 1
        assert gauges["store.activations"] == 1

    def test_overview_and_log(self):
        store = PolicyStore()
        store.create_tenant("t")
        store.put("t", GRANT_DSL)
        store.activate("t")
        rows = store.overview()
        assert rows == [
            {
                "tenant": "t",
                "versions": 1,
                "active_version": 1,
                "activations": 1,
            }
        ]
        lineage = store.log("t")
        assert lineage["tenant"] == "t"
        assert lineage["versions"][0]["active"] is True

    def test_default_tenant_constant(self):
        assert DEFAULT_TENANT == "default"
