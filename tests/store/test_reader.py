"""Reader-mode stores: safe concurrent read-only opens on one log.

A cluster's workers each open the supervisor-owned store directory
with ``reader=True`` — no append handle, no lock, replay-then-follow.
These tests pin the contract: readers see every *complete* line,
catch up when the log grows, leave a torn tail for the next refresh,
and refuse every mutating call.
"""

from __future__ import annotations

import os

import pytest

from repro.exceptions import PolicyStoreError
from repro.store import DEFAULT_TENANT, PolicyStore

GRANT_DSL = """
subject role child
object role tv-devices
environment role free-time
subject alice is child
object livingroom/tv is tv-devices
allow child to watch on tv-devices when free-time
"""

DENY_DSL = GRANT_DSL.replace("allow child", "deny child")


def make_writer(path) -> PolicyStore:
    writer = PolicyStore(str(path))
    writer.create_tenant(DEFAULT_TENANT)
    version = writer.put(DEFAULT_TENANT, GRANT_DSL, actor="writer")
    writer.activate(DEFAULT_TENANT, version.version, actor="writer")
    return writer


def test_reader_requires_a_path() -> None:
    with pytest.raises(PolicyStoreError, match="reader mode requires"):
        PolicyStore(reader=True)


def test_reader_replays_existing_log(tmp_path) -> None:
    with make_writer(tmp_path):
        pass
    with PolicyStore(str(tmp_path), reader=True) as reader:
        assert reader.reader is True
        assert reader.tenants() == [DEFAULT_TENANT]
        assert reader.active_version(DEFAULT_TENANT) == 1
        engine, version = reader.engine(DEFAULT_TENANT)
        assert version == 1


def test_reader_follows_writer_appends(tmp_path) -> None:
    with make_writer(tmp_path) as writer, PolicyStore(
        str(tmp_path), reader=True, refresh_interval_s=0.0
    ) as reader:
        assert reader.active_version(DEFAULT_TENANT) == 1
        version = writer.put(DEFAULT_TENANT, DENY_DSL, actor="writer")
        writer.activate(DEFAULT_TENANT, version.version, actor="writer")
        writer.create_tenant("acme", actor="writer")
        # Same process here, but the coupling is only the shared file.
        applied = reader.refresh()
        assert applied == 4  # blob + put + activate + create
        assert reader.active_version(DEFAULT_TENANT) == 2
        assert set(reader.tenants()) == {DEFAULT_TENANT, "acme"}


def test_reader_refresh_is_implicit_on_read_paths(tmp_path) -> None:
    with make_writer(tmp_path) as writer, PolicyStore(
        str(tmp_path), reader=True, refresh_interval_s=0.0
    ) as reader:
        version = writer.put(DEFAULT_TENANT, DENY_DSL, actor="writer")
        writer.activate(DEFAULT_TENANT, version.version, actor="writer")
        # No explicit refresh(): active_version probes the log itself.
        assert reader.active_version(DEFAULT_TENANT) == 2


def test_reader_leaves_torn_tail_for_next_refresh(tmp_path) -> None:
    with make_writer(tmp_path):
        pass
    log_path = os.path.join(str(tmp_path), "store.jsonl")
    with open(log_path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    # Simulate an append caught mid-write: a complete line followed by
    # half of the next one, no trailing newline.
    torn = lines[-1].rstrip("\n")
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(torn[: len(torn) // 2])

    with PolicyStore(
        str(tmp_path), reader=True, refresh_interval_s=0.0
    ) as reader:
        assert reader.torn_tail_recovered == 1
        assert reader.active_version(DEFAULT_TENANT) == 1
        # The "writer" finishes the line: the reader picks it up whole.
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write(torn[len(torn) // 2:] + "\n")
        assert reader.refresh() == 1


def test_reader_refuses_every_mutation(tmp_path) -> None:
    with make_writer(tmp_path):
        pass
    with PolicyStore(str(tmp_path), reader=True) as reader:
        with pytest.raises(PolicyStoreError, match="not allowed"):
            reader.put(DEFAULT_TENANT, DENY_DSL)
        with pytest.raises(PolicyStoreError, match="not allowed"):
            reader.activate(DEFAULT_TENANT, 1)
        with pytest.raises(PolicyStoreError, match="not allowed"):
            reader.rollback(DEFAULT_TENANT)
        # Nothing leaked into the log.
        assert reader.active_version(DEFAULT_TENANT) == 1


def test_writer_refresh_is_a_no_op(tmp_path) -> None:
    with make_writer(tmp_path) as writer:
        assert writer.refresh() == 0  # appends already applied in-memory


def test_many_concurrent_readers_share_one_log(tmp_path) -> None:
    with make_writer(tmp_path) as writer:
        readers = [
            PolicyStore(str(tmp_path), reader=True, refresh_interval_s=0.0)
            for _ in range(4)
        ]
        try:
            version = writer.put(DEFAULT_TENANT, DENY_DSL, actor="writer")
            writer.activate(DEFAULT_TENANT, version.version, actor="writer")
            assert all(
                r.active_version(DEFAULT_TENANT) == 2 for r in readers
            )
        finally:
            for reader in readers:
                reader.close()
