"""Properties of the policy store's serving contract.

Two invariants hold for any lineage the store can reach:

* **Serving equivalence** — a decision served through the store
  (lazy compile, content-addressed LRU, shared snapshots) equals what
  a fresh, cache-less single-policy engine says for the same policy
  text at the same version.  The store must be an invisible layer:
  versioning and caching can never change an answer.
* **Rollback exactness** — after activate(v1), activate(v2),
  rollback, the tenant's decisions are byte-for-byte the ones v1
  produced, for every probe in the request stream.

Policies are random but structurally valid (the workload generator),
shipped through the DSL printer so the store holds real policy text.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MediationEngine
from repro.policy.dsl.printer import print_policy
from repro.store import PolicyStore
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)


def policy_text(seed: int) -> str:
    config = RandomPolicyConfig(
        subjects=6,
        objects=6,
        transactions=4,
        subject_roles=4,
        object_roles=3,
        environment_roles=3,
        hierarchy_edges=2,
        permissions=12,
        deny_fraction=0.25,
        seed=seed,
    )
    return print_policy(generate_policy(config))


def probe(engine: MediationEngine, policy, request_seed: int):
    """Grant/deny answers for a seeded request stream."""
    stream = generate_requests(policy, 25, seed=request_seed)
    return [
        engine.decide(
            item.request,
            environment_roles=set(item.active_environment_roles),
        ).granted
        for item in stream
    ]


@settings(max_examples=15, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=40), min_size=1, max_size=4
    ),
    request_seed=st.integers(min_value=0, max_value=1000),
    cache_capacity=st.integers(min_value=1, max_value=3),
)
def test_store_served_equals_fresh_engine(
    seeds, request_seed, cache_capacity
) -> None:
    """Every version served via the store answers like a fresh engine."""
    store = PolicyStore(compiled_cache_size=cache_capacity)
    store.create_tenant("t")
    for seed in seeds:
        store.put("t", policy_text(seed))
        store.activate("t")
        engine, version = store.engine("t")
        fresh_policy = store.policy("t", version)
        fresh = MediationEngine(fresh_policy)
        assert probe(engine, fresh_policy, request_seed) == probe(
            fresh, fresh_policy, request_seed
        )


@settings(max_examples=15, deadline=None)
@given(
    seed_a=st.integers(min_value=0, max_value=40),
    seed_b=st.integers(min_value=41, max_value=80),
    request_seed=st.integers(min_value=0, max_value=1000),
)
def test_rollback_restores_prior_decisions_exactly(
    seed_a, seed_b, request_seed
) -> None:
    """activate(v1) -> activate(v2) -> rollback reproduces v1's answers."""
    store = PolicyStore(compiled_cache_size=2)
    store.create_tenant("t")
    store.put("t", policy_text(seed_a))
    store.activate("t")
    engine_v1, _ = store.engine("t")
    policy_v1 = store.policy("t", 1)
    before = probe(engine_v1, policy_v1, request_seed)

    store.put("t", policy_text(seed_b))
    store.activate("t")
    store.engine("t")  # serve v2 so the LRU actually cycles

    store.rollback("t")
    engine_back, version = store.engine("t")
    assert version == 1
    after = probe(engine_back, policy_v1, request_seed)
    assert after == before


@settings(max_examples=10, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=30), min_size=2, max_size=5
    ),
    request_seed=st.integers(min_value=0, max_value=500),
)
def test_tenants_sharing_texts_stay_isolated(seeds, request_seed) -> None:
    """N tenants on arbitrary texts: each answers from its own active
    version even when the compiled LRU makes them share snapshots."""
    store = PolicyStore(compiled_cache_size=2)
    expected = {}
    for index, seed in enumerate(seeds):
        name = f"unit-{index}"
        text = policy_text(seed)
        store.create_tenant(name)
        store.put(name, text)
        store.activate(name)
        policy = store.policy(name)
        expected[name] = probe(MediationEngine(policy), policy, request_seed)
    # Interleave serving so entries evict and rebuild under pressure.
    for _ in range(2):
        for index, seed in enumerate(seeds):
            name = f"unit-{index}"
            engine, _ = store.engine(name)
            policy = store.policy(name)
            assert probe(engine, policy, request_seed) == expected[name]
