"""Tests for the flight recorder ring."""

from __future__ import annotations

import json

import pytest

from repro.obs import FlightRecorder


def record_n(recorder: FlightRecorder, n: int, **overrides) -> None:
    for i in range(n):
        fields = {
            "subject": "alice",
            "transaction": "watch",
            "obj": "livingroom/tv",
            "outcome": "grant",
            "granted": True,
            "request_id": i + 1,
        }
        fields.update(overrides)
        recorder.record(**fields)


class TestRecording:
    def test_entries_are_plain_json_safe_dicts(self):
        recorder = FlightRecorder(capacity=4)
        entry = recorder.record(
            subject="bobby",
            transaction="watch",
            obj="livingroom/tv",
            outcome="deny",
            granted=False,
            request_id=7,
            matched_rule="DENY child watch dangerous",
            rationale="negative right wins",
            environment_roles=["weekday", "free-time"],
            latency_us=95.04,
        )
        json.dumps(entry)
        assert entry["seq"] == 1
        assert entry["environment_roles"] == ["free-time", "weekday"]
        assert entry["latency_us"] == 95.0

    def test_ring_retains_only_newest(self):
        recorder = FlightRecorder(capacity=3)
        record_n(recorder, 10)
        assert len(recorder) == 3
        assert recorder.recorded == 10
        assert [e["seq"] for e in recorder.dump()] == [8, 9, 10]
        assert recorder.last_seq == 10

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_since_seq_cursor_sees_each_entry_once(self):
        recorder = FlightRecorder(capacity=100)
        record_n(recorder, 5)
        first = recorder.dump()
        cursor = first[-1]["seq"]
        assert recorder.dump(since_seq=cursor) == []
        record_n(recorder, 3)
        fresh = recorder.dump(since_seq=cursor)
        assert [e["seq"] for e in fresh] == [6, 7, 8]

    def test_cursor_survives_ring_wraparound(self):
        recorder = FlightRecorder(capacity=4)
        record_n(recorder, 4)
        cursor = recorder.last_seq
        record_n(recorder, 6)  # overwrites everything the cursor saw
        fresh = recorder.dump(since_seq=cursor)
        # Only retained entries newer than the cursor; seq stays
        # monotonic so nothing is double-delivered.
        assert [e["seq"] for e in fresh] == [7, 8, 9, 10]

    def test_limit_keeps_newest_matches(self):
        recorder = FlightRecorder(capacity=100)
        record_n(recorder, 10)
        limited = recorder.dump(limit=3)
        assert [e["seq"] for e in limited] == [8, 9, 10]
        assert recorder.dump(limit=0) == []

    def test_subject_and_outcome_filters_are_conjunctive(self):
        recorder = FlightRecorder(capacity=100)
        record_n(recorder, 3, subject="alice", outcome="grant")
        record_n(recorder, 2, subject="bobby", outcome="deny", granted=False)
        record_n(recorder, 1, subject="bobby", outcome="grant")
        assert len(recorder.dump(subject="bobby")) == 3
        assert len(recorder.dump(outcome="deny")) == 2
        assert len(recorder.dump(subject="bobby", outcome="deny")) == 2
        assert recorder.dump(subject="alice", outcome="deny") == []

    def test_dump_returns_copies(self):
        recorder = FlightRecorder(capacity=4)
        record_n(recorder, 1)
        recorder.dump()[0]["outcome"] = "tampered"
        assert recorder.dump()[0]["outcome"] == "grant"


class TestStats:
    def test_stats_shape(self):
        recorder = FlightRecorder(capacity=2)
        record_n(recorder, 5)
        assert recorder.stats() == {
            "capacity": 2,
            "retained": 2,
            "recorded": 5,
            "last_seq": 5,
        }
