"""Tests for rolling SLO tracking (fake clock — nothing sleeps)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, RollingRatio, SloObjective, SloTracker


class FakeClock:
    def __init__(self) -> None:
        self.t = 1000.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestRollingRatio:
    def test_empty_window_reports_default(self):
        ratio = RollingRatio(clock=FakeClock())
        assert ratio.ratio() == 1.0
        assert ratio.ratio(default=0.0) == 0.0

    def test_ratio_over_live_window(self):
        clock = FakeClock()
        ratio = RollingRatio(window_s=300, buckets=30, clock=clock)
        for good in (True, True, True, False):
            ratio.record(good)
        assert ratio.ratio() == pytest.approx(0.75)
        assert ratio.window_counts() == {"good": 3, "total": 4}

    def test_old_buckets_age_out(self):
        clock = FakeClock()
        ratio = RollingRatio(window_s=300, buckets=30, clock=clock)
        ratio.record(False)  # a bad event now...
        clock.advance(301)  # ...outlives the window
        ratio.record(True)
        assert ratio.ratio() == 1.0
        assert ratio.lifetime_total == 2  # lifetime tallies never age

    def test_stale_slot_reset_on_wraparound(self):
        clock = FakeClock()
        ratio = RollingRatio(window_s=30, buckets=3, clock=clock)
        ratio.record(False)
        # Land in the SAME slot one full ring later: the stale count
        # must be discarded, not added to.
        clock.advance(30)
        ratio.record(True)
        assert ratio.window_counts() == {"good": 1, "total": 1}

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            RollingRatio(window_s=0)
        with pytest.raises(ValueError):
            RollingRatio(buckets=0)


class TestSloObjective:
    def test_burn_rate_one_means_budget_spent_at_accrual(self):
        clock = FakeClock()
        objective = SloObjective("availability", 0.99, clock=clock)
        for _ in range(99):
            objective.record(True)
        objective.record(False)  # 1% errors against a 1% budget
        assert objective.burn_rate == pytest.approx(1.0)
        assert objective.met

    def test_burn_rate_scales_with_error_fraction(self):
        clock = FakeClock()
        objective = SloObjective("availability", 0.99, clock=clock)
        for _ in range(90):
            objective.record(True)
        for _ in range(10):
            objective.record(False)  # 10% errors = 10x budget spend
        assert objective.burn_rate == pytest.approx(10.0)
        assert not objective.met

    def test_snapshot_shape(self):
        objective = SloObjective("latency", 0.9, clock=FakeClock())
        objective.record(True)
        snapshot = objective.snapshot()
        assert snapshot["target"] == 0.9
        assert snapshot["ratio"] == 1.0
        assert snapshot["met"] is True
        assert snapshot["window_total"] == 1
        assert snapshot["lifetime_total"] == 1

    def test_rejects_degenerate_targets(self):
        with pytest.raises(ValueError):
            SloObjective("x", 0.0)
        with pytest.raises(ValueError):
            SloObjective("x", 1.0)


class TestSloTracker:
    def make_tracker(self, **kwargs) -> "tuple[SloTracker, FakeClock]":
        clock = FakeClock()
        tracker = SloTracker(
            availability_target=0.999,
            latency_threshold_s=0.050,
            latency_target=0.99,
            clock=clock,
            **kwargs,
        )
        return tracker, clock

    def test_mediated_fast_responses_keep_both_objectives(self):
        tracker, _ = self.make_tracker()
        for _ in range(100):
            tracker.record_response(mediated=True, latency_s=0.001)
        assert tracker.healthy
        snapshot = tracker.snapshot()
        assert snapshot["availability"]["ratio"] == 1.0
        assert snapshot["latency"]["ratio"] == 1.0
        assert snapshot["healthy"] is True

    def test_sheds_spend_availability_budget(self):
        tracker, _ = self.make_tracker()
        for _ in range(9):
            tracker.record_response(mediated=True, latency_s=0.001)
        tracker.record_response(mediated=False, latency_s=0.0)  # a shed
        assert not tracker.availability.met
        assert tracker.latency.met  # the shed was fast; separate axes
        assert not tracker.healthy

    def test_slow_responses_spend_latency_budget(self):
        tracker, _ = self.make_tracker()
        for _ in range(9):
            tracker.record_response(mediated=True, latency_s=0.001)
        tracker.record_response(mediated=True, latency_s=0.200)
        assert tracker.availability.met
        assert not tracker.latency.met

    def test_threshold_boundary_is_inclusive(self):
        tracker, _ = self.make_tracker()
        tracker.record_response(mediated=True, latency_s=0.050)
        assert tracker.latency.ratio == 1.0

    def test_bound_metrics_expose_live_gauges(self):
        registry = MetricsRegistry()
        tracker, _ = self.make_tracker(metrics=registry)
        gauges = registry.gauges()
        assert gauges["slo.availability.target"] == 0.999
        assert gauges["slo.latency.threshold_seconds"] == 0.050
        assert gauges["slo.availability.ratio"] == 1.0
        tracker.record_response(mediated=False, latency_s=0.0)
        assert registry.gauges()["slo.availability.ratio"] == 0.0
        assert registry.gauges()["slo.availability.burn_rate"] == (
            pytest.approx(1.0 / 0.001)
        )

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            SloTracker(latency_threshold_s=0.0)
