"""Unit tests for the observability substrate (metrics, traces, hubs)."""

import pytest

from repro.core import AccessRequest, AuditLog, MediationEngine
from repro.obs import (
    CollectingObserver,
    DecisionTrace,
    MetricsRegistry,
    Observer,
    ObserverHub,
)
from repro.obs.metrics import Counter, Histogram


class TestCounter:
    def test_inc_and_set(self):
        counter = Counter("decisions")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(2)
        assert counter.value == 2


class TestHistogram:
    def test_tracks_count_sum_min_max(self):
        histogram = Histogram("latency")
        for value in (1e-6, 2e-6, 8e-6):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == pytest.approx(1e-6)
        assert histogram.max == pytest.approx(8e-6)
        assert histogram.mean == pytest.approx(11e-6 / 3)

    def test_quantiles_are_bucket_bounded(self):
        histogram = Histogram("latency")
        for _ in range(100):
            histogram.observe(5e-6)
        # 5us falls in the (4us, 8us] bucket; the bucket's upper bound
        # is clamped to the observed max, so a uniform stream reports
        # the true value instead of over-reporting by up to one bucket.
        assert histogram.quantile(0.5) == pytest.approx(5e-6)
        assert histogram.quantile(0.99) == pytest.approx(5e-6)
        # A spread within one bucket still reports that bucket's bound
        # (clamped to the max actually seen).
        histogram.observe(7e-6)
        assert histogram.quantile(0.99) == pytest.approx(7e-6)

    def test_empty_histogram_is_zeroed(self):
        histogram = Histogram("latency")
        assert histogram.quantile(0.5) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["mean_us"] == 0.0

    def test_quantile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram("latency").quantile(0.0)


class TestMetricsRegistry:
    def test_create_on_demand_and_reuse(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.inc("decisions", 3)
        registry.observe("latency", 2e-6)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"decisions": 3}
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_render_mentions_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.inc("decisions")
        registry.observe("latency", 2e-6)
        text = registry.render()
        assert "counters:" in text
        assert "decisions" in text
        assert "latency histograms (us):" in text

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics recorded)"


class TestDecisionTrace:
    def test_render_without_spans_matches_explain_contract(self):
        trace = DecisionTrace(subject="alice", transaction="watch", obj="livingroom/tv")
        trace.granted = True
        trace.rationale = "why not"
        trace.subject_roles = {"child": 1.0}
        trace.object_roles = ["entertainment"]
        trace.environment_roles = ["free-time"]
        trace.matched_rules = ["rule one"]
        text = trace.render()
        assert "GRANT" in text
        assert "alice" in text
        assert "child@1.00" in text
        assert "matched rules:" in text
        assert "pipeline" not in text  # no spans -> no pipeline section

    def test_spans_and_total(self):
        trace = DecisionTrace(subject=None, transaction="watch", obj="livingroom/tv")
        trace.add_span("a", 1e-6, {"k": 1})
        trace.add_span("b", 2e-6)
        assert trace.total_s == pytest.approx(3e-6)
        assert trace.span("a").annotations == {"k": 1}
        assert trace.span("missing") is None
        assert trace.stage_timings_us() == {"a": 1.0, "b": 2.0}
        assert "<unidentified>" in trace.render()


class TestObserverHub:
    def test_emit_reaches_all_observers(self):
        hub = ObserverHub()
        first = hub.subscribe(CollectingObserver())
        second = hub.subscribe(CollectingObserver())
        hub.emit("session.open", subject="mom")
        assert first.event_names() == ["session.open"]
        assert second.events[0][1] == {"subject": "mom"}

    def test_raising_observer_is_dropped_not_propagated(self):
        class Broken(Observer):
            def on_event(self, name, payload):
                raise RuntimeError("dashboard down")

        hub = ObserverHub()
        hub.subscribe(Broken())
        survivor = hub.subscribe(CollectingObserver())
        hub.emit("tick")  # must not raise
        assert len(hub) == 1
        assert hub.dropped and "dashboard down" in hub.dropped[0][1]
        assert survivor.event_names() == ["tick"]

    def test_empty_hub_is_falsy(self):
        hub = ObserverHub()
        assert not hub
        hub.subscribe(CollectingObserver())
        assert hub


class TestProducers:
    def test_session_manager_publishes_lifecycle_events(self, tv_policy):
        hub = ObserverHub()
        observer = hub.subscribe(CollectingObserver())
        tv_policy.sessions.observers = hub
        session = tv_policy.sessions.open("mom")
        session.activate("parent")
        session.deactivate("parent")
        tv_policy.sessions.close(session)
        assert observer.event_names() == [
            "session.open",
            "session.activate",
            "session.deactivate",
            "session.close",
        ]
        assert observer.events[1][1]["role"] == "parent"

    def test_audit_log_publishes_records(self, tv_engine):
        hub = ObserverHub()
        observer = hub.subscribe(CollectingObserver())
        log = AuditLog(observers=hub)
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        decision = tv_engine.decide(request, environment_roles={"free-time"})
        log.record(decision)
        assert observer.event_names() == ["audit.record"]
        payload = observer.events[0][1]
        assert payload["granted"] is True
        assert payload["subject"] == "alice"

    def test_audit_export_carries_stage_timings_for_traced_decisions(
        self, tv_engine
    ):
        import json

        log = AuditLog()
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        traced = tv_engine.decide(
            request, environment_roles={"free-time"}, trace=True
        )
        plain = tv_engine.decide(request, environment_roles={"free-time"})
        log.record(traced)
        log.record(plain)
        lines = [json.loads(line) for line in log.export_jsonl().splitlines()]
        assert "stage_timings_us" in lines[0]
        assert "resolve-subject-roles" in lines[0]["stage_timings_us"]
        assert "stage_timings_us" not in lines[1]

    def test_environment_runtime_publishes_role_definitions(self, tv_policy):
        from repro.env import EnvironmentRuntime
        from repro.env.conditions import always_true

        hub = ObserverHub()
        observer = hub.subscribe(CollectingObserver())
        runtime = EnvironmentRuntime(observers=hub)
        runtime.define_role(tv_policy, "at-home", always_true())
        assert observer.event_names() == ["env.define_role"]
        assert observer.events[0][1]["role"] == "at-home"

    def test_shared_registry_across_engines(self, tv_policy):
        registry = MetricsRegistry()
        first = MediationEngine(tv_policy, metrics=registry)
        second = MediationEngine(tv_policy, mode="naive", metrics=registry)
        assert first.metrics is registry
        assert second.metrics is registry
