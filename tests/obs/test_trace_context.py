"""Trace-context identity, propagation, and the bounded span store.

The context triple (``trace_id``, ``span_id``, ``sampled``) is the
whole cross-process contract: everything else — parentage, waterfall
joins, audit correlation — is derived from how hops mint and forward
it.  These tests pin that contract plus the :class:`SpanCollector`
retention semantics the trace endpoints serve from.
"""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    Span,
    SpanCollector,
    TraceContext,
    new_span_id,
    new_trace_id,
)


class TestIds:
    def test_ids_are_16_lowercase_hex(self) -> None:
        for make in (new_trace_id, new_span_id):
            value = make()
            assert len(value) == 16
            assert value == value.lower()
            int(value, 16)  # parses as hex

    def test_ids_are_unique_enough(self) -> None:
        assert len({new_trace_id() for _ in range(256)}) == 256


class TestTraceContext:
    def test_origin_mints_fresh_sampled_context(self) -> None:
        ctx = TraceContext.origin()
        assert ctx.sampled
        assert ctx.trace_id != ctx.span_id

    def test_child_keeps_trace_id_mints_span_id(self) -> None:
        parent = TraceContext.origin()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        assert child.sampled == parent.sampled

    def test_wire_round_trip(self) -> None:
        ctx = TraceContext.origin()
        assert TraceContext.parse(ctx.to_wire()) == ctx
        off = TraceContext(ctx.trace_id, ctx.span_id, False)
        assert off.to_wire().endswith("-00")
        assert TraceContext.parse(off.to_wire()) == off

    @pytest.mark.parametrize(
        "wire",
        [
            "",
            "nope",
            "abc-def-01",  # ids too short
            ("a" * 16) + "-" + ("b" * 16),  # missing sampled flag
            ("a" * 16) + "-" + ("b" * 16) + "-02",  # bad flag
            ("g" * 16) + "-" + ("b" * 16) + "-01",  # non-hex
            ("A" * 16) + "-" + ("b" * 16) + "-01",  # uppercase refused
        ],
    )
    def test_malformed_wire_forms_rejected(self, wire: str) -> None:
        with pytest.raises(ValueError):
            TraceContext.parse(wire)


class TestSpanCollector:
    def span(self, trace_id: str, name: str = "x") -> dict:
        return Span(
            trace_id=trace_id,
            span_id=new_span_id(),
            name=name,
            service="test",
        ).to_dict()

    def test_groups_by_trace_and_returns_copies(self) -> None:
        collector = SpanCollector(4)
        collector.add(self.span("t1", "a"))
        collector.add(self.span("t1", "b"))
        collector.add(self.span("t2", "c"))
        spans = collector.get("t1")
        assert [s["name"] for s in spans] == ["a", "b"]
        spans[0]["name"] = "mutated"
        assert collector.get("t1")[0]["name"] == "a"
        assert collector.get("missing") == []

    def test_evicts_whole_traces_oldest_first(self) -> None:
        collector = SpanCollector(2)
        for trace_id in ("t1", "t2", "t3"):
            collector.add(self.span(trace_id))
            collector.add(self.span(trace_id))
        assert collector.get("t1") == []
        assert len(collector.get("t3")) == 2
        stats = collector.stats()
        assert stats["traces"] == 2
        assert stats["evicted_traces"] == 1

    def test_trace_ids_newest_first_with_limit(self) -> None:
        collector = SpanCollector(8)
        for trace_id in ("t1", "t2", "t3"):
            collector.add(self.span(trace_id))
        assert collector.trace_ids() == ["t3", "t2", "t1"]
        assert collector.trace_ids(limit=2) == ["t3", "t2"]

    def test_ignores_spans_without_trace_id(self) -> None:
        collector = SpanCollector(2)
        collector.add({"name": "no-trace"})
        collector.add({"trace_id": "", "name": "empty"})
        assert collector.stats()["spans"] == 0

    def test_rejects_non_positive_capacity(self) -> None:
        with pytest.raises(ValueError):
            SpanCollector(0)


class TestSpan:
    def test_to_dict_renders_duration_in_us(self) -> None:
        span = Span(
            trace_id="t",
            span_id="s",
            name="pdp.decide",
            service="pdp",
            parent_span_id="p",
            start_s=123.5,
            duration_s=0.0012345,
            annotations={"granted": True},
        )
        payload = span.to_dict()
        assert payload["duration_us"] == 1234.5
        assert payload["parent_span_id"] == "p"
        assert payload["start_s"] == 123.5
        assert payload["annotations"] == {"granted": True}

    def test_untimed_span_has_null_duration(self) -> None:
        assert (
            Span(trace_id="t", span_id="s", name="n", service="x")
            .to_dict()["duration_us"]
            is None
        )
