"""Prometheus text-format edge cases: escaping, non-finite values,
and the cluster-merge round trip.

The exposition format escapes exactly three characters inside quoted
label values (backslash, double-quote, newline) and spells non-finite
samples ``NaN`` / ``+Inf`` / ``-Inf``.  These tests pin the
escape/unescape pair, the value formatter, and — the case that bit the
cluster merger — that :func:`merge_prometheus` output with hostile
``shard`` labels survives a :func:`parse_prometheus` round trip.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.liveops import merge_prometheus
from repro.obs.export import (
    _format_value,
    escape_label_value,
    parse_prometheus,
    render_label_set,
    unescape_label_value,
)


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "raw,escaped",
        [
            ("plain", "plain"),
            ('has "quotes"', 'has \\"quotes\\"'),
            ("back\\slash", "back\\\\slash"),
            ("two\nlines", "two\\nlines"),
            ('\\"\n', '\\\\\\"\\n'),
        ],
    )
    def test_escape_and_invert(self, raw: str, escaped: str) -> None:
        assert escape_label_value(raw) == escaped
        assert unescape_label_value(escaped) == raw

    def test_unknown_escape_kept_verbatim(self) -> None:
        assert unescape_label_value("a\\tb") == "a\\tb"

    def test_trailing_lone_backslash_kept(self) -> None:
        assert unescape_label_value("a\\") == "a\\"

    def test_render_label_set_sorts_and_escapes(self) -> None:
        rendered = render_label_set({"b": 'x"y', "a": "p\\q"})
        assert rendered == '{a="p\\\\q",b="x\\"y"}'
        assert render_label_set({}) == ""

    def test_parser_unescapes_quoted_values(self) -> None:
        text = 'm{tenant="a\\\\b\\"c\\nd"} 1\n'
        samples = parse_prometheus(text)
        ((labels, value),) = samples["m"]
        assert labels == {"tenant": 'a\\b"c\nd'}
        assert value == 1.0


class TestNonFiniteValues:
    def test_format_value_spellings(self) -> None:
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(2.5) == "2.5"

    def test_parser_accepts_non_finite_spellings(self) -> None:
        text = "a 1\nb NaN\nc +Inf\nd -Inf\n"
        samples = parse_prometheus(text)
        assert math.isnan(samples["b"][0][1])
        assert samples["c"][0][1] == float("inf")
        assert samples["d"][0][1] == float("-inf")


class TestMergeRoundTrip:
    def worker_text(self) -> str:
        return (
            "# TYPE grbac_pdp_decisions counter\n"
            "grbac_pdp_decisions 41\n"
            'grbac_tenant_decisions{tenant="acme \\"prod\\""} 7\n'
            "grbac_latency_us_sum 12.5\n"
            "grbac_latency_us_count 3\n"
        )

    def test_merged_output_parses_back_with_shard_labels(self) -> None:
        # Shard names with every escape-worthy character: the merger
        # must re-escape what the parser unescaped, or this round trip
        # dies with an unclosed-label-set parse error.
        shards = {
            'w"quote': self.worker_text(),
            "w\\back": self.worker_text(),
            "w\nnl": self.worker_text(),
        }
        merged = merge_prometheus(shards)
        samples = parse_prometheus(merged)
        decisions = samples["grbac_pdp_decisions"]
        assert {labels["shard"] for labels, _ in decisions} == set(shards)
        assert all(value == 41.0 for _, value in decisions)

    def test_merge_preserves_worker_label_values(self) -> None:
        merged = merge_prometheus({"w0": self.worker_text()})
        samples = parse_prometheus(merged)
        ((labels, value),) = samples["grbac_tenant_decisions"]
        assert labels == {"tenant": 'acme "prod"', "shard": "w0"}
        assert value == 7.0

    def test_merge_emits_type_lines_once(self) -> None:
        merged = merge_prometheus(
            {"w0": self.worker_text(), "w1": self.worker_text()}
        )
        type_lines = [
            line for line in merged.splitlines() if line.startswith("# TYPE")
        ]
        assert type_lines.count("# TYPE grbac_pdp_decisions counter") == 1

    def test_unparseable_worker_becomes_scrape_error_sample(self) -> None:
        merged = merge_prometheus(
            {"good": self.worker_text(), "bad": "{{{ not prometheus"}
        )
        samples = parse_prometheus(merged)
        errors = {
            labels["shard"]: value
            for labels, value in samples["grbac_cluster_scrape_errors_total"]
        }
        assert errors == {"bad": 1.0, "good": 0.0}
        assert "grbac_pdp_decisions" in samples

    def test_merge_round_trips_non_finite_values(self) -> None:
        merged = merge_prometheus({"w0": "grbac_gauge NaN\n"})
        samples = parse_prometheus(merged)
        ((labels, value),) = samples["grbac_gauge"]
        assert labels == {"shard": "w0"}
        assert math.isnan(value)
