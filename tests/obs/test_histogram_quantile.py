"""Edge cases of ``Histogram.quantile`` (pinned behavior).

The estimator answers from geometric buckets but clamps to the
exactly-tracked observed maximum, so an estimate can never exceed any
real observation.  These tests pin the edges where bucketed estimators
classically surprise: empty data, a single observation, ``q = 1.0``,
and observations beyond the top bucket bound.
"""

import pytest

from repro.obs.metrics import Histogram


class TestEmptyHistogram:
    def test_every_quantile_is_zero(self):
        histogram = Histogram("latency")
        for q in (0.01, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.0

    def test_bad_q_rejected_even_when_empty(self):
        histogram = Histogram("latency")
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.0001)
        with pytest.raises(ValueError):
            histogram.quantile(-0.5)


class TestSingleObservation:
    def test_every_quantile_is_the_observation(self):
        """One sample: the clamp collapses the bucket-width error.

        Without the max clamp a single 5us observation would report
        8us (its bucket's upper bound) at every quantile — a 60%%
        over-report from one data point.
        """
        histogram = Histogram("latency")
        histogram.observe(5e-6)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(5e-6)

    def test_exact_bucket_bound_observation(self):
        histogram = Histogram("latency")
        histogram.observe(4e-6)  # exactly a bucket upper bound
        assert histogram.quantile(0.5) == pytest.approx(4e-6)
        assert histogram.quantile(1.0) == pytest.approx(4e-6)


class TestQEqualsOne:
    def test_q1_is_the_observed_max_exactly(self):
        histogram = Histogram("latency")
        for value in (1e-6, 3e-6, 100e-6, 7.3e-6):
            histogram.observe(value)
        assert histogram.quantile(1.0) == pytest.approx(100e-6)

    def test_q1_never_exceeds_max_with_spread_data(self):
        histogram = Histogram("latency")
        for i in range(1000):
            histogram.observe((i + 1) * 1e-6)
        assert histogram.quantile(1.0) == pytest.approx(1000e-6)
        # Lower quantiles stay at or below q=1.0 (monotone).
        previous = 0.0
        for q in (0.1, 0.5, 0.9, 0.99, 1.0):
            value = histogram.quantile(q)
            assert value >= previous
            previous = value


class TestBeyondTopBucket:
    def test_overflow_observation_reports_observed_max(self):
        """Values past the last bound land in the overflow bucket,
        whose only known bound is the tracked max."""
        histogram = Histogram("latency")
        top = histogram.bounds[-1]
        histogram.observe(top * 10)
        assert histogram.quantile(0.5) == pytest.approx(top * 10)
        assert histogram.quantile(1.0) == pytest.approx(top * 10)

    def test_mixed_overflow_keeps_lower_quantiles_bucketed(self):
        histogram = Histogram("latency")
        top = histogram.bounds[-1]
        for _ in range(99):
            histogram.observe(3e-6)
        histogram.observe(top * 3)
        # p50 is still answered from the in-range buckets: 3us sits in
        # the (2us, 4us] bucket, so its upper bound is reported...
        assert histogram.quantile(0.5) == pytest.approx(4e-6)
        # ...while the tail reports the overflow observation.
        assert histogram.quantile(1.0) == pytest.approx(top * 3)

    def test_estimate_never_exceeds_an_observation(self):
        histogram = Histogram("latency")
        values = [1.5e-6, 2.5e-6, 3e-6, 9e-6, 33e-6]
        for value in values:
            histogram.observe(value)
        for q in (0.2, 0.4, 0.6, 0.8, 1.0):
            assert histogram.quantile(q) <= max(values)


class TestSnapshotPercentiles:
    def test_snapshot_reports_complete_percentile_set(self):
        """Latency reporting must carry p50, p95, AND p99 — partial
        percentile sets (p95 without p99, or vice versa) have twice
        slipped through report plumbing."""
        histogram = Histogram("latency")
        for i in range(200):
            histogram.observe((i + 1) * 1e-6)
        snap = histogram.snapshot()
        for key in ("count", "mean_us", "p50_us", "p95_us", "p99_us",
                    "min_us", "max_us"):
            assert key in snap, key
        assert snap["p50_us"] <= snap["p95_us"] <= snap["p99_us"]
        assert snap["p99_us"] <= snap["max_us"]
