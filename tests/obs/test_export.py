"""Tests for the telemetry export boundary: exposition, sampling, sinks."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    InMemoryTraceSink,
    JsonlTraceSink,
    MetricsRegistry,
    PrometheusParseError,
    TraceSampler,
    parse_prometheus,
    prometheus_name,
    render_json,
    render_prometheus,
    trace_to_dict,
)
from repro.obs.trace import DecisionTrace


class TestPrometheusName:
    def test_dots_and_dashes_become_underscores(self):
        assert prometheus_name("pdp.cache_hits") == "grbac_pdp_cache_hits"
        assert (
            prometheus_name("pipeline.match-permissions")
            == "grbac_pipeline_match_permissions"
        )

    def test_suffix_and_digit_guard(self):
        assert prometheus_name("pdp.requests", "_total") == (
            "grbac_pdp_requests_total"
        )
        assert prometheus_name("9lives").startswith("grbac__9lives")


class TestRenderPrometheus:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("pdp.requests").inc(7)
        registry.gauge("pdp.queue_depth").set(3)
        histogram = registry.histogram("pdp.latency")
        histogram.observe(2e-6)
        histogram.observe(5e-6)
        return registry

    def test_counter_gauge_histogram_families(self):
        text = render_prometheus(self.make_registry())
        families = parse_prometheus(text)
        assert families["grbac_pdp_requests_total"] == [({}, 7.0)]
        assert families["grbac_pdp_queue_depth"] == [({}, 3.0)]
        # Native histogram: cumulative buckets, +Inf, _sum, _count.
        buckets = families["grbac_pdp_latency_seconds_bucket"]
        assert buckets[-1][0] == {"le": "+Inf"}
        assert buckets[-1][1] == 2.0
        cumulative = [value for _, value in buckets]
        assert cumulative == sorted(cumulative)
        assert families["grbac_pdp_latency_seconds_count"] == [({}, 2.0)]
        (labels, total) = families["grbac_pdp_latency_seconds_sum"][0]
        assert total == pytest.approx(7e-6)

    def test_type_lines_name_each_family(self):
        text = render_prometheus(self.make_registry())
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        declared = {line.split()[2]: line.split()[3] for line in type_lines}
        assert declared["grbac_pdp_requests_total"] == "counter"
        assert declared["grbac_pdp_queue_depth"] == "gauge"
        assert declared["grbac_pdp_latency_seconds"] == "histogram"

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_render_json_matches_snapshot(self):
        registry = self.make_registry()
        assert render_json(registry) == registry.snapshot()

    def test_pull_gauge_reads_live(self):
        registry = MetricsRegistry()
        state = {"value": 1.0}
        registry.gauge("env.revision", lambda: state["value"])
        assert "grbac_env_revision 1.0" in render_prometheus(registry)
        state["value"] = 9.0
        assert "grbac_env_revision 9.0" in render_prometheus(registry)


class TestParsePrometheus:
    def test_rejects_malformed_sample(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("grbac_thing\n")

    def test_rejects_bad_metric_name(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("9bad_name 1\n")

    def test_rejects_non_numeric_value(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("grbac_thing banana\n")

    def test_rejects_unclosed_label_block(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus('grbac_thing{le="1.0" 3\n')

    def test_rejects_unquoted_label_value(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("grbac_thing{le=1.0} 3\n")

    def test_rejects_unknown_comment_form(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("# BOGUS grbac_thing counter\n")

    def test_accepts_help_and_blank_lines(self):
        families = parse_prometheus(
            "# HELP grbac_thing words here\n\ngrbac_thing 4\n"
        )
        assert families == {"grbac_thing": [({}, 4.0)]}


class TestTraceToDict:
    def make_trace(self) -> DecisionTrace:
        trace = DecisionTrace(
            "alice", "watch", "livingroom/tv", mode="compiled"
        )
        trace.granted = True
        trace.rationale = "closest match grants"
        trace.subject_roles = {"child": 1.0}
        trace.environment_roles = ["free-time"]
        trace.matched_rules = ["(child, watch, entertainment-devices)"]
        trace.add_span("resolve-subject-roles", 4e-6, {"roles": 2})
        trace.add_span("emit", 1e-6, {"sets": frozenset({"a"})})
        return trace

    def test_span_record_shape(self):
        span = trace_to_dict(self.make_trace(), request_id=41)
        assert span["request_id"] == 41
        assert span["subject"] == "alice"
        assert span["granted"] is True
        assert span["total_us"] == pytest.approx(5.0)
        assert [s["name"] for s in span["stages"]] == [
            "resolve-subject-roles",
            "emit",
        ]
        # Everything must be JSON-serializable (frozenset flattened).
        json.dumps(span)

    def test_request_id_defaults_to_trace_field(self):
        trace = self.make_trace()
        trace.request_id = "req-9"
        assert trace_to_dict(trace)["request_id"] == "req-9"


class TestTraceSampler:
    def test_deterministic_fraction(self):
        sampler = TraceSampler(0.1)
        picks = [sampler.should_sample() for _ in range(1000)]
        assert sum(picks) == 100
        assert sampler.sampled == 100
        assert sampler.seen == 1000

    def test_rate_zero_never_samples(self):
        sampler = TraceSampler(0.0)
        assert not any(sampler.should_sample() for _ in range(100))
        assert sampler.sampled == 0

    def test_rate_one_always_samples(self):
        sampler = TraceSampler(1.0)
        assert all(sampler.should_sample() for _ in range(100))

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            TraceSampler(1.5)
        with pytest.raises(ValueError):
            TraceSampler(-0.1)


class TestInMemoryTraceSink:
    def test_accepts_until_capacity_then_drops(self):
        sink = InMemoryTraceSink(capacity=2)
        assert sink.offer({"a": 1}) is True
        assert sink.offer({"b": 2}) is True
        assert sink.offer({"c": 3}) is False
        assert sink.accepted == 2
        assert sink.dropped == 1
        assert sink.stats() == {"accepted": 2, "dropped": 1}


class TestJsonlTraceSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = os.path.join(str(tmp_path), "traces.jsonl")
        sink = JsonlTraceSink(path)
        for i in range(5):
            assert sink.offer({"request_id": i, "granted": True})
        sink.close()
        with open(path, "r", encoding="utf-8") as handle:
            spans = [json.loads(line) for line in handle]
        assert [span["request_id"] for span in spans] == list(range(5))
        assert sink.accepted == 5
        assert sink.dropped == 0

    def test_rotation_shifts_generations(self, tmp_path):
        path = os.path.join(str(tmp_path), "traces.jsonl")
        # Tiny threshold: every span overflows the active file.
        sink = JsonlTraceSink(path, max_bytes=10, backups=2)
        for i in range(4):
            sink.offer({"i": i})
        sink.close()
        assert sink.rotations >= 2
        assert os.path.exists(f"{path}.1")
        assert os.path.exists(f"{path}.2")
        assert not os.path.exists(f"{path}.3")  # backups bound respected
        # Every written line everywhere is valid JSON.
        for candidate in (path, f"{path}.1", f"{path}.2"):
            if os.path.exists(candidate):
                with open(candidate, "r", encoding="utf-8") as handle:
                    for line in handle:
                        json.loads(line)

    def test_offer_after_close_drops(self, tmp_path):
        path = os.path.join(str(tmp_path), "traces.jsonl")
        sink = JsonlTraceSink(path)
        sink.close()
        assert sink.offer({"late": True}) is False
        assert sink.dropped == 1

    def test_stats_carry_path_and_rotations(self, tmp_path):
        path = os.path.join(str(tmp_path), "traces.jsonl")
        sink = JsonlTraceSink(path)
        sink.offer({"x": 1})
        sink.close()
        stats = sink.stats()
        assert stats["path"] == path
        assert stats["rotations"] == 0
        assert stats["accepted"] == 1
