"""Tests for hierarchical RBAC and RBAC sessions."""

import pytest

from repro.exceptions import (
    ActivationError,
    ConstraintViolationError,
)
from repro.rbac.hierarchy import HierarchicalRbacModel
from repro.rbac.sessions import RbacSessionModel


class TestHierarchicalRbac:
    @pytest.fixture
    def org(self) -> HierarchicalRbacModel:
        model = HierarchicalRbacModel()
        model.add_subject("dana")
        model.add_specialization("engineering-manager", "manager")
        model.add_specialization("sales-manager", "manager")
        model.add_transaction("approve-expenses")
        model.add_transaction("deploy-code")
        model.authorize_transaction("manager", "approve-expenses")
        model.authorize_transaction("engineering-manager", "deploy-code")
        model.authorize_role("dana", "engineering-manager")
        return model

    def test_generic_rule_written_once_covers_specializations(self, org):
        # §4.1.2: "write generic access rules just once".
        assert org.exec_("dana", "approve-expenses")
        assert org.exec_("dana", "deploy-code")

    def test_effective_roles(self, org):
        assert org.effective_roles("dana") == {"engineering-manager", "manager"}

    def test_sibling_privileges_not_inherited(self, org):
        org.add_subject("kim")
        org.authorize_role("kim", "sales-manager")
        assert org.exec_("kim", "approve-expenses")
        assert not org.exec_("kim", "deploy-code")

    def test_naive_agrees(self, org):
        for transaction in org.transactions():
            assert org.exec_("dana", transaction) == org.exec_naive(
                "dana", transaction
            )


class TestRbacSessions:
    @pytest.fixture
    def bank(self) -> RbacSessionModel:
        model = RbacSessionModel()
        model.add_subject("pat")
        for role in ("teller", "account-holder"):
            model.add_role(role)
        model.add_transaction("execute-deposit")
        model.add_transaction("authorize-deposit")
        model.authorize_transaction("teller", "execute-deposit")
        model.authorize_transaction("account-holder", "authorize-deposit")
        model.authorize_role("pat", "teller")
        model.authorize_role("pat", "account-holder")
        model.add_dsd_pair("teller", "account-holder")
        return model

    def test_only_active_roles_execute(self, bank):
        session = bank.open_session("pat")
        assert not session.exec_("execute-deposit")
        session.activate("teller")
        assert session.exec_("execute-deposit")
        assert not session.exec_("authorize-deposit")

    def test_dsd_blocks_simultaneous_activation(self, bank):
        session = bank.open_session("pat")
        session.activate("teller")
        with pytest.raises(ConstraintViolationError):
            session.activate("account-holder")

    def test_sequential_use_is_fine(self, bank):
        session = bank.open_session("pat")
        session.activate("teller")
        session.deactivate("teller")
        session.activate("account-holder")
        assert session.exec_("authorize-deposit")

    def test_unpossessed_activation_rejected(self, bank):
        bank.add_role("auditor")
        session = bank.open_session("pat")
        with pytest.raises(ActivationError):
            session.activate("auditor")

    def test_deactivate_inactive_rejected(self, bank):
        session = bank.open_session("pat")
        with pytest.raises(ActivationError):
            session.deactivate("teller")

    def test_dsd_pair_validation(self, bank):
        with pytest.raises(ConstraintViolationError):
            bank.add_dsd_pair("teller", "teller")

    def test_close_session(self, bank):
        session = bank.open_session("pat")
        session.activate("teller")
        bank.close_session(session)
        assert session.active == set()
        assert bank.sessions_of("pat") == []

    def test_dsd_conflicts_lookup(self, bank):
        assert bank.dsd_conflicts("teller") == {"account-holder"}
        assert bank.dsd_conflicts("unrelated") == set()
