"""Tests for the GRBAC↔RBAC bridges (§6 claims made executable)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GrbacPolicy, MediationEngine
from repro.exceptions import PolicyError
from repro.rbac.bridge import (
    FlattenedGrbac,
    agreement_check,
    grbac_from_rbac,
    rbac_from_grbac,
)
from repro.rbac.model import RbacModel


def random_rbac(seed: int, subjects=4, roles=4, transactions=4) -> RbacModel:
    import random

    rng = random.Random(seed)
    model = RbacModel(f"random-{seed}")
    subject_names = [f"s{i}" for i in range(subjects)]
    role_names = [f"r{i}" for i in range(roles)]
    transaction_names = [f"t{i}" for i in range(transactions)]
    for name in subject_names:
        model.add_subject(name)
    for name in role_names:
        model.add_role(name)
    for name in transaction_names:
        model.add_transaction(name)
    for subject in subject_names:
        for role in rng.sample(role_names, rng.randint(0, roles)):
            model.authorize_role(subject, role)
    for role in role_names:
        for transaction in rng.sample(transaction_names, rng.randint(0, transactions)):
            model.authorize_transaction(role, transaction)
    return model


class TestEmbedding:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_rbac_is_grbac_with_subject_roles_only(self, seed):
        """§6: every Figure 1 decision is preserved by the embedding."""
        rbac = random_rbac(seed)
        policy, placeholder = grbac_from_rbac(rbac)
        engine = MediationEngine(policy)
        for subject in rbac.subjects():
            for transaction in rbac.transactions():
                assert rbac.exec_(subject, transaction) == engine.check(
                    subject, transaction, placeholder
                )

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_decisions(self, seed):
        rbac = random_rbac(seed)
        policy, _ = grbac_from_rbac(rbac)
        back = rbac_from_grbac(policy)
        for subject in rbac.subjects():
            for transaction in rbac.transactions():
                assert rbac.exec_(subject, transaction) == back.exec_(
                    subject, transaction
                )


class TestProjectionRestrictions:
    def test_object_roles_not_projectable(self):
        policy = GrbacPolicy()
        policy.add_subject_role("r")
        policy.add_object_role("o")
        policy.grant("r", "t", "o")
        with pytest.raises(PolicyError):
            rbac_from_grbac(policy)

    def test_environment_roles_not_projectable(self):
        policy = GrbacPolicy()
        policy.add_subject_role("r")
        policy.add_environment_role("e")
        policy.grant("r", "t", environment_role="e")
        with pytest.raises(PolicyError):
            rbac_from_grbac(policy)

    def test_negative_rights_not_projectable(self):
        policy = GrbacPolicy()
        policy.add_subject_role("r")
        policy.deny("r", "t")
        with pytest.raises(PolicyError):
            rbac_from_grbac(policy)

    def test_hierarchy_not_projectable(self):
        policy = GrbacPolicy()
        policy.add_subject_role("a")
        policy.add_subject_role("b")
        policy.subject_roles.add_specialization("a", "b")
        with pytest.raises(PolicyError):
            rbac_from_grbac(policy)


class TestFlattening:
    @pytest.fixture
    def grbac(self) -> GrbacPolicy:
        policy = GrbacPolicy("household")
        for role in ("parent", "child"):
            policy.add_subject_role(role)
        for role in ("entertainment", "kitchen"):
            policy.add_object_role(role)
        for role in ("free-time", "weekday"):
            policy.add_environment_role(role)
        for subject, role in [("mom", "parent"), ("alice", "child")]:
            policy.add_subject(subject)
            policy.assign_subject(subject, role)
        for obj, role in [("tv", "entertainment"), ("fridge", "kitchen")]:
            policy.add_object(obj)
            policy.assign_object(obj, role)
        policy.grant("child", "watch", "entertainment", "free-time")
        policy.grant("parent", "open", "kitchen")
        return policy

    def test_size_blowup(self, grbac):
        flattened = FlattenedGrbac(grbac)
        metrics = flattened.size_metrics()
        # subject roles (2) x env roles (2 named + any-environment) = 6
        assert metrics["flat_roles"] == 6
        # transactions (2) x objects (2) = 4
        assert metrics["flat_transactions"] == 4
        # GRBAC needed 2 rules; the flat emulation needs >= 2 and the
        # subjects carry an AR entry per (role, env) combination.
        assert metrics["flat_role_authorizations"] == 6

    def test_semantic_agreement_in_each_context(self, grbac):
        flattened = FlattenedGrbac(grbac)
        for env_role in (None, "free-time", "weekday"):
            assert agreement_check(grbac, flattened, env_role)

    def test_exec_in_env_examples(self, grbac):
        flattened = FlattenedGrbac(grbac)
        assert flattened.exec_in_env("alice", "watch", "tv", "free-time")
        assert not flattened.exec_in_env("alice", "watch", "tv", None)
        assert not flattened.exec_in_env("alice", "watch", "fridge", "free-time")
        assert flattened.exec_in_env("mom", "open", "fridge", None)

    def test_hierarchical_policies_rejected(self, grbac):
        grbac.add_subject_role("home-user")
        grbac.subject_roles.add_specialization("parent", "home-user")
        with pytest.raises(PolicyError):
            FlattenedGrbac(grbac)

    def test_deny_policies_rejected(self, grbac):
        grbac.deny("child", "open", "kitchen")
        with pytest.raises(PolicyError):
            FlattenedGrbac(grbac)

    @given(st.integers(0, 5_000))
    @settings(max_examples=15, deadline=None)
    def test_flattening_agreement_on_random_flat_policies(self, seed):
        from repro.workload.generator import RandomPolicyConfig, generate_policy

        config = RandomPolicyConfig(
            subjects=4,
            objects=4,
            transactions=3,
            subject_roles=3,
            object_roles=3,
            environment_roles=2,
            hierarchy_edges=0,
            permissions=8,
            deny_fraction=0.0,
            seed=seed,
        )
        policy = generate_policy(config)
        flattened = FlattenedGrbac(policy)
        for env_role in [None] + [
            r.name
            for r in policy.environment_roles.roles()
            if r.name != "any-environment"
        ]:
            assert agreement_check(policy, flattened, env_role)
