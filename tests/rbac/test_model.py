"""Tests for the Figure 1 RBAC baseline."""

import pytest

from repro.exceptions import UnknownEntityError
from repro.rbac.model import RbacModel


@pytest.fixture
def bank() -> RbacModel:
    model = RbacModel("bank")
    for subject in ("pat", "sam"):
        model.add_subject(subject)
    for role in ("teller", "account-holder"):
        model.add_role(role)
    for transaction in ("execute-deposit", "authorize-deposit"):
        model.add_transaction(transaction)
    model.authorize_role("pat", "teller")
    model.authorize_role("sam", "account-holder")
    model.authorize_transaction("teller", "execute-deposit")
    model.authorize_transaction("account-holder", "authorize-deposit")
    return model


class TestFigure1Definitions:
    def test_ar_is_the_authorized_role_set(self, bank):
        assert bank.authorized_roles("pat") == {"teller"}
        assert bank.authorized_roles("sam") == {"account-holder"}

    def test_at_is_the_authorized_transaction_set(self, bank):
        assert bank.authorized_transactions("teller") == {"execute-deposit"}

    def test_exec_rule(self, bank):
        # exec(s, t) iff ∃ r: r ∈ AR(s), t ∈ AT(r).
        assert bank.exec_("pat", "execute-deposit")
        assert not bank.exec_("pat", "authorize-deposit")
        assert bank.exec_("sam", "authorize-deposit")
        assert not bank.exec_("sam", "execute-deposit")

    def test_exec_naive_agrees(self, bank):
        for subject in bank.subjects():
            for transaction in bank.transactions():
                assert bank.exec_(subject, transaction) == bank.exec_naive(
                    subject, transaction
                )

    def test_multiple_roles_any_suffices(self, bank):
        bank.authorize_role("pat", "account-holder")
        assert bank.exec_("pat", "authorize-deposit")
        assert bank.exec_("pat", "execute-deposit")


class TestValidation:
    def test_unknown_entities_raise(self, bank):
        with pytest.raises(UnknownEntityError):
            bank.exec_("ghost", "execute-deposit")
        with pytest.raises(UnknownEntityError):
            bank.exec_("pat", "ghost-transaction")
        with pytest.raises(UnknownEntityError):
            bank.authorize_role("pat", "ghost-role")
        with pytest.raises(UnknownEntityError):
            bank.authorize_transaction("ghost-role", "execute-deposit")

    def test_empty_names_rejected(self):
        model = RbacModel()
        with pytest.raises(UnknownEntityError):
            model.add_subject("")
        with pytest.raises(UnknownEntityError):
            model.add_role("")
        with pytest.raises(UnknownEntityError):
            model.add_transaction("")

    def test_registration_idempotent(self):
        model = RbacModel()
        model.add_subject("pat")
        model.add_subject("pat")
        assert model.subjects() == ["pat"]


class TestStats:
    def test_counters(self, bank):
        stats = bank.stats()
        assert stats["subjects"] == 2
        assert stats["roles"] == 2
        assert stats["transactions"] == 2
        assert stats["role_authorizations"] == 2
        assert stats["transaction_authorizations"] == 2
