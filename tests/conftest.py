"""Shared fixtures for the GRBAC test suite."""

from __future__ import annotations

import pytest

from repro.core import GrbacPolicy, MediationEngine, StaticEnvironment
from repro.policy.templates import (
    install_figure2_household,
    install_figure2_roles,
)


@pytest.fixture
def empty_policy() -> GrbacPolicy:
    """A fresh policy with only the distinguished wildcard roles."""
    return GrbacPolicy("test")


@pytest.fixture
def figure2_policy() -> GrbacPolicy:
    """The Figure 2 household: hierarchy + Mom/Dad/Alice/Bobby/tech."""
    policy = GrbacPolicy("figure2")
    install_figure2_household(policy)
    return policy


@pytest.fixture
def tv_policy() -> GrbacPolicy:
    """A small, complete policy used across core tests.

    Figure 2 roles, a TV classified *television* ⊂
    *entertainment-devices*, an oven classified *dangerous*,
    environment roles *free-time* and *weekday*, and the §5.1 grant.
    """
    policy = GrbacPolicy("tv")
    install_figure2_roles(policy)
    for subject, role in [
        ("mom", "parent"),
        ("dad", "parent"),
        ("alice", "child"),
        ("bobby", "child"),
    ]:
        policy.add_subject(subject)
        policy.assign_subject(subject, role)
    policy.add_object("livingroom/tv")
    policy.add_object("kitchen/oven")
    policy.add_object_role("entertainment-devices")
    policy.add_object_role("television")
    policy.add_object_role("dangerous")
    policy.object_roles.add_specialization("television", "entertainment-devices")
    policy.assign_object("livingroom/tv", "television")
    policy.assign_object("kitchen/oven", "dangerous")
    policy.add_environment_role("free-time")
    policy.add_environment_role("weekday")
    policy.grant("child", "watch", "entertainment-devices", "free-time")
    return policy


@pytest.fixture
def tv_engine(tv_policy) -> MediationEngine:
    """Engine over ``tv_policy`` with a controllable static environment."""
    return MediationEngine(tv_policy, StaticEnvironment())


@pytest.fixture
def free_time_env():
    """A static environment with *free-time* active."""
    return StaticEnvironment({"free-time"})
