"""Integration: §4.1.2's role-precedence example, all resolutions.

"Suppose that user Bobby is authorized to possess the roles of child
and family member... the family member role is authorized to read
family medical records, but the child role is not.  If Bobby tries to
read the family's medical records, the system must decide how to
resolve the inconsistency."  The paper enumerates the design space;
this test runs Bobby's request under every strategy.
"""

import pytest

from repro.core import PrecedenceStrategy
from repro.policy.analysis import PolicyAnalyzer
from repro.workload.scenarios import build_medical_records_scenario

RECORDS = "study/medical-records"


class TestBobbyAndTheMedicalRecords:
    @pytest.mark.parametrize(
        "strategy,expected",
        [
            # "The simplest way would be to always give precedence to
            # the role that denies access."
            (PrecedenceStrategy.DENY_OVERRIDES, False),
            # "Similarly, the system could always give precedence to
            # the role that allows access."
            (PrecedenceStrategy.ALLOW_OVERRIDES, True),
            # "Or there could be some other predefined rule or
            # algorithm established to decide role precedence."
            (PrecedenceStrategy.PRIORITY, False),  # equal priority -> deny
            # Role specificity: 'child' sits one step closer to
            # Bobby's direct role than 'family-member'.
            (PrecedenceStrategy.MOST_SPECIFIC, False),
        ],
    )
    def test_every_resolution_strategy(self, strategy, expected):
        scenario = build_medical_records_scenario()
        home = scenario.home
        home.policy.precedence = strategy
        outcome = home.try_operate(
            "bobby", RECORDS, "read_document", document="family-history"
        )
        assert outcome.granted == expected
        assert scenario.oracle(strategy.value) == expected

    def test_parents_unaffected_by_the_conflict(self):
        scenario = build_medical_records_scenario()
        content = scenario.home.operate(
            "mom", RECORDS, "read_document", document="family-history"
        )
        assert content == "confidential"

    def test_priority_is_the_predefined_rule_option(self):
        # Giving the family grant an explicit higher priority realizes
        # the paper's "predefined rule" resolution in the allow
        # direction, without changing the global strategy.
        scenario = build_medical_records_scenario()
        home = scenario.home
        home.policy.precedence = PrecedenceStrategy.PRIORITY
        for permission in list(home.policy.permissions()):
            if permission.name == "family-may-read":
                from repro.core import Permission

                home.policy.remove_permission(permission)
                home.policy.add_permission(
                    Permission(
                        subject_role=permission.subject_role,
                        object_role=permission.object_role,
                        environment_role=permission.environment_role,
                        transaction=permission.transaction,
                        sign=permission.sign,
                        priority=5,
                        name=permission.name,
                    )
                )
        outcome = scenario.home.try_operate(
            "bobby", RECORDS, "read_document", document="family-history"
        )
        assert outcome.granted

    def test_role_activation_resolves_it_too(self):
        # §4.1.2: "Role activation also provides a natural mechanism
        # for resolving role precedence" — with only family-member
        # active, the child deny never matches.
        scenario = build_medical_records_scenario()
        home = scenario.home
        # Bobby's only *direct* role is 'child' (family-member comes
        # through the hierarchy, and activation governs direct roles),
        # so the paper's activation story needs the direct assignment
        # the paper's wording implies: "Bobby is authorized to possess
        # the roles of child AND family member."
        home.policy.assign_subject("bobby", "family-member")
        session = home.policy.sessions.open("bobby", activate=["family-member"])
        outcome = home.try_operate(
            "bobby", RECORDS, "read_document",
            session=session, document="family-history",
        )
        assert outcome.granted
        # And with child active instead, the deny returns.
        session.drop_all()
        session.activate("child")
        outcome = home.try_operate(
            "bobby", RECORDS, "read_document",
            session=session, document="family-history",
        )
        assert not outcome.granted

    def test_the_analyzer_flags_the_conflict_up_front(self):
        scenario = build_medical_records_scenario()
        conflicts = PolicyAnalyzer(scenario.home.policy).find_conflicts()
        assert len(conflicts) == 1
        assert "bobby" in conflicts[0].witness_subjects
        assert RECORDS in conflicts[0].witness_objects
