"""Integration: household administration — the babysitter evening.

Mom (a parent) uses her scoped administrative rights to delegate the
*authorized-guest* role to the babysitter for one evening, the
babysitter gets exactly the guest privileges for exactly the window,
and the whole episode is reconstructable from the audit/event record.
"""

from datetime import datetime

import pytest

from repro.core import AccessRequest, MediationEngine
from repro.core.admin import AdminAction, PolicyAdministrator
from repro.core.delegation import DelegationManager, DelegationState
from repro.exceptions import AccessDeniedError
from repro.home.devices import Refrigerator, Television
from repro.home.registry import SecureHome
from repro.home.residents import Resident, standard_household
from repro.policy.templates import install_figure2_roles


@pytest.fixture
def household():
    home = SecureHome(start=datetime(2000, 1, 21, 17, 0))  # Friday 17:00
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    home.register_resident(
        Resident("babysitter", age=19, weight_lb=128.0, roles=())
    )
    home.register_device(Television("tv", "livingroom"))
    home.register_device(Refrigerator("fridge", "kitchen"))
    policy = home.policy
    policy.grant("authorized-guest", "power_on", "entertainment", name="guest-tv")
    policy.grant("authorized-guest", "watch", "entertainment", name="guest-tv2")
    policy.grant("authorized-guest", "open", "kitchen", name="guest-fridge")
    policy.grant("family-member", "power_on", "entertainment")

    delegations = DelegationManager(
        policy, home.runtime.clock, bus=home.runtime.bus
    )
    admin = PolicyAdministrator(policy, delegations=delegations, bus=home.runtime.bus)
    admin.grant_admin("parent", AdminAction.DELEGATE_ROLE, "authorized-guest")
    admin.grant_admin("parent", AdminAction.REVOKE_ROLE, "authorized-guest")
    return home, admin, delegations


class TestBabysitterEvening:
    def test_the_full_evening(self, household):
        home, admin, delegations = household

        # Before the pass: the babysitter can do nothing.
        assert not home.try_operate("babysitter", "livingroom/tv", "power_on").granted

        # 17:05 — Mom issues an evening pass until 23:00.
        delegation = admin.delegate_role(
            "mom", "babysitter", "authorized-guest",
            until=datetime(2000, 1, 21, 23, 0),
        )
        assert delegation.state is DelegationState.ACTIVE
        assert home.try_operate("babysitter", "livingroom/tv", "power_on").granted
        assert home.try_operate("babysitter", "kitchen/fridge", "open").granted

        # Guest rights are guest rights — nothing parental leaks.
        assert not home.try_operate("babysitter", "kitchen/fridge", "add_item").granted

        # 23:30 — the pass has lapsed on its own.
        home.runtime.clock.advance(hours=6, minutes=30)
        assert delegation.state is DelegationState.EXPIRED
        assert not home.try_operate("babysitter", "livingroom/tv", "power_on").granted

        # The trusted event record tells the whole story.
        event_types = [
            e.type
            for e in home.runtime.bus.history()
            if e.type.startswith(("admin.", "delegation."))
        ]
        assert event_types == [
            "delegation.granted",
            "admin.delegate-role",
            "delegation.expired",
        ]

    def test_children_cannot_issue_passes(self, household):
        home, admin, _ = household
        with pytest.raises(AccessDeniedError):
            admin.delegate_role(
                "alice", "babysitter", "authorized-guest",
                until=datetime(2000, 1, 21, 23, 0),
            )
        assert not home.try_operate("babysitter", "livingroom/tv", "power_on").granted

    def test_parents_cannot_delegate_parenthood(self, household):
        home, admin, _ = household
        with pytest.raises(AccessDeniedError):
            admin.delegate_role(
                "mom", "babysitter", "parent",
                until=datetime(2000, 1, 21, 23, 0),
            )

    def test_early_revocation(self, household):
        home, admin, delegations = household
        delegation = admin.delegate_role(
            "mom", "babysitter", "authorized-guest",
            until=datetime(2000, 1, 21, 23, 0),
        )
        # The kids act up; the evening ends early.
        delegations.revoke(delegation)
        assert not home.try_operate("babysitter", "livingroom/tv", "power_on").granted

    def test_cached_engine_tracks_delegation_lifecycle(self, household):
        # The decision cache must not serve stale grants across the
        # delegation boundary — decision_revision covers assignments.
        home, admin, _ = household
        engine = MediationEngine(
            home.policy, home.runtime.activator, cache_size=32
        )
        request = AccessRequest(
            transaction="power_on", obj="livingroom/tv", subject="babysitter"
        )
        assert not engine.decide(request).granted
        admin.delegate_role(
            "mom", "babysitter", "authorized-guest",
            until=datetime(2000, 1, 21, 23, 0),
        )
        assert engine.decide(request).granted
        home.runtime.clock.advance(hours=7)
        assert not engine.decide(request).granted
