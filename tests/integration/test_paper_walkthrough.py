"""Integration: the paper's complete §5 narrative, end to end.

These tests read like the paper: the household is set up once, the
§5.1 rule is written once, and the assertions are the paper's own
sentences.
"""

from datetime import datetime

import pytest

from repro.workload.scenarios import build_s51_scenario, build_s52_scenario


class TestSection51Narrative:
    @pytest.fixture
    def scenario(self):
        # Monday, January 17, 2000 — dinner is over at 19:00.
        return build_s51_scenario(start=datetime(2000, 1, 17, 18, 30))

    def test_the_single_rule_implements_the_policy(self, scenario):
        """'The administrator needs to write just one rule...'

        (Two grants in our encoding because using a device involves
        both powering it on and watching — still one conceptual rule
        per transaction, with no per-user or per-device rules.)
        """
        policy = scenario.home.policy
        assert len(policy.permissions()) == 2
        subjects_mentioned = {p.subject_role.name for p in policy.permissions()}
        assert subjects_mentioned == {"child"}  # no per-user rules

    def test_before_free_time_denied(self, scenario):
        home = scenario.home
        assert not home.try_operate("alice", "livingroom/tv", "power_on").granted

    def test_during_free_time_granted_for_children(self, scenario):
        home = scenario.home
        home.runtime.clock.advance(minutes=45)  # 19:15
        assert home.try_operate("alice", "livingroom/tv", "power_on").granted
        assert home.try_operate("bobby", "kids-bedroom/console", "power_on").granted

    def test_bedtime_ends_access(self, scenario):
        home = scenario.home
        home.runtime.clock.advance(hours=4)  # 22:30
        assert not home.try_operate("alice", "livingroom/tv", "power_on").granted

    def test_weekend_not_covered(self, scenario):
        home = scenario.home
        home.runtime.clock.advance(days=5, minutes=45)  # Saturday 19:15
        assert not home.try_operate("alice", "livingroom/tv", "power_on").granted

    def test_newly_purchased_device_immediately_governed(self, scenario):
        """'If the household were to purchase a new toy or entertainment
        device, they could simply map the device to the role and it
        would immediately be controlled by this pre-defined policy.'"""
        from repro.home.devices import Stereo

        home = scenario.home
        home.runtime.clock.advance(minutes=45)  # 19:15
        new_toy = Stereo("boombox", "kids-bedroom")
        home.register_device(new_toy)  # category role: entertainment
        assert home.try_operate("alice", "kids-bedroom/boombox", "power_on").granted

    def test_role_events_fired_at_19_and_22(self, scenario):
        home = scenario.home
        home.runtime.clock.advance(hours=1)  # 19:30 -> activation
        home.runtime.clock.advance(hours=3)  # 22:30 -> deactivation
        types = [e.type for e in home.runtime.bus.history() if e.type.startswith("role.")]
        assert "role.activated" in types
        assert "role.deactivated" in types


class TestSection52Narrative:
    @pytest.fixture
    def scenario(self):
        return build_s52_scenario()

    def test_the_full_smart_floor_story(self, scenario):
        """Alice (11, 94 lb) approaches the TV after dinner; the Smart
        Floor identifies her at ~75%, below the 90% policy threshold;
        but it authenticates her into Child at ~98%, and the TV turns
        on when she pushes the power button."""
        home = scenario.home
        alice = home.resident("alice")

        result = home.auth.authenticate(alice.presence())
        threshold = scenario.extras["threshold"]
        assert result.identity_confidence < threshold  # identity insufficient
        assert result.role_confidences["child"] >= threshold  # role sufficient

        outcome = home.operate_with_presence(
            alice.presence(), "livingroom/tv", "power_on"
        )
        assert outcome.granted
        assert home.device("livingroom/tv").state["power"] is True

    def test_stranger_of_childlike_weight_also_admitted_as_child(self, scenario):
        """Role-level authentication is about the class, not the person
        — a visiting 70 lb child is granted exactly like Alice."""
        from repro.auth.authenticator import Presence

        outcome = scenario.home.operate_with_presence(
            Presence("visiting-kid", {"weight_lb": 70.0}),
            "livingroom/tv",
            "power_on",
        )
        assert outcome.granted

    def test_adult_weight_gets_no_child_grant(self, scenario):
        from repro.auth.authenticator import Presence

        outcome = scenario.home.operate_with_presence(
            Presence("someone", {"weight_lb": 180.0}), "livingroom/tv", "power_on"
        )
        assert not outcome.granted

    def test_audit_trail_records_the_sensor_driven_decision(self, scenario):
        home = scenario.home
        alice = home.resident("alice")
        home.operate_with_presence(alice.presence(), "livingroom/tv", "power_on")
        record = list(home.audit)[-1]
        assert record.granted
        # The request went through with the identity attached (0.75 is
        # above the *service* threshold 0.5) but the grant's rationale
        # names the child rule.
        assert "child" in record.decision.rationale
