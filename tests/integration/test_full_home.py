"""Integration: a fully configured household with all apps at once."""

from datetime import datetime

import pytest

from repro.exceptions import AccessDeniedError
from repro.home.apps import (
    CyberfridgeApp,
    ElderCareApp,
    MediaGuardApp,
    UtilityApp,
)
from repro.home.devices import (
    Camera,
    DoorLock,
    MedicalMonitor,
    Oven,
    Refrigerator,
    Television,
    Thermostat,
    WaterHeater,
)
from repro.home.registry import SecureHome
from repro.home.residents import standard_household
from repro.policy.templates import install_figure2_roles
from repro.sensors.motion import OccupancyProvider
from repro.workload.traces import DayTraceSimulator


@pytest.fixture
def full_home():
    """Everything wired: all devices, all apps, the whole family."""
    home = SecureHome(start=datetime(2000, 1, 17, 6, 0))
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)

    devices = {
        "tv": Television("tv", "livingroom"),
        "fridge": Refrigerator("fridge", "kitchen"),
        "oven": Oven("oven", "kitchen"),
        "thermostat": Thermostat("thermostat", "foyer"),
        "heater": WaterHeater("heater", "garage"),
        "monitor": MedicalMonitor("vitals", "master-bedroom"),
        "camera": Camera("camera", "master-bedroom"),
        "door": DoorLock("front-door", "foyer"),
    }
    for device in devices.values():
        home.register_device(device)
    home.runtime.providers.register(
        OccupancyProvider(home.runtime.location, ["home"])
    )

    CyberfridgeApp.install_policy(home)
    fridge_app = CyberfridgeApp(home, devices["fridge"])
    eldercare = ElderCareApp(
        home, devices["monitor"], devices["camera"], devices["door"]
    )
    ElderCareApp.install_policy(home)
    UtilityApp.install_policy(home)
    utility = UtilityApp(home, devices["thermostat"], devices["heater"])
    media = MediaGuardApp(home, devices["tv"])
    MediaGuardApp.install_policy(home)
    media.add_program(2, "cartoons", "G")
    media.add_program(5, "late-movie", "R")

    # Household basics beyond the apps.
    home.policy.grant("family-member", "power_on", "entertainment")
    home.policy.grant("family-member", "watch", "entertainment")
    home.policy.deny("child", "power_on", "safety-critical", name="kids-oven")
    home.policy.grant("parent", "power_on", "safety-critical")
    home.policy.grant("parent", "set_temperature", "safety-critical")
    home.policy.grant("parent", "set_temperature", "hvac")
    home.policy.add_subject("nurse")
    home.policy.assign_subject("nurse", "caregiver")

    return home, devices, {
        "fridge": fridge_app,
        "eldercare": eldercare,
        "utility": utility,
        "media": media,
    }


class TestCrossAppInteractions:
    def test_role_structure_is_shared_across_apps(self, full_home):
        home, _, apps = full_home
        # One 'parent' role drives fridge management AND the oven AND
        # media — no per-app identity silos.
        assert apps["fridge"].stock("mom", "milk", 2) == 2
        assert home.operate("mom", "kitchen/oven", "power_on")
        assert apps["media"].can_watch("mom", 5)

    def test_children_see_consistent_restrictions(self, full_home):
        home, _, apps = full_home
        with pytest.raises(AccessDeniedError):
            home.operate("alice", "kitchen/oven", "power_on")
        assert not apps["media"].can_watch("alice", 5)
        assert apps["media"].can_watch("alice", 2)
        assert apps["fridge"].read_inventory("alice") is not None

    def test_environment_roles_from_different_apps_coexist(self, full_home):
        home, _, apps = full_home
        home.move("mom", "kitchen")
        apps["utility"].tick()
        assert apps["utility"].status()["heating"] is True
        apps["eldercare"].record_vitals(150, 190)
        # The utility app's roles are unaffected by the emergency role.
        active = home.runtime.active_roles()
        assert "medical-emergency" in active
        assert "home-occupied" in active

    def test_emergency_does_not_leak_unrelated_rights(self, full_home):
        home, _, apps = full_home
        apps["eldercare"].record_vitals(150, 190)
        # Even during an emergency, the nurse cannot raid the fridge.
        with pytest.raises(AccessDeniedError):
            home.operate("nurse", "kitchen/fridge", "read_inventory")

    def test_full_day_trace_runs_clean(self, full_home):
        home, _, _ = full_home
        simulator = DayTraceSimulator(home, step_minutes=20, seed=2)
        result = simulator.run(hours=24)
        assert len(result.events) >= 20
        assert result.grants > 0
        assert result.denials > 0  # children keep probing the oven
        assert home.audit.total >= len(result.events)

    def test_audit_answers_who_did_what(self, full_home):
        home, _, apps = full_home
        apps["fridge"].stock("mom", "milk", 1)
        try:
            home.operate("alice", "kitchen/oven", "power_on")
        except AccessDeniedError:
            pass
        oven_denials = home.audit.records(obj="kitchen/oven", granted=False)
        assert [r.subject for r in oven_denials] == ["alice"]
        milk_grants = home.audit.records(subject="mom", granted=True)
        assert any(r.transaction == "add_item" for r in milk_grants)
