"""Every shipped example must run clean — they are the quickstart.

Each example is executed as a subprocess (the way a user would run it)
and must exit 0 with the output landmarks it promises.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

#: example file -> a landmark string its output must contain
LANDMARKS = {
    "quickstart.py": "Why was the last request denied?",
    "aware_home.py": "Section 5.1",
    "partial_authentication.py": "the TV turns on",
    "policy_language.py": "Policy lint:",
    "eldercare.py": "unlocks the front door",
    "connected_home.py": "babysitter",
    "unified_models.py": "multilevel security",
    "served_home.py": "identical grant/deny sequence",
    "videophone_revocation.py": "the videophone hung up twice",
}


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("name", sorted(LANDMARKS))
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert LANDMARKS[name] in result.stdout
    assert "Traceback" not in result.stderr


def test_every_example_file_has_a_landmark():
    shipped = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    assert shipped == set(LANDMARKS), (
        "examples/ and the landmark table drifted apart"
    )
