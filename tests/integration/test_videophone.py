"""Integration: §4.2.2's videophone rule — requester-relative location.

"Children may only use the videophone while they are in the kitchen."
The rule conditions on the *requester's* location, so two children in
different rooms get different answers at the same instant — exactly
what the requester-relative environment roles provide.
"""

from datetime import datetime

import pytest

from repro.core import AccessRequest
from repro.env.location import RequesterLocationEnvironment
from repro.home.devices import Videophone
from repro.home.registry import SecureHome
from repro.home.residents import standard_household
from repro.policy.templates import install_figure2_roles


@pytest.fixture
def home() -> SecureHome:
    home = SecureHome(start=datetime(2000, 1, 17, 19, 0))
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    home.register_device(Videophone("videophone", "kitchen"))
    policy = home.policy
    # The paper's rule, verbatim: one grant against the injected role.
    policy.add_environment_role(
        "requester-in-kitchen", "the requester is in the kitchen"
    )
    policy.grant(
        "child", "place_call", "communication", "requester-in-kitchen",
        name="videophone-kitchen",
    )
    # Parents call from anywhere.
    policy.grant("parent", "place_call", "communication", name="parents-anywhere")
    policy.grant("family-member", "hang_up", "communication")
    return home


class TestVideophoneRule:
    def test_child_in_kitchen_may_call(self, home):
        home.move("alice", "kitchen")
        assert home.try_operate("alice", "kitchen/videophone", "place_call").granted

    def test_child_elsewhere_may_not(self, home):
        home.move("alice", "livingroom")
        assert not home.try_operate(
            "alice", "kitchen/videophone", "place_call"
        ).granted

    def test_two_children_different_rooms_same_instant(self, home):
        home.move("alice", "kitchen")
        home.move("bobby", "kids-bedroom")
        alice = home.try_operate("alice", "kitchen/videophone", "place_call")
        assert alice.granted
        home.device("kitchen/videophone").perform("hang_up")
        bobby = home.try_operate("bobby", "kitchen/videophone", "place_call")
        assert not bobby.granted

    def test_access_follows_movement(self, home):
        home.move("alice", "livingroom")
        assert not home.try_operate(
            "alice", "kitchen/videophone", "place_call"
        ).granted
        home.move("alice", "kitchen")
        assert home.try_operate("alice", "kitchen/videophone", "place_call").granted

    def test_parents_unconstrained_by_location(self, home):
        home.move("mom", "master-bedroom")
        assert home.try_operate("mom", "kitchen/videophone", "place_call").granted

    def test_zone_level_roles_also_injected(self, home):
        # requester-in-downstairs is injected too (zones come from the
        # topology); a rule can target the whole floor.
        home.policy.add_environment_role("requester-in-downstairs")
        home.policy.grant(
            "child", "hang_up", "communication", "requester-in-downstairs",
            name="hangup-downstairs",
        )
        home.move("bobby", "diningroom")
        decision = home.engine.decide(
            AccessRequest(
                transaction="hang_up", obj="kitchen/videophone", subject="bobby"
            )
        )
        assert "requester-in-downstairs" in decision.environment_roles

    def test_unregistered_injected_roles_are_inert(self, home):
        # requester-in-garage is injected when someone stands in the
        # garage, but no policy registered it: it must change nothing.
        home.move("alice", "garage")
        decision = home.engine.decide(
            AccessRequest(
                transaction="place_call",
                obj="kitchen/videophone",
                subject="alice",
            )
        )
        assert not decision.granted
        assert "requester-in-garage" not in decision.environment_roles


class TestSourceDirectly:
    def test_wrapper_semantics(self, home):
        environment = home.engine.environment
        assert isinstance(environment, RequesterLocationEnvironment)
        home.move("alice", "kitchen")
        request = AccessRequest(
            transaction="place_call", obj="kitchen/videophone", subject="alice"
        )
        roles = environment.active_environment_roles_for(request)
        assert "requester-in-kitchen" in roles
        assert "requester-in-home" in roles
        assert "requester-in-downstairs" in roles
        # The request-free view adds nothing.
        assert "requester-in-kitchen" not in environment.active_environment_roles()

    def test_subjectless_requests_get_no_location_roles(self, home):
        environment = home.engine.environment
        request = AccessRequest(
            transaction="place_call",
            obj="kitchen/videophone",
            role_claims={"child": 0.9},
        )
        roles = environment.active_environment_roles_for(request)
        assert not any(role.startswith("requester-in-") for role in roles)
