"""Two-phase reload on the administrator: prepare / activate / abort.

The cluster supervisor's all-or-nothing reload is built from these
three primitives; everything here runs against a single PDP so the
token lifecycle (validation at prepare, cheap swap at activate, FIFO
eviction, consume-on-use) is pinned independently of any cluster.
"""

from __future__ import annotations

import asyncio

from repro.core import AccessRequest, MediationEngine
from repro.policy.admin import PolicyAdministrator
from repro.service import PDPConfig, PolicyDecisionPoint

DSL = """
subject role parent
subject role child
subject alice is child
object role entertainment
object tv is entertainment
environment role free-time
allow child to watch on entertainment when free-time
"""

DSL_WITH_BOBBY = DSL + "subject bobby is child\n"


def make_pdp(policy, **config) -> PolicyDecisionPoint:
    return PolicyDecisionPoint(MediationEngine(policy), PDPConfig(**config))


def test_prepare_validates_but_changes_nothing(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)
    revision_before = pdp.policy.decision_revision

    result = admin.prepare(DSL_WITH_BOBBY, actor="ops")
    assert result.accepted is True
    assert result.token == "prep-1"
    assert result.error == ""
    # Still serving the old policy: prepare holds the candidate warm.
    assert pdp.policy.decision_revision == revision_before
    assert pdp.generation == 0
    assert admin.prepared_tokens() == ["prep-1"]
    assert result.record.action == "prepare"


def test_prepare_rejects_malformed_candidate(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)

    result = admin.prepare("grant gibberish ???", actor="ops")
    assert result.accepted is False
    assert result.token is None
    assert "parse error" in result.error
    assert admin.prepared_tokens() == []


def test_activate_swaps_the_prepared_candidate(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)

    async def scenario():
        async with pdp:
            prepared = admin.prepare(DSL_WITH_BOBBY, actor="ops")
            activated = admin.activate_prepared(prepared.token, actor="ops")
            response = await pdp.submit(
                AccessRequest("watch", "tv", subject="bobby"),
                environment_roles={"free-time"},
            )
        return prepared, activated, response

    prepared, activated, response = asyncio.run(scenario())
    assert activated.accepted is True
    assert activated.record.generation == 1
    assert activated.record.action == "activate"
    assert response.granted is True
    # The token is consumed: a second activate is an unknown token.
    replay = admin.activate_prepared(prepared.token, actor="ops")
    assert replay.accepted is False
    assert "unknown prepare token" in replay.error


def test_abort_discards_without_swapping(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)

    prepared = admin.prepare(DSL_WITH_BOBBY, actor="ops")
    assert admin.abort_prepared(prepared.token, actor="ops") is True
    assert pdp.generation == 0
    assert admin.prepared_tokens() == []
    # Idempotent-ish: a dead token aborts to False, activates to error.
    assert admin.abort_prepared(prepared.token, actor="ops") is False
    assert admin.activate_prepared(prepared.token).accepted is False


def test_unknown_token_activate_is_rejected_not_raised(tv_policy) -> None:
    admin = PolicyAdministrator(make_pdp(tv_policy))
    result = admin.activate_prepared("prep-999", actor="ops")
    assert result.accepted is False
    assert "unknown prepare token" in result.error


def test_prepared_tokens_evict_fifo_past_max(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)
    assert admin.max_prepared == 8

    tokens = [
        admin.prepare(DSL, actor="ops", name=f"cand{i}").token
        for i in range(10)
    ]
    held = admin.prepared_tokens()
    assert len(held) == 8
    # The two oldest were evicted, oldest-first.
    assert held == tokens[2:]
    evicted = admin.activate_prepared(tokens[0], actor="ops")
    assert evicted.accepted is False
    survivor = admin.activate_prepared(tokens[-1], actor="ops")
    assert survivor.accepted is True


def test_prepare_audit_trail_spans_the_whole_lifecycle(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)

    kept = admin.prepare(DSL_WITH_BOBBY, actor="ops")
    dropped = admin.prepare(DSL, actor="ops")
    admin.abort_prepared(dropped.token, actor="ops")
    admin.activate_prepared(kept.token, actor="ops")

    actions = [record.action for record in admin.audit.records()]
    assert actions == ["prepare", "prepare", "abort", "activate"]
