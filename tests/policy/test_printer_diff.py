"""Tests for the DSL pretty-printer and the policy diff tool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessRequest,
    MediationEngine,
    PrecedenceStrategy,
    SeparationOfDuty,
    Sign,
)
from repro.core.constraints import CardinalityConstraint
from repro.exceptions import PolicyError
from repro.policy.diff import diff_policies
from repro.policy.dsl import compile_policy
from repro.policy.dsl.printer import print_policy
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)


class TestPrinter:
    def test_tv_policy_round_trips(self, tv_policy):
        text = print_policy(tv_policy)
        restored = compile_policy(text)
        engine_a = MediationEngine(tv_policy)
        engine_b = MediationEngine(restored)
        for subject in ("mom", "alice"):
            for env in (set(), {"free-time"}):
                request = AccessRequest(
                    transaction="watch", obj="livingroom/tv", subject=subject
                )
                assert (
                    engine_a.decide(request, environment_roles=env).granted
                    == engine_b.decide(request, environment_roles=env).granted
                )

    def test_output_is_readable_dsl(self, tv_policy):
        text = print_policy(tv_policy)
        assert "subject role child extends family-member" in text
        assert (
            "allow child to watch on entertainment-devices when free-time"
            in text
        )
        assert "precedence deny-overrides" in text
        assert "default deny" in text

    def test_priority_confidence_and_deny_rendered(self, empty_policy):
        empty_policy.add_subject_role("parent")
        empty_policy.grant("parent", "view", min_confidence=0.9, priority=2)
        empty_policy.deny("parent", "misuse")
        text = print_policy(empty_policy)
        assert "priority 2 allow parent to view if confidence >= 90%" in text
        assert "deny parent to misuse" in text

    def test_sod_constraints_rendered(self, empty_policy):
        empty_policy.add_subject_role("teller")
        empty_policy.add_subject_role("holder")
        empty_policy.add_constraint(
            SeparationOfDuty("bank", ["teller", "holder"], static=False)
        )
        text = print_policy(empty_policy)
        assert "constraint dsd bank between holder and teller" in text
        compile_policy(text)  # and it parses back

    def test_multi_parent_roles_round_trip(self, empty_policy):
        for role in ("a", "b", "c"):
            empty_policy.add_subject_role(role)
        empty_policy.subject_roles.add_specialization("a", "b")
        empty_policy.subject_roles.add_specialization("a", "c")
        restored = compile_policy(print_policy(empty_policy))
        assert restored.subject_roles.is_specialization_of("a", "b")
        assert restored.subject_roles.is_specialization_of("a", "c")

    def test_inexpressible_constraints_raise(self, empty_policy):
        empty_policy.add_subject_role("admin")
        empty_policy.add_constraint(CardinalityConstraint("one", "admin", 1))
        with pytest.raises(PolicyError, match="no DSL syntax"):
            print_policy(empty_policy)

    @given(seed=st.integers(0, 3_000), request_seed=st.integers(0, 3_000))
    @settings(max_examples=15, deadline=None)
    def test_random_grant_only_policies_round_trip(self, seed, request_seed):
        policy = generate_policy(
            RandomPolicyConfig(seed=seed, permissions=20, deny_fraction=0.0)
        )
        restored = compile_policy(print_policy(policy))
        engine_a = MediationEngine(policy)
        engine_b = MediationEngine(restored)
        for generated in generate_requests(policy, 12, seed=request_seed):
            env = set(generated.active_environment_roles)
            assert (
                engine_a.decide(generated.request, environment_roles=env).granted
                == engine_b.decide(generated.request, environment_roles=env).granted
            )


class TestDiff:
    def test_identical_policies_are_equivalent(self, tv_policy):
        diff = diff_policies(tv_policy, tv_policy)
        assert diff.empty
        assert diff.describe() == "policies are equivalent"

    def test_added_rule_and_subject(self, tv_policy, figure2_policy):

        before = tv_policy
        # Rebuild a modified copy through the serializer.
        from repro.policy.serialize import from_dict, to_dict

        after = from_dict(to_dict(tv_policy))
        after.add_subject("grandma")
        after.grant("parent", "unlock")
        diff = diff_policies(before, after)
        assert "grandma" in diff.categories["subjects"].added
        assert any(
            "grant unlock to parent" in item
            for item in diff.categories["permissions"].added
        )
        assert not diff.categories["subjects"].removed

    def test_removed_assignment(self, tv_policy):
        from repro.policy.serialize import from_dict, to_dict

        after = from_dict(to_dict(tv_policy))
        after.revoke_subject("alice", "child")
        diff = diff_policies(tv_policy, after)
        assert "alice -> child" in diff.categories["subject_assignments"].removed

    def test_setting_changes_reported(self, tv_policy):
        from repro.policy.serialize import from_dict, to_dict

        after = from_dict(to_dict(tv_policy))
        after.precedence = PrecedenceStrategy.ALLOW_OVERRIDES
        after.default_sign = Sign.GRANT
        diff = diff_policies(tv_policy, after)
        assert diff.settings["precedence"] == ("deny-overrides", "allow-overrides")
        assert diff.settings["default_sign"] == ("deny", "grant")
        text = diff.describe()
        assert "~ precedence" in text

    def test_describe_uses_plus_minus(self, tv_policy):
        from repro.policy.serialize import from_dict, to_dict

        after = from_dict(to_dict(tv_policy))
        after.add_subject("grandma")
        after.revoke_subject("bobby", "child")
        text = diff_policies(tv_policy, after).describe()
        assert "+ grandma" in text
        assert "- bobby -> child" in text

    def test_hierarchy_edge_changes(self, tv_policy):
        from repro.policy.serialize import from_dict, to_dict

        after = from_dict(to_dict(tv_policy))
        after.object_roles.remove_specialization(
            "television", "entertainment-devices"
        )
        diff = diff_policies(tv_policy, after)
        assert (
            "television -> entertainment-devices"
            in diff.categories["object_hierarchy"].removed
        )


class TestPrinterIdempotency:
    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=10, deadline=None)
    def test_print_compile_print_is_a_fixpoint(self, seed):
        # Printing is a normal form: pretty-printing the compiled
        # output reproduces the same text exactly.
        policy = generate_policy(
            RandomPolicyConfig(seed=seed, permissions=15, deny_fraction=0.2)
        )
        first = print_policy(policy)
        second = print_policy(compile_policy(first, name=policy.name))
        # Names differ only in the header comment; compare the bodies.
        body = lambda text: "\n".join(text.splitlines()[1:])
        assert body(first) == body(second)
