"""Tests for the Bell–LaPadula encoding (§6's MLS claim)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PolicyError, UnknownEntityError
from repro.policy.mls import (
    DEFAULT_LEVELS,
    ReferenceBlp,
    agreement,
    build_pair,
)


@pytest.fixture
def pair():
    subjects = {
        "pvt": "unclassified",
        "sgt": "confidential",
        "col": "secret",
        "gen": "top-secret",
    }
    objects = {
        "memo": "unclassified",
        "plan": "confidential",
        "intel": "secret",
        "codes": "top-secret",
    }
    reference, encoding = build_pair(DEFAULT_LEVELS, subjects, objects)
    return reference, encoding, list(subjects), list(objects)


class TestReferenceBlp:
    def test_no_read_up(self, pair):
        reference, _, _, _ = pair
        assert reference.can_read("gen", "memo")
        assert reference.can_read("col", "intel")
        assert not reference.can_read("pvt", "codes")
        assert not reference.can_read("sgt", "intel")

    def test_no_write_down(self, pair):
        reference, _, _, _ = pair
        assert reference.can_write("pvt", "codes")
        assert reference.can_write("col", "intel")
        assert not reference.can_write("gen", "memo")
        assert not reference.can_write("col", "plan")

    def test_unknown_entities(self, pair):
        reference, _, _, _ = pair
        with pytest.raises(UnknownEntityError):
            reference.can_read("ghost", "memo")
        with pytest.raises(UnknownEntityError):
            reference.can_read("pvt", "ghost")
        with pytest.raises(UnknownEntityError):
            reference.set_clearance("x", "ultra-secret")

    def test_lattice_validation(self):
        with pytest.raises(PolicyError):
            ReferenceBlp(["only-one"])
        with pytest.raises(PolicyError):
            ReferenceBlp(["a", "a"])


class TestEncoding:
    def test_exhaustive_agreement(self, pair):
        reference, encoding, subjects, objects = pair
        result = agreement(reference, encoding, subjects, objects)
        assert result["disagree"] == 0
        assert result["agree"] == len(subjects) * len(objects) * 2

    def test_information_flows_up_only(self, pair):
        _, encoding, _, _ = pair
        # A secret-cleared colonel can read below and write at-or-above.
        assert encoding.can_read("col", "memo")
        assert not encoding.can_read("col", "codes")
        assert encoding.can_write("col", "codes")
        assert not encoding.can_write("col", "memo")

    def test_same_level_read_write(self, pair):
        _, encoding, _, _ = pair
        assert encoding.can_read("sgt", "plan")
        assert encoding.can_write("sgt", "plan")

    def test_unknown_level_rejected(self, pair):
        _, encoding, _, _ = pair
        with pytest.raises(UnknownEntityError):
            encoding.add_subject("x", "ultra")
        with pytest.raises(UnknownEntityError):
            encoding.add_object("x", "ultra")

    def test_encoding_is_pure_grbac(self, pair):
        # No negative rights, no special-cased mediation: just roles,
        # hierarchies, and grants.
        _, encoding, _, _ = pair
        from repro.core import Sign

        assert all(
            p.sign is Sign.GRANT for p in encoding.policy.permissions()
        )
        # 2 rules per level.
        assert len(encoding.policy.permissions()) == 2 * len(DEFAULT_LEVELS)


class TestEncodingProperties:
    @given(
        levels=st.integers(2, 5),
        assignments=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_agreement_on_random_lattices(self, levels, assignments):
        names = [f"L{i}" for i in range(levels)]
        subjects = {}
        objects = {}
        for index, (s_level, o_level) in enumerate(assignments):
            subjects[f"s{index}"] = names[s_level % levels]
            objects[f"o{index}"] = names[o_level % levels]
        reference, encoding = build_pair(names, subjects, objects)
        result = agreement(reference, encoding, list(subjects), list(objects))
        assert result["disagree"] == 0
