"""Property: the DSL printer and parser are a faithful round-trip.

For any structurally valid policy the workload generator can produce,
``compile_policy(print_policy(p))`` must yield an *equivalent* policy:

* identical mediation answers over a seeded request stream (the
  semantic core — a silently dropped rule or hierarchy edge shows up
  here as a flipped grant);
* identical structural inventory (role names, memberships, rule
  count, precedence, default sign);
* a printer fixpoint — printing the re-parsed policy reproduces the
  same text, so repeated export/import cycles cannot drift.

This is the property-test twin of the fixed-example round-trip tests
in ``test_printer_diff.py``.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import MediationEngine
from repro.exceptions import WorkloadError
from repro.policy.dsl import compile_policy
from repro.policy.dsl.printer import print_policy
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)

configs = st.builds(
    RandomPolicyConfig,
    subjects=st.integers(min_value=1, max_value=8),
    objects=st.integers(min_value=1, max_value=8),
    transactions=st.integers(min_value=1, max_value=5),
    subject_roles=st.integers(min_value=1, max_value=5),
    object_roles=st.integers(min_value=1, max_value=4),
    environment_roles=st.integers(min_value=1, max_value=4),
    hierarchy_edges=st.integers(min_value=0, max_value=4),
    roles_per_subject=st.integers(min_value=1, max_value=3),
    roles_per_object=st.integers(min_value=1, max_value=3),
    permissions=st.integers(min_value=0, max_value=20),
    deny_fraction=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=40, deadline=None)
@given(config=configs, request_seed=st.integers(min_value=0, max_value=1000))
def test_print_parse_round_trip_is_equivalent(config, request_seed) -> None:
    try:
        original = generate_policy(config)
    except WorkloadError:
        # The drawn permission count does not fit the drawn role
        # space — not a round-trip case, just an unbuildable config.
        assume(False)
    text = print_policy(original)
    restored = compile_policy(text, name=original.name)

    def names(hierarchy):
        return sorted(role.name for role in hierarchy.roles())

    # Structural inventory survives the trip.
    assert names(restored.subject_roles) == names(original.subject_roles)
    assert names(restored.object_roles) == names(original.object_roles)
    assert names(restored.environment_roles) == names(
        original.environment_roles
    )
    assert len(restored.permissions()) == len(original.permissions())
    assert restored.precedence == original.precedence
    assert restored.default_sign == original.default_sign

    # Semantic equivalence: same answers over a seeded stream.
    engine_a = MediationEngine(original)
    engine_b = MediationEngine(restored)
    for item in generate_requests(original, 30, seed=request_seed):
        env = set(item.active_environment_roles)
        assert (
            engine_a.decide(item.request, environment_roles=env).granted
            == engine_b.decide(item.request, environment_roles=env).granted
        )

    # Printer fixpoint: a second trip reproduces the same text.
    assert print_policy(restored) == text
