"""Tests for the policy DSL: lexer, parser, compiler."""

import pytest

from repro.core import MediationEngine, PrecedenceStrategy, Sign, StaticEnvironment
from repro.exceptions import PolicyCompileError, PolicySyntaxError
from repro.policy.dsl import compile_policy, parse
from repro.policy.dsl.ast import (
    ConstraintDecl,
    DefaultDecl,
    ObjectDecl,
    PrecedenceDecl,
    RoleDecl,
    RuleDecl,
    SubjectDecl,
    TransactionDecl,
)
from repro.policy.dsl.lexer import tokenize_line


class TestLexer:
    def test_words_numbers_percent(self):
        tokens = tokenize_line("priority 5 allow if confidence >= 90%", 1)
        kinds = [t.kind for t in tokens]
        assert kinds == ["word", "number", "word", "word", "word", "gte", "percent"]
        assert tokens[-1].number == pytest.approx(0.9)

    def test_identifiers_with_punctuation(self):
        tokens = tokenize_line("object livingroom/tv is entertainment-devices", 1)
        assert tokens[1].text == "livingroom/tv"
        assert tokens[3].text == "entertainment-devices"

    def test_comments_stripped(self):
        assert tokenize_line("allow x to y  # a comment", 1)[-1].text == "y"
        assert tokenize_line("# only a comment", 1) == []

    def test_unexpected_character(self):
        with pytest.raises(PolicySyntaxError) as excinfo:
            tokenize_line("allow child to watch @tv", 3)
        assert excinfo.value.line == 3


class TestParser:
    def test_role_declarations(self):
        statements = parse(
            "subject role parent extends family-member\n"
            "object role tv\n"
            "environment role weekday extends any-time\n"
        )
        assert statements[0] == RoleDecl(1, "subject", "parent", "family-member")
        assert statements[1] == RoleDecl(2, "object", "tv", None)
        assert statements[2] == RoleDecl(3, "environment", "weekday", "any-time")

    def test_entity_declarations(self):
        statements = parse(
            "subject alice is child, family-member\nobject tv is television\nobject bare\n"
        )
        assert statements[0] == SubjectDecl(1, "alice", ("child", "family-member"))
        assert statements[1] == ObjectDecl(2, "tv", ("television",))
        assert statements[2] == ObjectDecl(3, "bare", ())

    def test_transaction_declaration(self):
        assert parse("transaction watch")[0] == TransactionDecl(1, "watch")

    def test_full_rule(self):
        (rule,) = parse(
            "priority 3 deny child to watch, record on tv when night "
            "if confidence >= 85%"
        )
        assert rule == RuleDecl(
            1, "deny", "child", ("watch", "record"), "tv", "night", 0.85, 3
        )

    def test_minimal_rule(self):
        (rule,) = parse("allow parent to unlock")
        assert rule.object_role is None
        assert rule.environment_role is None
        assert rule.min_confidence == 0.0
        assert rule.priority == 0

    def test_bare_confidence_number_means_percent(self):
        (rule,) = parse("allow parent to view if confidence >= 90")
        assert rule.min_confidence == pytest.approx(0.9)

    def test_constraint(self):
        (constraint,) = parse(
            "constraint dsd bank between teller and account-holder and auditor limit 2"
        )
        assert constraint == ConstraintDecl(
            1, "dsd", "bank", ("teller", "account-holder", "auditor"), 2
        )

    def test_precedence_and_default(self):
        statements = parse("precedence most-specific\ndefault allow")
        assert statements[0] == PrecedenceDecl(1, "most-specific")
        assert statements[1] == DefaultDecl(2, "allow")

    @pytest.mark.parametrize(
        "bad",
        [
            "allow child watch",  # missing 'to'
            "subject role",  # missing name
            "frobnicate everything",  # unknown statement
            "allow child to watch extra trailing",
            "priority x allow child to watch",
            "constraint ssd x between only-one",
            "allow child to watch if confidence > 90%",
            "default maybe",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(PolicySyntaxError):
            parse(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(PolicySyntaxError) as excinfo:
            parse("subject role ok\nallow child watch\n")
        assert excinfo.value.line == 2


S51_POLICY = """
# Section 5.1, in the policy language
subject role home-user
subject role family-member extends home-user
subject role parent extends family-member
subject role child extends family-member
object role entertainment-devices
environment role weekday-free-time

subject mom is parent
subject alice is child
object livingroom/tv is entertainment-devices

allow child to watch on entertainment-devices when weekday-free-time
"""


class TestCompiler:
    def test_section51_policy_end_to_end(self):
        policy = compile_policy(S51_POLICY)
        engine = MediationEngine(
            policy, StaticEnvironment({"weekday-free-time"})
        )
        assert engine.check("alice", "watch", "livingroom/tv")
        assert not engine.check("mom", "watch", "livingroom/tv")

    def test_declaration_order_does_not_matter(self):
        reordered = "\n".join(reversed(S51_POLICY.strip().splitlines()))
        policy = compile_policy(reordered)
        engine = MediationEngine(
            policy, StaticEnvironment({"weekday-free-time"})
        )
        assert engine.check("alice", "watch", "livingroom/tv")

    def test_undeclared_roles_are_compile_errors(self):
        for source, fragment in [
            ("allow ghost to fly", "subject role 'ghost'"),
            (
                "subject role r\nallow r to fly on ghost-objects",
                "object role 'ghost-objects'",
            ),
            (
                "subject role r\nallow r to fly when ghostly",
                "environment role 'ghostly'",
            ),
            ("subject x is ghost-role", "subject role 'ghost-role'"),
            (
                "object o is ghost-role",
                "object role 'ghost-role'",
            ),
            (
                "constraint ssd c between a and b",
                "subject role",
            ),
        ]:
            with pytest.raises(PolicyCompileError, match="line"):
                compile_policy(source)

    def test_deny_and_priority_compiled(self):
        policy = compile_policy(
            "subject role child\npriority 7 deny child to power_on\n"
        )
        permission = policy.permissions()[0]
        assert permission.sign is Sign.DENY
        assert permission.priority == 7

    def test_confidence_compiled(self):
        policy = compile_policy(
            "subject role parent\nallow parent to view if confidence >= 90%\n"
        )
        assert policy.permissions()[0].min_confidence == pytest.approx(0.9)

    def test_constraints_compiled_and_enforced(self):
        policy = compile_policy(
            "subject role teller\n"
            "subject role account-holder\n"
            "subject pat is teller\n"
            "constraint ssd bank between teller and account-holder\n"
        )
        from repro.exceptions import ConstraintViolationError

        with pytest.raises(ConstraintViolationError):
            policy.assign_subject("pat", "account-holder")

    def test_precedence_and_default_compiled(self):
        policy = compile_policy("precedence allow-overrides\ndefault allow\n")
        assert policy.precedence is PrecedenceStrategy.ALLOW_OVERRIDES
        assert policy.default_sign is Sign.GRANT

    def test_unknown_precedence_rejected(self):
        with pytest.raises(PolicyCompileError):
            compile_policy("precedence coin-flip")

    def test_compile_onto_existing_policy(self, tv_policy):
        compile_policy(
            "allow parent to watch on television when free-time", policy=tv_policy
        )
        engine = MediationEngine(tv_policy, StaticEnvironment({"free-time"}))
        assert engine.check("mom", "watch", "livingroom/tv")

    def test_duplicate_rule_is_compile_error(self):
        with pytest.raises(PolicyCompileError):
            compile_policy(
                "subject role r\nallow r to fly\nallow r to fly\n"
            )

    def test_hierarchy_cycle_is_compile_error(self):
        with pytest.raises(PolicyCompileError):
            compile_policy(
                "subject role a extends b\nsubject role b extends a\n"
            )
