"""Tests for policy analysis: conflicts, shadowing, reachability."""

import pytest

from repro.core import GrbacPolicy, PrecedenceStrategy
from repro.policy.analysis import PolicyAnalyzer


@pytest.fixture
def policy(tv_policy) -> GrbacPolicy:
    return tv_policy


class TestConflicts:
    def test_overlapping_grant_deny_detected(self, policy):
        # Children are granted watch on entertainment; denying watch on
        # television collides for alice on the TV.
        policy.deny("child", "watch", "television")
        analyzer = PolicyAnalyzer(policy)
        conflicts = analyzer.find_conflicts()
        assert len(conflicts) == 1
        conflict = conflicts[0]
        assert "alice" in conflict.witness_subjects
        assert "livingroom/tv" in conflict.witness_objects
        assert "deny wins" in conflict.resolution
        assert "conflict" in conflict.describe()

    def test_disjoint_subject_scopes_no_conflict(self, policy):
        # Denying parents does not collide with the child grant.
        policy.deny("parent", "watch", "television")
        assert PolicyAnalyzer(policy).find_conflicts() == []

    def test_disjoint_object_scopes_no_conflict(self, policy):
        policy.deny("child", "watch", "dangerous")
        assert PolicyAnalyzer(policy).find_conflicts() == []

    def test_different_transactions_no_conflict(self, policy):
        policy.deny("child", "power_on", "television")
        assert PolicyAnalyzer(policy).find_conflicts() == []

    def test_resolution_reflects_strategy(self, policy):
        policy.deny("child", "watch", "television", priority=1)
        policy.precedence = PrecedenceStrategy.ALLOW_OVERRIDES
        assert "grant wins" in PolicyAnalyzer(policy).find_conflicts()[0].resolution
        policy.precedence = PrecedenceStrategy.PRIORITY
        assert "priority" in PolicyAnalyzer(policy).find_conflicts()[0].resolution


class TestShadowing:
    def test_grant_shadowed_by_broader_deny(self, policy):
        # Deny watch to family-member on anything, any environment:
        # the child grant can never win under deny-overrides.
        policy.deny("family-member", "watch")
        shadowed = PolicyAnalyzer(policy).find_shadowed_rules()
        assert len(shadowed) == 1
        victim, cover = shadowed[0]
        assert victim.sign.value == "grant"
        assert cover.subject_role.name == "family-member"

    def test_narrower_deny_does_not_shadow(self, policy):
        # A deny limited to 'television' does NOT cover the whole
        # entertainment-devices grant scope.
        policy.deny("child", "watch", "television")
        assert PolicyAnalyzer(policy).find_shadowed_rules() == []

    def test_no_shadowing_under_priority_strategy(self, policy):
        policy.deny("family-member", "watch")
        policy.precedence = PrecedenceStrategy.PRIORITY
        assert PolicyAnalyzer(policy).find_shadowed_rules() == []

    def test_deny_shadowed_under_allow_overrides(self, policy):
        policy.deny("child", "watch", "entertainment-devices", "free-time")
        policy.precedence = PrecedenceStrategy.ALLOW_OVERRIDES
        shadowed = PolicyAnalyzer(policy).find_shadowed_rules()
        assert len(shadowed) == 1
        assert shadowed[0][0].sign.value == "deny"


class TestReachability:
    def test_rule_for_empty_role_flagged(self, policy):
        policy.add_subject_role("houseguest")  # nobody assigned
        policy.grant("houseguest", "watch", "television")
        unreachable = PolicyAnalyzer(policy).find_unreachable_rules()
        assert len(unreachable) == 1
        assert unreachable[0].subject_role.name == "houseguest"

    def test_rule_for_empty_object_role_flagged(self, policy):
        policy.add_object_role("pool-equipment")  # no objects
        policy.grant("parent", "power_on", "pool-equipment")
        unreachable = PolicyAnalyzer(policy).find_unreachable_rules()
        assert len(unreachable) == 1

    def test_reachable_rules_not_flagged(self, policy):
        assert PolicyAnalyzer(policy).find_unreachable_rules() == []


class TestCoverage:
    def test_counts(self, policy):
        coverage = PolicyAnalyzer(policy).coverage()
        # 4 subjects x 1 transaction x 2 objects = 8 triples; the one
        # rule covers (alice|bobby) x watch x tv = 2.
        assert coverage["total"] == 8
        assert coverage["covered"] == 2
        assert coverage["uncovered"] == 6

    def test_any_object_rule_widens_coverage(self, policy):
        policy.grant("family-member", "watch")
        coverage = PolicyAnalyzer(policy).coverage()
        assert coverage["covered"] == 8


class TestLint:
    def test_lint_aggregates_findings(self, policy):
        policy.deny("child", "watch", "television")  # conflict
        policy.add_subject_role("houseguest")
        policy.grant("houseguest", "watch", "television")  # unreachable
        findings = PolicyAnalyzer(policy).lint()
        categories = {finding.category for finding in findings}
        assert "conflict" in categories
        assert "unreachable" in categories
        assert all(finding.describe() for finding in findings)

    def test_clean_policy_lints_clean(self, policy):
        assert PolicyAnalyzer(policy).lint() == []
