"""Tests for the fluent policy builder."""

import pytest

from repro.core import (
    MediationEngine,
    PrecedenceStrategy,
    Sign,
    StaticEnvironment,
)
from repro.exceptions import ConstraintViolationError
from repro.policy.builder import PolicyBuilder


class TestBuilder:
    def test_full_household_policy(self):
        policy = (
            PolicyBuilder("home")
            .subject_role("family-member")
            .subject_role("parent", extends="family-member")
            .subject_role("child", extends="family-member")
            .subject("alice", roles=["child"], age=11)
            .subject("mom", roles=["parent"])
            .object_role("entertainment-devices")
            .object_role("television", extends="entertainment-devices")
            .object("livingroom/tv", roles=["television"])
            .environment_role("free-time")
            .allow("child", "watch", on="entertainment-devices", when="free-time")
            .build()
        )
        engine = MediationEngine(policy, StaticEnvironment({"free-time"}))
        assert engine.check("alice", "watch", "livingroom/tv")
        assert not engine.check("mom", "watch", "livingroom/tv")

    def test_multiple_transactions_per_rule(self):
        policy = (
            PolicyBuilder()
            .subject_role("parent")
            .allow("parent", "power_on", "power_off", "watch")
            .build()
        )
        assert len(policy.permissions()) == 3

    def test_deny_rule(self):
        policy = (
            PolicyBuilder()
            .subject_role("child")
            .object_role("dangerous")
            .deny("child", "power_on", on="dangerous", name="no-danger")
            .build()
        )
        permission = policy.permissions()[0]
        assert permission.sign is Sign.DENY
        assert permission.name == "no-danger"

    def test_confidence_and_priority_forwarded(self):
        policy = (
            PolicyBuilder()
            .subject_role("parent")
            .allow("parent", "view", min_confidence=0.9, priority=4)
            .build()
        )
        permission = policy.permissions()[0]
        assert permission.min_confidence == 0.9
        assert permission.priority == 4

    def test_extends_auto_registers_parent(self):
        policy = PolicyBuilder().subject_role("parent", extends="adult").build()
        assert "adult" in policy.subject_roles
        assert policy.subject_roles.is_specialization_of("parent", "adult")

    def test_environment_role_hierarchy(self):
        policy = (
            PolicyBuilder()
            .environment_role("weekday-morning", extends="weekday")
            .build()
        )
        assert policy.environment_roles.is_specialization_of(
            "weekday-morning", "weekday"
        )

    def test_constraints_wired(self):
        builder = (
            PolicyBuilder()
            .subject_role("teller")
            .subject_role("account-holder")
            .subject_role("admin")
            .subject_role("employee")
            .static_sod("bank", ["teller", "account-holder"])
            .dynamic_sod("ops", ["admin", "teller"])
            .cardinality("one-admin", "admin", 1)
            .prerequisite("admin-emp", "admin", "employee")
        )
        policy = builder.subject("pat", roles=["teller"]).build()
        with pytest.raises(ConstraintViolationError):
            policy.assign_subject("pat", "account-holder")
        assert len(policy.constraints) == 4

    def test_precedence_and_default(self):
        policy = (
            PolicyBuilder()
            .precedence(PrecedenceStrategy.ALLOW_OVERRIDES)
            .default_allow()
            .build()
        )
        assert policy.precedence is PrecedenceStrategy.ALLOW_OVERRIDES
        assert policy.default_sign is Sign.GRANT
        assert PolicyBuilder().default_deny().build().default_sign is Sign.DENY

    def test_transaction_registration(self):
        policy = PolicyBuilder().transaction("reboot").build()
        assert policy.transaction("reboot")
