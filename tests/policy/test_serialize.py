"""Tests for policy serialization (JSON round-tripping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CardinalityConstraint,
    MediationEngine,
    PrecedenceStrategy,
    PrerequisiteConstraint,
    SeparationOfDuty,
    Sign,
)
from repro.exceptions import PolicyError
from repro.policy.serialize import (
    SCHEMA_VERSION,
    from_dict,
    from_json,
    to_dict,
    to_json,
)
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)


class TestRoundTrip:
    def test_tv_policy_round_trips(self, tv_policy):
        restored = from_dict(to_dict(tv_policy))
        assert restored.stats() == tv_policy.stats()
        assert restored.precedence is tv_policy.precedence
        assert restored.default_sign is tv_policy.default_sign
        engine_a = MediationEngine(tv_policy)
        engine_b = MediationEngine(restored)
        for subject in ("mom", "alice"):
            for env in (set(), {"free-time"}):
                from repro.core import AccessRequest

                request = AccessRequest(
                    transaction="watch", obj="livingroom/tv", subject=subject
                )
                assert (
                    engine_a.decide(request, environment_roles=env).granted
                    == engine_b.decide(request, environment_roles=env).granted
                )

    def test_json_round_trip(self, tv_policy):
        restored = from_json(to_json(tv_policy))
        assert restored.stats() == tv_policy.stats()

    def test_attributes_preserved(self, empty_policy):
        empty_policy.add_subject("alice", age=11, weight_lb=94.0)
        empty_policy.add_object("tv", rating="G")
        restored = from_dict(to_dict(empty_policy))
        assert restored.subject("alice").attribute("age") == 11
        assert restored.object("tv").attribute("rating") == "G"

    def test_permission_fields_preserved(self, empty_policy):
        empty_policy.add_subject_role("parent")
        empty_policy.grant(
            "parent", "view", min_confidence=0.9, priority=3, name="cam"
        )
        empty_policy.deny("parent", "misuse")
        restored = from_dict(to_dict(empty_policy))
        grant = restored.permissions()[0]
        assert grant.min_confidence == 0.9
        assert grant.priority == 3
        assert grant.name == "cam"
        assert restored.permissions()[1].sign is Sign.DENY

    def test_constraints_preserved(self, empty_policy):
        policy = empty_policy
        for role in ("teller", "holder", "admin", "employee"):
            policy.add_subject_role(role)
        policy.add_constraint(SeparationOfDuty("ssd", ["teller", "holder"]))
        policy.add_constraint(
            SeparationOfDuty("dsd", ["admin", "teller"], static=False)
        )
        policy.add_constraint(CardinalityConstraint("card", "admin", 2))
        policy.add_constraint(PrerequisiteConstraint("pre", "admin", "employee"))
        restored = from_dict(to_dict(policy))
        assert len(restored.constraints) == 4
        assert restored.constraints.static_sod[0].name == "ssd"
        assert restored.constraints.dynamic_sod[0].static is False
        assert restored.constraints.cardinality[0].max_members == 2
        assert restored.constraints.prerequisite[0].required == "employee"

    def test_prerequisite_replay_safe_regardless_of_order(self, empty_policy):
        # The subject got 'admin' legitimately; round-tripping must not
        # re-reject it because assignments replay in sorted order.
        policy = empty_policy
        policy.add_subject("mom")
        policy.add_subject_role("admin")
        policy.add_subject_role("member")
        policy.assign_subject("mom", "member")
        policy.add_constraint(PrerequisiteConstraint("pre", "admin", "member"))
        policy.assign_subject("mom", "admin")
        restored = from_dict(to_dict(policy))
        assert restored.authorized_subject_role_names("mom") == {"admin", "member"}

    def test_hierarchies_and_transactions_preserved(self, figure2_policy):
        figure2_policy.add_transaction("composite")
        restored = from_dict(to_dict(figure2_policy))
        assert restored.subject_roles.is_specialization_of("child", "home-user")
        assert restored.transaction("composite")

    def test_precedence_and_default_preserved(self, empty_policy):
        empty_policy.precedence = PrecedenceStrategy.PRIORITY
        empty_policy.default_sign = Sign.GRANT
        restored = from_dict(to_dict(empty_policy))
        assert restored.precedence is PrecedenceStrategy.PRIORITY
        assert restored.default_sign is Sign.GRANT


class TestValidation:
    def test_unknown_schema_rejected(self, tv_policy):
        document = to_dict(tv_policy)
        document["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(PolicyError, match="schema"):
            from_dict(document)

    def test_missing_key_rejected(self, tv_policy):
        document = to_dict(tv_policy)
        del document["permissions"]
        with pytest.raises(PolicyError, match="malformed"):
            from_dict(document)

    def test_unknown_constraint_type_rejected(self, tv_policy):
        document = to_dict(tv_policy)
        document["constraints"] = [{"type": "quantum"}]
        with pytest.raises(PolicyError, match="unknown constraint"):
            from_dict(document)

    def test_document_is_json_safe(self, tv_policy):
        import json

        json.loads(json.dumps(to_dict(tv_policy)))


class TestRoundTripProperty:
    @given(
        seed=st.integers(0, 5_000),
        request_seed=st.integers(0, 5_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_policies_decide_identically_after_round_trip(
        self, seed, request_seed
    ):
        policy = generate_policy(RandomPolicyConfig(seed=seed, permissions=30))
        restored = from_json(to_json(policy))
        engine_a = MediationEngine(policy)
        engine_b = MediationEngine(restored)
        for generated in generate_requests(policy, 15, seed=request_seed):
            env = set(generated.active_environment_roles)
            assert (
                engine_a.decide(generated.request, environment_roles=env).granted
                == engine_b.decide(generated.request, environment_roles=env).granted
            )
