"""The policy administration plane: parse, lint, diff, swap, audit."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import AccessRequest, GrbacPolicy, MediationEngine
from repro.exceptions import ServiceError
from repro.policy import to_json
from repro.policy.admin import (
    PolicyAdministrator,
    PolicyFileWatcher,
    ReloadAudit,
    load_policy_text,
)
from repro.service import PDPConfig, PolicyDecisionPoint

DSL = """
subject role parent
subject role child
subject alice is child
object role entertainment
object tv is entertainment
environment role free-time
allow child to watch on entertainment when free-time
"""

DSL_WITH_BOBBY = DSL + "subject bobby is child\n"


def make_pdp(policy, **config) -> PolicyDecisionPoint:
    return PolicyDecisionPoint(MediationEngine(policy), PDPConfig(**config))


def run(coroutine):
    return asyncio.run(coroutine)


# ----------------------------------------------------------------------
# Candidate loading
# ----------------------------------------------------------------------
def test_load_policy_text_accepts_dsl_and_json() -> None:
    from_dsl = load_policy_text(DSL, name="dsl")
    from_doc = load_policy_text(to_json(from_dsl))
    assert from_doc.decision_revision == from_dsl.decision_revision
    assert "alice" in {subject.name for subject in from_doc.subjects()}


# ----------------------------------------------------------------------
# The reload pipeline
# ----------------------------------------------------------------------
def test_accepted_reload_swaps_and_audits(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)

    async def scenario():
        async with pdp:
            result = admin.reload(DSL_WITH_BOBBY, actor="ops")
            response = await pdp.submit(
                AccessRequest("watch", "tv", subject="bobby"),
                environment_roles={"free-time"},
            )
        return result, response

    result, response = run(scenario())
    assert result.accepted is True
    assert response.granted is True
    record = result.record
    assert record.actor == "ops"
    assert record.action == "reload"
    assert record.generation == 1
    assert record.old_revision == tv_policy.decision_revision
    assert "+ tv" in record.diff_summary  # the candidate's new object
    assert record.error == ""
    assert admin.audit.stats()["accepted"] == 1


def test_parse_failure_is_audited_and_leaves_policy_serving(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            before = await pdp.submit(request, environment_roles={"free-time"})
            result = admin.reload("grant gibberish ???", actor="ops")
            after = await pdp.submit(request, environment_roles={"free-time"})
        return before, result, after

    before, result, after = run(scenario())
    assert result.accepted is False
    assert "parse error" in result.error
    assert before.granted is after.granted is True
    # The old policy kept serving: same engine, generation untouched.
    assert pdp.policy is tv_policy
    assert pdp.generation == 0
    record = admin.audit.last
    assert record is not None and record.error == result.error
    assert admin.audit.stats()["rejected"] == 1


def test_malformed_json_candidate_is_rejected_not_raised(tv_policy) -> None:
    admin = PolicyAdministrator(make_pdp(tv_policy))
    result = admin.reload('{"schema": "nope', actor="ops")
    assert result.accepted is False
    assert "parse error" in result.error


def test_dry_run_validates_without_swapping(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)
    result = admin.validate(DSL_WITH_BOBBY, actor="ops")
    assert result.accepted is False
    assert result.dry_run is True
    assert result.error == ""
    assert result.record.action == "validate"
    assert "+ tv" in result.record.diff_summary
    assert pdp.policy is tv_policy
    assert pdp.generation == 0


def test_fail_on_warning_blocks_linted_candidate(tv_policy) -> None:
    # A grant/deny conflict lints as a warning; the strict gate
    # refuses it while the default gate lets it through (audited).
    conflicted = (
        DSL + "deny child to watch on entertainment when free-time\n"
    )
    strict = PolicyAdministrator(make_pdp(tv_policy), fail_on="warning")
    result = strict.reload(conflicted, actor="ops")
    assert result.accepted is False
    assert "validation failed" in result.error
    assert result.record.findings  # the findings made it to the audit

    lenient = PolicyAdministrator(make_pdp(tv_policy))
    assert lenient.reload(conflicted, actor="ops").accepted is True


def test_fail_on_rejects_unknown_severity(tv_policy) -> None:
    with pytest.raises(ServiceError):
        PolicyAdministrator(make_pdp(tv_policy), fail_on="fatal")


def test_reload_metrics_count_outcomes(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)
    admin.reload(DSL, actor="ops")
    admin.reload("not a policy {{{", actor="ops")
    admin.validate(DSL, actor="ops")
    registry = pdp.metrics
    assert registry.counter("admin.reloads_accepted").value == 1
    assert registry.counter("admin.reloads_rejected").value == 1
    assert registry.counter("admin.reloads_dry_run").value == 1
    assert registry.counter("pdp.reloads").value == 1


def test_audit_ring_is_bounded() -> None:
    audit = ReloadAudit(capacity=2)
    for index in range(5):
        audit.append(
            actor="a",
            action="validate",
            accepted=False,
            dry_run=True,
            policy_name=f"p{index}",
            old_revision=0,
            new_revision=0,
            generation=None,
            findings=(),
            diff_summary="",
            error="",
            duration_s=0.0,
        )
    assert len(audit) == 2
    assert audit.records()[-1].sequence == 5
    assert audit.stats()["attempts"] == 5


# ----------------------------------------------------------------------
# File watching
# ----------------------------------------------------------------------
def test_watcher_reloads_on_mtime_change(tv_policy, tmp_path) -> None:
    path = tmp_path / "policy.grbac"
    path.write_text(DSL)
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)
    watcher = PolicyFileWatcher(str(path), admin, actor="test-watch")

    # Unchanged file: nothing happens (the boot content is baseline).
    assert watcher.poll_once() is None

    import os

    path.write_text(DSL_WITH_BOBBY)
    # Force an mtime step even on coarse-granularity filesystems.
    stamp = path.stat()
    os.utime(path, ns=(stamp.st_atime_ns, stamp.st_mtime_ns + 1_000_000))
    result = watcher.poll_once()
    assert result is not None and result.accepted is True
    assert result.record.actor == "test-watch"
    assert pdp.generation == 1
    # And idempotent until the next change.
    assert watcher.poll_once() is None


def test_watcher_bad_edit_keeps_serving_and_does_not_retry(
    tv_policy, tmp_path
) -> None:
    import os

    path = tmp_path / "policy.grbac"
    path.write_text(DSL)
    pdp = make_pdp(tv_policy)
    admin = PolicyAdministrator(pdp)
    watcher = PolicyFileWatcher(str(path), admin)

    path.write_text("broken ???")
    stamp = path.stat()
    os.utime(path, ns=(stamp.st_atime_ns, stamp.st_mtime_ns + 1_000_000))
    result = watcher.poll_once()
    assert result is not None and result.accepted is False
    assert pdp.policy is tv_policy
    # Same content, same mtime: not retried every poll.
    assert watcher.poll_once() is None
    assert admin.audit.stats()["rejected"] == 1
