"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

POLICY_TEXT = """
subject role child
subject role parent
object role entertainment
environment role free-time
subject alice is child
subject mom is parent
object tv is entertainment
allow child to watch on entertainment when free-time
allow parent to watch on entertainment
"""


@pytest.fixture
def policy_file(tmp_path):
    path = tmp_path / "home.grbac"
    path.write_text(POLICY_TEXT)
    return str(path)


class TestShow:
    def test_show_prints_rules_and_stats(self, policy_file, capsys):
        assert main(["show", policy_file]) == 0
        out = capsys.readouterr().out
        assert "permissions" in out
        assert "grant watch to child" in out
        assert "deny-overrides" in out

    def test_missing_file(self, capsys):
        assert main(["show", "/nonexistent.grbac"]) == 2
        assert "error" in capsys.readouterr().err


class TestLint:
    def test_clean_policy(self, policy_file, capsys):
        assert main(["lint", policy_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_printed(self, tmp_path, capsys):
        path = tmp_path / "conflicted.grbac"
        path.write_text(
            POLICY_TEXT + "deny child to watch on entertainment\n"
        )
        assert main(["lint", str(path)]) == 0  # warnings, not errors
        out = capsys.readouterr().out
        assert "conflict" in out

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "broken.grbac"
        path.write_text("allow child watch\n")
        assert main(["lint", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestCheck:
    def test_grant_exit_zero(self, policy_file, capsys):
        code = main(
            ["check", policy_file, "alice", "watch", "tv", "--env", "free-time"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "GRANT"

    def test_deny_exit_one(self, policy_file, capsys):
        code = main(["check", policy_file, "alice", "watch", "tv"])
        assert code == 1
        assert capsys.readouterr().out.strip() == "DENY"

    def test_explain(self, policy_file, capsys):
        main(
            [
                "check",
                policy_file,
                "alice",
                "watch",
                "tv",
                "--env",
                "free-time",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert "rationale" in out
        assert "GRANT" in out

    def test_confidence_and_threshold(self, policy_file, capsys):
        code = main(
            [
                "check",
                policy_file,
                "mom",
                "watch",
                "tv",
                "--confidence",
                "0.7",
                "--threshold",
                "0.9",
            ]
        )
        assert code == 1  # 0.7 < 0.9

    def test_unknown_entity_is_error(self, policy_file, capsys):
        assert main(["check", policy_file, "ghost", "watch", "tv"]) == 2

    def test_diagnose_lists_candidate_rules(self, policy_file, capsys):
        main(["check", policy_file, "alice", "watch", "tv", "--diagnose"])
        out = capsys.readouterr().out
        assert "candidate rules:" in out
        assert "missed" in out
        assert "'free-time' not active" in out

    def test_stats_renders_metrics_registry(self, policy_file, capsys):
        main(
            [
                "check",
                policy_file,
                "alice",
                "watch",
                "tv",
                "--env",
                "free-time",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert "engine stats:" in out
        assert "counters:" in out
        assert "engine.decisions" in out


class TestTrace:
    def test_trace_subcommand_prints_pipeline_spans(self, policy_file, capsys):
        code = main(
            ["trace", policy_file, "alice", "watch", "tv", "--env", "free-time"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decision: GRANT" in out
        assert "pipeline (compiled strategy):" in out
        assert "resolve-subject-roles" in out
        assert "emit-decision" in out

    def test_check_trace_flag_matches_trace_alias(self, policy_file, capsys):
        code = main(
            [
                "check",
                policy_file,
                "alice",
                "watch",
                "tv",
                "--env",
                "free-time",
                "--trace",
            ]
        )
        assert code == 0
        flagged = capsys.readouterr().out
        main(["trace", policy_file, "alice", "watch", "tv", "--env", "free-time"])
        aliased = capsys.readouterr().out
        # Identical shape apart from the measured stage timings.
        assert "pipeline (compiled strategy):" in flagged
        assert flagged.splitlines()[0] == aliased.splitlines()[0]

    def test_trace_denial_keeps_exit_code(self, policy_file, capsys):
        code = main(["trace", policy_file, "alice", "watch", "tv"])
        assert code == 1
        out = capsys.readouterr().out
        assert "decision: DENY" in out
        assert "apply-constraints" in out

    def test_trace_with_stats_shows_stage_histograms(self, policy_file, capsys):
        main(
            [
                "trace",
                policy_file,
                "alice",
                "watch",
                "tv",
                "--env",
                "free-time",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert "latency histograms (us):" in out
        assert "pipeline.total" in out


class TestExport:
    def test_export_stdout_is_valid_json(self, policy_file, capsys):
        assert main(["export", policy_file]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == 1
        assert len(document["permissions"]) == 2

    def test_export_to_file_round_trips(self, policy_file, tmp_path, capsys):
        output = tmp_path / "policy.json"
        assert main(["export", policy_file, "-o", str(output)]) == 0
        from repro.policy.serialize import from_json

        restored = from_json(output.read_text())
        assert restored.stats()["permissions"] == 2


class TestExportDsl:
    def test_export_dsl_round_trips(self, policy_file, capsys):
        assert main(["export", policy_file, "--format", "dsl"]) == 0
        text = capsys.readouterr().out
        assert "allow child to watch on entertainment when free-time" in text
        from repro.policy.dsl import compile_policy

        restored = compile_policy(text)
        assert restored.stats()["permissions"] == 2


class TestDemo:
    @pytest.mark.parametrize(
        "scenario", ["s51", "s52", "repairman", "negative-rights"]
    )
    def test_demos_run(self, scenario, capsys):
        assert main(["demo", scenario]) == 0
        out = capsys.readouterr().out
        assert "GRANT" in out or "DENY" in out
