"""Tests for the canned policy templates."""


from repro.core import GrbacPolicy
from repro.policy.templates import (
    FIGURE2_ASSIGNMENTS,
    install_figure2_household,
    install_figure2_roles,
    install_standard_object_roles,
    section51_rule,
)


class TestFigure2Roles:
    def test_hierarchy_shape(self):
        policy = GrbacPolicy()
        install_figure2_roles(policy)
        hierarchy = policy.subject_roles
        assert hierarchy.is_specialization_of("parent", "home-user")
        assert hierarchy.is_specialization_of("child", "family-member")
        assert hierarchy.is_specialization_of("service-agent", "authorized-guest")
        assert not hierarchy.is_specialization_of("service-agent", "family-member")
        assert len(hierarchy) == 6

    def test_household_assignments(self):
        policy = GrbacPolicy()
        assignments = install_figure2_household(policy)
        assert assignments == FIGURE2_ASSIGNMENTS
        assert policy.subjects_in_role("parent") == {"mom", "dad"}
        assert policy.subjects_in_role("child") == {"alice", "bobby"}
        # The repair tech reaches home-user through authorized-guest.
        assert "dishwasher-repair-tech" in policy.subjects_in_role("home-user")


class TestObjectRolesAndRule:
    def test_standard_object_roles(self):
        policy = GrbacPolicy()
        install_standard_object_roles(policy)
        assert policy.object_roles.is_specialization_of(
            "television", "entertainment-devices"
        )
        assert "dangerous-appliances" in policy.object_roles

    def test_section51_rule_installs_two_grants(self):
        policy = GrbacPolicy()
        install_figure2_roles(policy)
        install_standard_object_roles(policy)
        policy.add_environment_role("weekday-free-time")
        section51_rule(policy)
        transactions = {p.transaction.name for p in policy.permissions()}
        assert transactions == {"watch", "power_on"}
        for permission in policy.permissions():
            assert permission.subject_role.name == "child"
            assert permission.environment_role.name == "weekday-free-time"
