"""Keep the documentation's policy examples compiling.

Docs that drift from the implementation are worse than no docs; these
tests extract the code blocks from ``docs/POLICY_LANGUAGE.md`` and the
README quickstart policy and compile them.
"""

import os
import re


from repro import compile_policy

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


def read(path: str) -> str:
    with open(os.path.join(REPO_ROOT, path), "r", encoding="utf-8") as handle:
        return handle.read()


class TestPolicyLanguageDoc:
    def test_household_example_compiles(self):
        text = read("docs/POLICY_LANGUAGE.md")
        blocks = re.findall(r"```\n(.*?)```", text, re.S)
        household = [b for b in blocks if "subject role home-user" in b]
        assert household, "the doc lost its complete-household example"
        policy = compile_policy(household[0])
        assert policy.stats()["permissions"] >= 5
        assert "child" in policy.subject_roles

    def test_documented_strategies_exist(self):
        from repro.core import PrecedenceStrategy

        text = read("docs/POLICY_LANGUAGE.md")
        for strategy in PrecedenceStrategy:
            assert strategy.value in text


class TestReadmeExamples:
    def test_readme_dsl_block_compiles(self):
        text = read("README.md")
        blocks = re.findall(r'compile_policy\("""\n(.*?)"""\)', text, re.S)
        assert blocks, "the README lost its DSL example"
        policy = compile_policy(blocks[0])
        assert policy.stats()["permissions"] == 1

    def test_readme_names_real_example_files(self):
        text = read("README.md")
        for match in re.findall(r"`examples/([a-z_]+\.py)`", text):
            assert os.path.exists(
                os.path.join(REPO_ROOT, "examples", match)
            ), match
