"""Property: the served path is indistinguishable from direct mediation.

Hypothesis drives random interleavings of decision requests, policy
mutations, and environment transitions through a live PDP.  After
every step, each answer — whether it came from the revision-keyed
cache, a micro-batch, or a concurrent gather — must equal what a
fresh, direct :class:`MediationEngine` says for the same request at
the same policy and environment state.  A cached stale grant (or
deny) falsifies the property immediately.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessRequest,
    GrbacPolicy,
    MediationEngine,
    StaticEnvironment,
)
from repro.exceptions import GrbacError
from repro.service import MEDIATED_OUTCOMES, PDPConfig, PolicyDecisionPoint

SUBJECT_ROLES = ["parent", "child"]
SUBJECTS = {"mom": "parent", "alice": "child", "bobby": "child"}
OBJECT_ROLES = ["entertainment", "dangerous"]
OBJECTS = {"tv": "entertainment", "stereo": "entertainment", "oven": "dangerous"}
ENV_ROLES = ["free-time", "weekday", "weekend"]
TRANSACTIONS = ["watch", "power_on"]


def build_policy() -> GrbacPolicy:
    policy = GrbacPolicy("prop")
    for role in SUBJECT_ROLES:
        policy.add_subject_role(role)
    for role in OBJECT_ROLES:
        policy.add_object_role(role)
    for role in ENV_ROLES:
        policy.add_environment_role(role)
    for subject, role in SUBJECTS.items():
        policy.add_subject(subject)
        policy.assign_subject(subject, role)
    for obj, role in OBJECTS.items():
        policy.add_object(obj)
        policy.assign_object(obj, role)
    policy.grant("child", "watch", "entertainment", "free-time")
    policy.deny("child", "power_on", "dangerous")
    return policy


request_ops = st.tuples(
    st.just("request"),
    st.sampled_from(sorted(SUBJECTS)),
    st.sampled_from(TRANSACTIONS),
    st.sampled_from(sorted(OBJECTS)),
    st.one_of(
        st.none(),  # resolve through the environment source
        st.frozensets(st.sampled_from(ENV_ROLES), max_size=2),
    ),
)

rule_ops = st.tuples(
    st.sampled_from(["grant", "deny"]),
    st.sampled_from(SUBJECT_ROLES),
    st.sampled_from(TRANSACTIONS),
    st.sampled_from(OBJECT_ROLES),
    st.sampled_from(ENV_ROLES + ["any-environment"]),
)

env_ops = st.tuples(
    st.just("env"),
    st.sampled_from(ENV_ROLES),
    st.booleans(),
)

ops = st.lists(
    st.one_of(request_ops, rule_ops, env_ops), min_size=1, max_size=14
)


@settings(max_examples=40, deadline=None)
@given(ops=ops)
def test_pdp_always_agrees_with_direct_mediation(ops) -> None:
    policy = build_policy()
    environment = StaticEnvironment({"free-time"})
    # Manual revision reader for the opaque StaticEnvironment; every
    # env op bumps it (over-bumping costs hits, never correctness).
    revision = {"n": 0}
    engine = MediationEngine(policy, environment)
    pdp = PolicyDecisionPoint(
        engine,
        PDPConfig(max_batch=8, max_wait_ms=0.2, cache_size=64),
        env_revision=lambda: revision["n"],
    )

    async def scenario():
        async with pdp:
            for op in ops:
                kind = op[0]
                if kind == "request":
                    _, subject, transaction, obj, env = op
                    request = AccessRequest(transaction, obj, subject=subject)
                    env_set = set(env) if env is not None else None
                    # Three concurrent copies: exercises batching and
                    # the cache on the 2nd/3rd at the same revision.
                    responses = await asyncio.gather(
                        *(
                            pdp.submit(request, environment_roles=env_set)
                            for _ in range(3)
                        )
                    )
                    resolved = (
                        set(env)
                        if env is not None
                        else environment.active_environment_roles()
                    )
                    expected = (
                        MediationEngine(policy)
                        .decide(request, environment_roles=resolved)
                        .granted
                    )
                    for response in responses:
                        assert response.outcome in MEDIATED_OUTCOMES
                        assert response.granted == expected, (
                            f"{'cached ' if response.cached else ''}answer "
                            f"diverged from direct mediation for {op!r}"
                        )
                elif kind in ("grant", "deny"):
                    _, srole, transaction, orole, erole = op
                    try:
                        if kind == "grant":
                            policy.grant(srole, transaction, orole, erole)
                        else:
                            policy.deny(srole, transaction, orole, erole)
                    except GrbacError:
                        pass  # duplicate rule: no revision change needed
                else:
                    _, role, active = op
                    if active:
                        environment.activate(role)
                    else:
                        environment.deactivate(role)
                    revision["n"] += 1

    asyncio.run(scenario())


@settings(max_examples=20, deadline=None)
@given(
    env=st.frozensets(st.sampled_from(ENV_ROLES), max_size=3),
    repeats=st.integers(min_value=2, max_value=5),
)
def test_cache_hits_repeat_the_first_answer_verbatim(env, repeats) -> None:
    policy = build_policy()
    pdp = PolicyDecisionPoint(MediationEngine(policy))
    request = AccessRequest("watch", "tv", subject="alice")

    async def scenario():
        async with pdp:
            return [
                await pdp.submit(request, environment_roles=set(env))
                for _ in range(repeats)
            ]

    responses = asyncio.run(scenario())
    first = responses[0]
    assert not first.cached
    for later in responses[1:]:
        assert later.cached
        assert later.granted == first.granted
        assert later.decision is first.decision  # the very same object
