"""The PDP must agree with the engine — batched, cached, concurrent.

The service layer is pure plumbing: whatever path an answer takes
(cache hit, micro-batch, drain flush), ``granted`` must equal what a
direct :meth:`MediationEngine.decide` call returns at the same policy
and environment revision.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import AccessRequest, MediationEngine, StaticEnvironment
from repro.exceptions import ServiceError
from repro.service import PDPClient, PDPConfig, PDPOutcome, PolicyDecisionPoint
from repro.workload.generator import generate_requests


def run(coroutine):
    return asyncio.run(coroutine)


def make_pdp(policy, env=None, **config) -> PolicyDecisionPoint:
    engine = MediationEngine(policy, env)
    return PolicyDecisionPoint(engine, PDPConfig(**config))


# ----------------------------------------------------------------------
# Equivalence with direct mediation
# ----------------------------------------------------------------------
def test_single_request_matches_engine(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    reference = MediationEngine(tv_policy)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            granted = (
                await pdp.submit(request, environment_roles={"free-time"})
            ).granted
            denied = (await pdp.submit(request, environment_roles=set())).granted
            return granted, denied

    granted, denied = run(scenario())
    assert granted is reference.decide(
        request, environment_roles={"free-time"}
    ).granted
    assert granted is True
    assert denied is False


def test_generated_workload_matches_engine(tv_policy) -> None:
    stream = generate_requests(tv_policy, 120, seed=7)
    reference = MediationEngine(tv_policy)
    expected = [
        reference.decide(
            item.request,
            environment_roles=set(item.active_environment_roles),
        ).granted
        for item in stream
    ]
    pdp = make_pdp(tv_policy, max_batch=16, max_wait_ms=0.5)

    async def scenario():
        async with pdp:
            responses = await asyncio.gather(
                *(
                    pdp.submit(
                        item.request,
                        environment_roles=set(item.active_environment_roles),
                    )
                    for item in stream
                )
            )
        return [r.granted for r in responses]

    assert run(scenario()) == expected


def test_concurrent_submits_coalesce_into_batches(tv_policy) -> None:
    # Cache off so every request reaches the batcher; all 32 submits
    # enqueue before the consumer task gets scheduled, so they must be
    # rendered in a single decide_batch call.
    pdp = make_pdp(tv_policy, max_batch=64, cache_size=0)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            return await asyncio.gather(
                *(
                    pdp.submit(request, environment_roles={"free-time"})
                    for _ in range(32)
                )
            )

    responses = run(scenario())
    assert all(r.granted for r in responses)
    assert all(r.batch_size == 32 for r in responses)
    assert pdp.stats()["batches"] == 1


def test_sequential_submits_are_singleton_batches(tv_policy) -> None:
    pdp = make_pdp(tv_policy, cache_size=0, max_wait_ms=0.0)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            first = await pdp.submit(request, environment_roles={"free-time"})
            second = await pdp.submit(request, environment_roles={"free-time"})
            return first, second

    first, second = run(scenario())
    assert first.batch_size == 1
    assert second.batch_size == 1
    assert not first.cached and not second.cached


# ----------------------------------------------------------------------
# Revision-keyed caching
# ----------------------------------------------------------------------
def test_repeat_request_is_served_from_cache(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            first = await pdp.submit(request, environment_roles={"free-time"})
            second = await pdp.submit(request, environment_roles={"free-time"})
            return first, second

    first, second = run(scenario())
    assert not first.cached
    assert second.cached
    assert second.granted is first.granted is True
    assert second.batch_size == 0  # never touched the queue


def test_policy_mutation_invalidates_cache(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")
    env = {"free-time"}

    async def scenario():
        async with pdp:
            before = await pdp.submit(request, environment_roles=env)
            warmed = await pdp.submit(request, environment_roles=env)
            # Countermand the §5.1 grant; decision_revision moves.
            tv_policy.deny("child", "watch", "entertainment-devices")
            after = await pdp.submit(request, environment_roles=env)
            return before, warmed, after

    before, warmed, after = run(scenario())
    assert before.granted and warmed.cached
    assert after.granted is False
    assert not after.cached  # stale grant was never served


def test_env_revision_bump_invalidates_cache(tv_policy) -> None:
    # Source-resolved requests are keyed on the env_revision reader.
    env = StaticEnvironment({"free-time"})
    revision = {"n": 0}
    engine = MediationEngine(tv_policy, env)
    pdp = PolicyDecisionPoint(engine, env_revision=lambda: revision["n"])
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            before = await pdp.submit(request)
            warmed = await pdp.submit(request)
            env.deactivate("free-time")
            revision["n"] += 1
            after = await pdp.submit(request)
            return before, warmed, after

    before, warmed, after = run(scenario())
    assert before.granted is True and warmed.cached
    assert after.granted is False and not after.cached


def test_opaque_environment_source_is_never_cached(tv_policy) -> None:
    # StaticEnvironment has no .revision: requests resolving through it
    # must not be cached (no way to observe staleness) — but explicit
    # per-request overrides still are.
    engine = MediationEngine(tv_policy, StaticEnvironment({"free-time"}))
    pdp = PolicyDecisionPoint(engine)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            through_source = [await pdp.submit(request) for _ in range(2)]
            overridden = [
                await pdp.submit(request, environment_roles={"free-time"})
                for _ in range(2)
            ]
            return through_source, overridden

    through_source, overridden = run(scenario())
    assert not any(r.cached for r in through_source)
    assert overridden[0].cached is False and overridden[1].cached is True


def test_runtime_revision_keys_the_cache_across_clock_changes(
    empty_policy,
) -> None:
    from datetime import datetime

    from repro.env.runtime import EnvironmentRuntime
    from repro.env.temporal import time_window

    policy = empty_policy
    runtime = EnvironmentRuntime(start=datetime(2000, 1, 17, 10, 0))
    policy.add_subject_role("child")
    policy.add_object_role("tv")
    policy.add_subject("alice")
    policy.assign_subject("alice", "child")
    policy.add_object("den/tv")
    policy.assign_object("den/tv", "tv")
    runtime.define_time_role(
        policy, "free-time", time_window("15:00", "20:00")
    )
    policy.grant("child", "watch", "tv", "free-time")
    engine = MediationEngine(policy, runtime.activator)
    pdp = PolicyDecisionPoint(engine, env_revision=runtime)
    request = AccessRequest("watch", "den/tv", subject="alice")

    async def scenario():
        async with pdp:
            morning = await pdp.submit(request)
            runtime.clock.advance(hours=6)  # 16:00, free time
            afternoon = await pdp.submit(request)
            warmed = await pdp.submit(request)
            runtime.clock.advance(hours=9)  # 01:00 next day
            night = await pdp.submit(request)
            return morning, afternoon, warmed, night

    morning, afternoon, warmed, night = run(scenario())
    assert morning.granted is False
    assert afternoon.granted is True and not afternoon.cached
    assert warmed.cached and warmed.granted is True
    assert night.granted is False and not night.cached


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_submit_requires_running_service(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        with pytest.raises(ServiceError):
            await pdp.submit(request)

    run(scenario())


def test_graceful_drain_decides_everything_admitted(tv_policy) -> None:
    # Park the batcher so submits pile up, then stop(drain=True): every
    # admitted request must still get a mediated answer.
    pdp = make_pdp(tv_policy, cache_size=0, max_batch=4)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        release = asyncio.Event()
        original = type(pdp)._decide

        async def gated(self, requests, env_overrides, engine=None):
            await release.wait()
            return await original(self, requests, env_overrides, engine)

        pdp._decide = gated.__get__(pdp)
        async with pdp:
            waiters = [
                asyncio.create_task(
                    pdp.submit(request, environment_roles={"free-time"})
                )
                for _ in range(10)
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            release.set()
            # __aexit__ drains: all ten must resolve with real answers.
        return await asyncio.gather(*waiters)

    responses = run(scenario())
    assert len(responses) == 10
    assert all(r.outcome is PDPOutcome.GRANT for r in responses)


def test_start_is_idempotent_and_restartable(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        await pdp.start()
        await pdp.start()
        assert pdp.running
        await pdp.stop()
        assert not pdp.running
        await pdp.start()
        response = await pdp.submit(request, environment_roles={"free-time"})
        await pdp.stop()
        return response

    assert run(scenario()).granted is True


def test_engine_fault_isolated_to_error_outcome(tv_policy) -> None:
    pdp = make_pdp(tv_policy, cache_size=0)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def broken(self, requests, env_overrides, engine=None):
        raise RuntimeError("engine exploded")

    pdp._decide = broken.__get__(pdp)

    async def scenario():
        async with pdp:
            first = await pdp.submit(request, environment_roles={"free-time"})
            assert first.outcome is PDPOutcome.ERROR
            assert first.granted is False
            assert "exploded" in first.rationale
            assert pdp.running  # the batcher survived the fault
            return first

    run(scenario())


# ----------------------------------------------------------------------
# Client facade and stats
# ----------------------------------------------------------------------
def test_pdp_client_mirrors_engine_check(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    client = PDPClient(pdp, default_environment_roles={"free-time"})

    async def scenario():
        async with pdp:
            default_env = await client.check("alice", "watch", "livingroom/tv")
            explicit = await client.check(
                "alice", "watch", "livingroom/tv", environment_roles=set()
            )
            return default_env, explicit

    default_env, explicit = run(scenario())
    assert default_env is True
    assert explicit is False


def test_stats_counters_add_up(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    request = AccessRequest("watch", "livingroom/tv", subject="alice")

    async def scenario():
        async with pdp:
            for _ in range(5):
                await pdp.submit(request, environment_roles={"free-time"})

    run(scenario())
    stats = pdp.stats()
    assert stats["requests"] == 5
    assert stats["cache_hits"] == 4
    assert stats["cache_misses"] == 1
    assert stats["decided"] == 1
    assert stats["shed"] == 0
    assert stats["cache"]["entries"] == 1
