"""Multi-tenant serving through the PDP, wire, and admin surfaces.

The tenancy contract:

* the default tenant is the constructor engine — tenantless requests
  behave (and encode) exactly as before the store existed;
* a request naming a tenant resolves through pinned engines or the
  attached store; an unresolvable name answers an explicit
  ``DENY_UNKNOWN_TENANT``, never an error or a crash;
* tenants are isolated — the decision cache keys on the tenant, so
  identical requests against different tenants never share entries;
* ``activate``/``rollback`` in the store invalidate a tenant's cached
  decisions on the next request (generation bump), with no callback
  plumbing;
* both wire lanes, the ``tenants``/``reload`` ops, and the admin
  HTTP sidecar carry the tenant dimension end to end.
"""

from __future__ import annotations

import asyncio
import json

from repro.core import AccessRequest, MediationEngine
from repro.exceptions import ServiceError
from repro.policy.admin import PolicyAdministrator
from repro.policy.dsl import compile_policy
from repro.service import (
    AdminServer,
    PDPConfig,
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)
from repro.service.protocol import (
    decode_binary_request,
    decode_binary_request_ex,
    encode_binary_request,
    encode_request,
    encode_response,
    InternTables,
)
from repro.service.pdp import DEFAULT_TENANT, PDPResponse
from repro.store import PolicyStore

import pytest

GRANT_DSL = """
subject role child
object role tv-devices
environment role free-time
subject alice is child
object livingroom/tv is tv-devices
allow child to watch on tv-devices when free-time
"""
DENY_DSL = GRANT_DSL.replace("allow child", "deny child")

REQUEST = AccessRequest("watch", "livingroom/tv", subject="alice")
ENV = {"free-time"}


def run(coroutine):
    return asyncio.run(coroutine)


def grant_policy(name="grant"):
    return compile_policy(GRANT_DSL, name=name)


def deny_policy(name="deny"):
    return compile_policy(DENY_DSL, name=name)


def make_store(*tenants):
    """An in-memory store with (name, text) tenants, all activated."""
    store = PolicyStore()
    for name, text in tenants:
        store.create_tenant(name)
        store.put(name, text)
        store.activate(name)
    return store


def make_pdp(store=None, **config):
    return PolicyDecisionPoint(
        MediationEngine(grant_policy()), PDPConfig(**config), store=store
    )


# ----------------------------------------------------------------------
# PDP core
# ----------------------------------------------------------------------
class TestPdpTenancy:
    def test_default_tenant_is_constructor_engine(self):
        pdp = make_pdp()

        async def scenario():
            async with pdp:
                response = await pdp.submit(REQUEST, environment_roles=ENV)
                assert response.granted is True
                assert response.tenant == DEFAULT_TENANT
                named = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant=DEFAULT_TENANT
                )
                assert named.granted is True

        run(scenario())

    def test_unknown_tenant_is_explicit_outcome(self):
        pdp = make_pdp()

        async def scenario():
            async with pdp:
                response = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="ghost"
                )
                assert response.outcome is PDPOutcome.DENY_UNKNOWN_TENANT
                assert response.granted is False
                assert "ghost" in response.detail

        run(scenario())
        assert pdp.stats()["unknown_tenant"] == 1

    def test_store_tenants_resolve_and_isolate(self):
        store = make_store(("a", GRANT_DSL), ("b", DENY_DSL))
        pdp = make_pdp(store=store)

        async def scenario():
            async with pdp:
                granted = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="a"
                )
                denied = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="b"
                )
                assert granted.granted is True and granted.tenant == "a"
                assert denied.granted is False and denied.tenant == "b"

        run(scenario())

    def test_cache_is_tenant_keyed(self):
        store = make_store(("a", GRANT_DSL), ("b", DENY_DSL))
        pdp = make_pdp(store=store, cache_size=128)

        async def scenario():
            async with pdp:
                await pdp.submit(REQUEST, environment_roles=ENV, tenant="a")
                hit = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="a"
                )
                assert hit.cached is True
                # Same request, other tenant: own entry, other answer.
                cross = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="b"
                )
                assert cross.cached is False
                assert cross.granted is False

        run(scenario())

    def test_activate_invalidates_cached_decisions(self):
        store = make_store(("a", GRANT_DSL))
        pdp = make_pdp(store=store, cache_size=128)

        async def scenario():
            async with pdp:
                first = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="a"
                )
                assert first.granted is True
                store.put("a", DENY_DSL)
                store.activate("a")
                flipped = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="a"
                )
                assert flipped.granted is False
                store.rollback("a")
                restored = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="a"
                )
                assert restored.granted is True

        run(scenario())

    def test_eviction_under_tiny_lru_keeps_answers_correct(self):
        # Capacity 1 with two tenants on different texts: every other
        # request kills the resolved-engine weakref, forcing the PDP
        # off its fast path and through a rebuild — answers must not
        # change either way.
        store = PolicyStore(compiled_cache_size=1)
        for name, text in (("a", GRANT_DSL), ("b", DENY_DSL)):
            store.create_tenant(name)
            store.put(name, text)
            store.activate(name)
        pdp = make_pdp(store=store, cache_size=0)

        async def scenario():
            async with pdp:
                for _ in range(3):
                    granted = await pdp.submit(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    denied = await pdp.submit(
                        REQUEST, environment_roles=ENV, tenant="b"
                    )
                    assert granted.granted is True
                    assert denied.granted is False

        run(scenario())
        compiled = store.stats()["compiled"]
        assert compiled["entries"] <= 1
        assert compiled["evictions"] > 0

    def test_pinned_tenant_via_swap_policy(self):
        pdp = make_pdp()

        async def scenario():
            async with pdp:
                generation = pdp.swap_policy(
                    deny_policy("pinned"), tenant="unit-x"
                )
                assert generation >= 1
                response = await pdp.submit(
                    REQUEST, environment_roles=ENV, tenant="unit-x"
                )
                assert response.granted is False
                # The default tenant is untouched.
                default = await pdp.submit(REQUEST, environment_roles=ENV)
                assert default.granted is True

        run(scenario())
        assert "unit-x" in pdp.tenants()

    def test_stats_surface_cache_and_tenants(self):
        store = make_store(("a", GRANT_DSL))
        pdp = make_pdp(store=store, cache_size=64)

        async def scenario():
            async with pdp:
                await pdp.submit(REQUEST, environment_roles=ENV, tenant="a")
                await pdp.submit(REQUEST, environment_roles=ENV, tenant="a")

        run(scenario())
        stats = pdp.stats()
        assert stats["cache_capacity"] == 64
        assert "cache_evictions" in stats
        assert stats["store"]["tenants"] == 1
        rows = {row["tenant"]: row for row in stats["tenants"]}
        assert rows["a"]["requests"] == 2
        assert rows["a"]["cache_hits"] == 1


# ----------------------------------------------------------------------
# Wire compatibility
# ----------------------------------------------------------------------
class TestWireCompatibility:
    def test_tenantless_request_has_no_tenant_key(self):
        payload = encode_request(REQUEST, 1, env=frozenset(ENV))
        assert "tenant" not in payload
        tagged = encode_request(REQUEST, 1, env=frozenset(ENV), tenant="a")
        assert tagged["tenant"] == "a"

    def test_default_response_has_no_tenant_key(self):
        response = PDPResponse(
            request=REQUEST,
            outcome=PDPOutcome.GRANT,
            granted=True,
            decision=None,
        )
        assert "tenant" not in encode_response(1, response)
        tagged = PDPResponse(
            request=REQUEST,
            outcome=PDPOutcome.GRANT,
            granted=True,
            decision=None,
            tenant="a",
        )
        assert encode_response(1, tagged)["tenant"] == "a"

    def test_tenantless_binary_frame_is_byte_identical(self):
        tables = InternTables.from_policy(grant_policy())
        plain = encode_binary_request(tables, REQUEST, 7)
        # The legacy 4-tuple decoder still reads tenantless frames.
        request_id, request, env, timeout = decode_binary_request(
            tables, plain[6:]
        )
        assert request_id == 7 and request.subject == "alice"

    def test_binary_tenant_frame_round_trips(self):
        tables = InternTables.from_policy(grant_policy())
        frame = encode_binary_request(
            tables, REQUEST, 9, env=frozenset(ENV), tenant="unit-a"
        )
        request_id, request, env, timeout, tenant, trace = (
            decode_binary_request_ex(tables, frame[6:])
        )
        assert request_id == 9
        assert tenant == "unit-a"
        assert trace is None
        assert env == frozenset(ENV)
        # The legacy decoder refuses (never silently drops) the tenant.
        with pytest.raises(ServiceError, match="tenant"):
            decode_binary_request(tables, frame[6:])


# ----------------------------------------------------------------------
# Served end to end
# ----------------------------------------------------------------------
class TestServedTenancy:
    def test_ndjson_and_binary_lanes_carry_tenant(self):
        store = make_store(("a", GRANT_DSL), ("b", DENY_DSL))
        pdp = make_pdp(store=store)

        async def scenario():
            async with PDPServer(pdp) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    granted = await client.decide(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    denied = await client.decide(
                        REQUEST, environment_roles=ENV, tenant="b"
                    )
                    unknown = await client.decide(
                        REQUEST, environment_roles=ENV, tenant="ghost"
                    )
                    plain = await client.decide(
                        REQUEST, environment_roles=ENV
                    )
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port, wire="binary"
                ) as binary:
                    bin_denied = await binary.decide(
                        REQUEST, environment_roles=ENV, tenant="b"
                    )
                return granted, denied, unknown, plain, bin_denied

        granted, denied, unknown, plain, bin_denied = run(scenario())
        assert granted.granted is True and granted.tenant == "a"
        assert denied.granted is False and denied.tenant == "b"
        assert unknown.outcome is PDPOutcome.DENY_UNKNOWN_TENANT
        assert plain.granted is True and plain.tenant is None
        assert bin_denied.granted is False

    def test_tenants_op_lists_store_and_live_state(self):
        store = make_store(("a", GRANT_DSL))
        pdp = make_pdp(store=store)

        async def scenario():
            async with PDPServer(pdp) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.decide(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    return await client.tenants()

        rows = {row["tenant"]: row for row in run(scenario())}
        assert DEFAULT_TENANT in rows
        assert rows["a"]["active_version"] == 1
        assert rows["a"]["requests"] == 1

    def test_wire_reload_scoped_to_store_tenant(self):
        store = make_store(("a", GRANT_DSL), ("b", GRANT_DSL))
        pdp = make_pdp(store=store)
        administrator = PolicyAdministrator(pdp)

        async def scenario():
            async with PDPServer(
                pdp, administrator=administrator
            ) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    result = await client.reload(
                        DENY_DSL, actor="test", tenant="a"
                    )
                    assert result["accepted"] is True
                    assert result["version"] == 2
                    flipped = await client.decide(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    untouched = await client.decide(
                        REQUEST, environment_roles=ENV, tenant="b"
                    )
                    default = await client.decide(
                        REQUEST, environment_roles=ENV
                    )
                    return flipped, untouched, default

        flipped, untouched, default = run(scenario())
        assert flipped.granted is False
        assert untouched.granted is True
        assert default.granted is True
        assert store.active_version("a") == 2

    def test_wire_reload_refresh_only_after_external_rollback(self):
        store = make_store(("a", GRANT_DSL))
        store.put("a", DENY_DSL)
        store.activate("a")
        pdp = make_pdp(store=store)
        administrator = PolicyAdministrator(pdp)

        async def scenario():
            async with PDPServer(
                pdp, administrator=administrator
            ) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    before = await client.decide(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    store.rollback("a")  # out-of-band (CLI, operator)
                    result = await client.reload(tenant="a")
                    after = await client.decide(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    return before, result, after

        before, result, after = run(scenario())
        assert before.granted is False
        assert result["accepted"] is True and result["version"] == 1
        assert after.granted is True

    def test_wire_reload_unknown_tenant_is_error_not_crash(self):
        pdp = make_pdp(store=make_store())
        administrator = PolicyAdministrator(pdp)

        async def scenario():
            async with PDPServer(
                pdp, administrator=administrator
            ) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    try:
                        await client.reload(
                            DENY_DSL, actor="test", tenant="ghost"
                        )
                    except ServiceError as error:
                        return str(error)
                    return None

        message = run(scenario())
        assert message is not None and "ghost" in message

    def test_intern_against_tenant_policy(self):
        other = GRANT_DSL.replace("alice", "zed")
        store = make_store(("a", other))
        pdp = make_pdp(store=store)

        async def scenario():
            async with PDPServer(pdp) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    tables = await client.intern(tenant="a")
                    zed = AccessRequest(
                        "watch", "livingroom/tv", subject="zed"
                    )
                    response = await client.decide(
                        zed, environment_roles=ENV, tenant="a"
                    )
                    return tables, response

        tables, response = run(scenario())
        assert "zed" in tables.subjects
        assert response.granted is True


# ----------------------------------------------------------------------
# Admin HTTP sidecar
# ----------------------------------------------------------------------
async def http(port: int, head: str, body: bytes = b"") -> tuple:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    request = head.encode("ascii")
    if body:
        request += f"Content-Length: {len(body)}\r\n\r\n".encode() + body
    else:
        request += b"\r\n"
    writer.write(request)
    await writer.drain()
    writer.write_eof()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b"\r\n", 1)[0].split()[1])
    payload = raw.split(b"\r\n\r\n", 1)[1]
    return status, payload


class TestAdminHttpTenancy:
    def test_get_tenants(self):
        store = make_store(("a", GRANT_DSL))
        pdp = make_pdp(store=store)

        async def scenario():
            async with pdp:
                async with AdminServer(pdp) as admin:
                    return await http(
                        admin.port, "GET /tenants HTTP/1.1\r\n"
                    )

        status, payload = run(scenario())
        assert status == 200
        rows = {
            row["tenant"]: row for row in json.loads(payload)["tenants"]
        }
        assert rows["a"]["active_version"] == 1

    def test_post_reload_with_tenant_query(self):
        store = make_store(("a", GRANT_DSL))
        pdp = make_pdp(store=store)
        administrator = PolicyAdministrator(pdp)

        async def scenario():
            async with pdp:
                async with AdminServer(
                    pdp, administrator=administrator
                ) as admin:
                    status, payload = await http(
                        admin.port,
                        "POST /reload?tenant=a&actor=ops HTTP/1.1\r\n",
                        DENY_DSL.encode("utf-8"),
                    )
                    response = await pdp.submit(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    return status, payload, response

        status, payload, response = run(scenario())
        assert status == 200
        body = json.loads(payload)
        assert body["accepted"] is True and body["version"] == 2
        assert response.granted is False

    def test_post_reload_empty_body_refreshes_store_tenant(self):
        store = make_store(("a", GRANT_DSL))
        pdp = make_pdp(store=store)
        administrator = PolicyAdministrator(pdp)

        async def scenario():
            async with pdp:
                async with AdminServer(
                    pdp, administrator=administrator
                ) as admin:
                    # Pin the serving state, then change the store
                    # out-of-band and refresh over HTTP.
                    await pdp.submit(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    store.put("a", DENY_DSL)
                    store.activate("a")
                    status, payload = await http(
                        admin.port, "POST /reload?tenant=a HTTP/1.1\r\n"
                    )
                    response = await pdp.submit(
                        REQUEST, environment_roles=ENV, tenant="a"
                    )
                    return status, payload, response

        status, payload, response = run(scenario())
        assert status == 200
        assert json.loads(payload)["version"] == 2
        assert response.granted is False

    def test_post_reload_unknown_tenant_404s(self):
        pdp = make_pdp(store=make_store())
        administrator = PolicyAdministrator(pdp)

        async def scenario():
            async with pdp:
                async with AdminServer(
                    pdp, administrator=administrator
                ) as admin:
                    return await http(
                        admin.port,
                        "POST /reload?tenant=ghost HTTP/1.1\r\n",
                        DENY_DSL.encode("utf-8"),
                    )

        status, payload = run(scenario())
        assert status == 404
        assert b"ghost" in payload
