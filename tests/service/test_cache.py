"""Unit tests for the revision-keyed decision cache."""

from __future__ import annotations

import asyncio

from repro.core import AccessRequest, MediationEngine
from repro.service.cache import DecisionCache
from repro.service.pdp import PDPConfig, PDPOutcome, PolicyDecisionPoint


def test_basic_get_put() -> None:
    cache = DecisionCache(4)
    assert cache.get(("k",)) is None
    cache.put(("k",), "value")
    assert cache.get(("k",)) == "value"
    assert cache.hits == 1
    assert cache.misses == 1


def test_none_key_is_uncacheable_and_never_stored() -> None:
    cache = DecisionCache(4)
    assert cache.get(None) is None
    cache.put(None, "value")
    assert cache.get(None) is None
    assert len(cache) == 0
    # A None key was never *eligible* for the cache: it is counted as
    # uncacheable, not as a miss (misses would deflate hit_rate).
    assert cache.uncacheable == 2  # one per get(None)
    assert cache.misses == 0


def test_capacity_zero_disables() -> None:
    cache = DecisionCache(0)
    cache.put(("k",), "value")
    assert cache.get(("k",)) is None
    assert len(cache) == 0
    assert cache.uncacheable == 1
    assert cache.misses == 0


def test_note_uncacheable_matches_get_none_tally() -> None:
    cache = DecisionCache(0)
    cache.note_uncacheable()
    cache.note_uncacheable()
    assert cache.uncacheable == 2
    assert cache.misses == 0 and cache.hits == 0


def test_capacity_zero_pdp_does_no_key_work(tv_policy) -> None:
    """Micro-assert for the capacity-0 fast path: ``submit`` must
    short-circuit *before* key materialization — a poisoned
    ``_cache_key`` proves the tuple is never built — while the
    uncacheable tally still moves as if ``get(None)`` had run."""

    async def scenario():
        engine = MediationEngine(tv_policy)
        pdp = PolicyDecisionPoint(engine, PDPConfig(cache_size=0))

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("capacity-0 submit built a cache key")

        pdp._cache_key = boom
        async with pdp:
            responses = [
                await pdp.submit(
                    AccessRequest(
                        "watch", "livingroom/tv", subject="alice"
                    ),
                    environment_roles={"free-time"},
                )
                for _ in range(3)
            ]
        return responses, pdp.cache.stats()

    responses, stats = asyncio.run(scenario())
    assert all(r.outcome is PDPOutcome.GRANT for r in responses)
    assert stats["uncacheable"] == 3
    assert stats["hits"] == 0 and stats["misses"] == 0


def test_hit_rate_measures_cacheable_lookups_only() -> None:
    """Regression: uncacheable lookups used to count as misses, so a
    PDP with many constraint-guarded (uncacheable) requests reported a
    near-zero hit_rate however well the cache was doing."""
    cache = DecisionCache(4)
    cache.put(("k",), "value")
    assert cache.get(("k",)) == "value"  # 1 hit
    assert cache.get(("other",)) is None  # 1 miss
    for _ in range(98):
        cache.get(None)  # uncacheable noise
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["uncacheable"] == 98
    assert stats["hit_rate"] == 0.5  # not 1/100


def test_lru_eviction_prefers_recently_used() -> None:
    cache = DecisionCache(2)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    assert cache.get(("a",)) == 1  # touch "a" so "b" is the LRU entry
    cache.put(("c",), 3)
    assert cache.get(("b",)) is None
    assert cache.get(("a",)) == 1
    assert cache.get(("c",)) == 3
    assert cache.evictions == 1


def test_revisioned_keys_never_collide() -> None:
    cache = DecisionCache(8)
    cache.put((1, "alice", "watch"), "grant@rev1")
    cache.put((2, "alice", "watch"), "deny@rev2")
    assert cache.get((1, "alice", "watch")) == "grant@rev1"
    assert cache.get((2, "alice", "watch")) == "deny@rev2"


def test_stats_shape() -> None:
    cache = DecisionCache(2)
    cache.put(("a",), 1)
    cache.get(("a",))
    cache.get(("b",))
    stats = cache.stats()
    assert stats["entries"] == 1
    assert stats["capacity"] == 2
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["uncacheable"] == 0
    assert 0.0 <= stats["hit_rate"] <= 1.0
