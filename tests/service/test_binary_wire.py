"""The binary wire lane: framing, intern handshake, error paths.

Satellite coverage for PR 6's protocol work: truncated frames,
oversized frames (the ``MAX_LINE_BYTES``-equivalent cap), mixed
NDJSON/binary clients on one server, the pre-handshake error, and the
client's transparent NDJSON fallback for traffic the binary lane
cannot carry.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core import AccessRequest, MediationEngine
from repro.exceptions import ServiceError
from repro.service import (
    PDPConfig,
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)
from repro.service.protocol import (
    BINARY_MAGIC,
    FRAME_HEADER,
    KIND_ERROR,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_FRAME_BYTES,
    InternTables,
    decode_binary_error,
    decode_binary_request,
    decode_binary_response,
    dumps_line,
    encode_binary_request,
    encode_binary_response,
)


def make_server(policy, **config) -> PDPServer:
    engine = MediationEngine(policy)
    return PDPServer(PolicyDecisionPoint(engine, PDPConfig(**config)))


async def read_frame(reader):
    header = await reader.readexactly(FRAME_HEADER.size)
    magic, kind, length = FRAME_HEADER.unpack(header)
    assert magic == BINARY_MAGIC
    return kind, await reader.readexactly(length)


# ----------------------------------------------------------------------
# Codec round trips (no sockets)
# ----------------------------------------------------------------------
class TestCodec:
    def tables(self, policy) -> InternTables:
        return InternTables.from_policy(policy)

    def test_request_round_trip(self, tv_policy):
        tables = self.tables(tv_policy)
        request = AccessRequest(
            "watch", "livingroom/tv", subject="alice",
            identity_confidence=0.75,
        )
        data = encode_binary_request(
            tables, request, 42, env=frozenset({"free-time"})
        )
        assert data[0] == BINARY_MAGIC
        kind, length = struct.unpack_from("!BI", data, 1)
        assert kind == KIND_REQUEST and length == len(data) - FRAME_HEADER.size
        request_id, decoded, env, timeout_s = decode_binary_request(
            tables, data[FRAME_HEADER.size:]
        )
        assert request_id == 42
        assert decoded.subject == "alice"
        assert decoded.transaction == "watch"
        assert decoded.obj == "livingroom/tv"
        assert decoded.identity_confidence == 0.75
        assert env == frozenset({"free-time"})
        assert timeout_s is None

    def test_no_env_and_no_subject(self, tv_policy):
        tables = self.tables(tv_policy)
        request = AccessRequest("watch", "livingroom/tv", subject="alice")
        body = encode_binary_request(tables, request, 7)[FRAME_HEADER.size:]
        _, decoded, env, _ = decode_binary_request(tables, body)
        assert env is None and decoded.subject == "alice"

    def test_uninterned_name_refuses_binary_lane(self, tv_policy):
        tables = self.tables(tv_policy)
        ghost = AccessRequest("watch", "livingroom/tv", subject="mallory")
        with pytest.raises(ServiceError, match="not interned"):
            encode_binary_request(tables, ghost, 1)

    def test_role_claims_refuse_binary_lane(self, tv_policy):
        tables = self.tables(tv_policy)
        claimed = AccessRequest(
            "watch", "livingroom/tv", role_claims={"child": 0.9}
        )
        with pytest.raises(ServiceError, match="claims"):
            encode_binary_request(tables, claimed, 1)

    def test_truncated_request_body_is_a_service_error(self, tv_policy):
        tables = self.tables(tv_policy)
        request = AccessRequest("watch", "livingroom/tv", subject="alice")
        body = encode_binary_request(tables, request, 9)[FRAME_HEADER.size:]
        with pytest.raises(ServiceError, match="truncated"):
            decode_binary_request(tables, body[:5])

    def test_trailing_garbage_rejected(self, tv_policy):
        tables = self.tables(tv_policy)
        request = AccessRequest("watch", "livingroom/tv", subject="alice")
        body = encode_binary_request(tables, request, 9)[FRAME_HEADER.size:]
        with pytest.raises(ServiceError, match="trailing"):
            decode_binary_request(tables, body + b"\x00")

    def test_unknown_id_rejected(self, tv_policy):
        tables = self.tables(tv_policy)
        request = AccessRequest("watch", "livingroom/tv", subject="alice")
        body = bytearray(
            encode_binary_request(tables, request, 9)[FRAME_HEADER.size:]
        )
        struct.pack_into("!i", body, 8, 40_000)  # transaction id slot
        with pytest.raises(ServiceError, match="unknown id"):
            decode_binary_request(tables, bytes(body))

    def test_intern_tables_payload_round_trip(self, tv_policy):
        tables = self.tables(tv_policy)
        rebuilt = InternTables.from_payload(tables.to_payload())
        assert rebuilt.subjects == tables.subjects
        assert rebuilt.objects == tables.objects
        assert rebuilt.transactions == tables.transactions
        assert rebuilt.environment_roles == tables.environment_roles
        assert rebuilt.revision == tables.revision


# ----------------------------------------------------------------------
# End-to-end over TCP
# ----------------------------------------------------------------------
def test_binary_client_round_trip(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="binary"
            ) as client:
                assert client._tables is not None
                granted = await client.check(
                    "alice", "watch", "livingroom/tv",
                    environment_roles={"free-time"},
                )
                denied = await client.check(
                    "alice", "watch", "livingroom/tv",
                    environment_roles=set(),
                )
                # Control ops ride NDJSON on the same connection.
                assert await client.ping()
                return granted, denied

    granted, denied = asyncio.run(scenario())
    assert granted is True and denied is False


def test_binary_and_json_clients_agree(tv_policy) -> None:
    """Mixed NDJSON/binary clients on one server, answers identical."""
    cases = [
        ("alice", {"free-time"}),
        ("alice", set()),
        ("mom", {"free-time"}),
        ("bobby", {"free-time", "weekday"}),
    ]

    async def scenario():
        async with make_server(tv_policy, cache_size=0) as server:
            jc = await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="json"
            )
            bc = await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="binary"
            )
            try:
                pairs = []
                for subject, env in cases:
                    request = AccessRequest(
                        "watch", "livingroom/tv", subject=subject
                    )
                    a = await jc.decide(request, environment_roles=env)
                    b = await bc.decide(request, environment_roles=env)
                    pairs.append((a, b))
                return pairs
            finally:
                await jc.close()
                await bc.close()

    for a, b in asyncio.run(scenario()):
        assert a.outcome is b.outcome
        assert a.granted is b.granted


def test_binary_client_falls_back_for_claims_and_new_names(tv_policy) -> None:
    """Traffic the binary lane cannot carry rides NDJSON transparently."""

    async def scenario():
        async with make_server(tv_policy) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="binary"
            ) as client:
                claimed = await client.decide(
                    AccessRequest(
                        "watch", "livingroom/tv",
                        role_claims={"child": 0.99},
                    ),
                    environment_roles={"free-time"},
                )
                timed = await client.decide(
                    AccessRequest(
                        "watch", "livingroom/tv", subject="alice"
                    ),
                    environment_roles={"free-time"},
                    timeout_ms=5_000,
                )
                return claimed, timed

    claimed, timed = asyncio.run(scenario())
    assert claimed.outcome is PDPOutcome.GRANT
    assert timed.outcome is PDPOutcome.GRANT


def test_binary_request_before_intern_gets_error_frame(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                tables = InternTables.from_policy(tv_policy)
                writer.write(
                    encode_binary_request(
                        tables,
                        AccessRequest(
                            "watch", "livingroom/tv", subject="alice"
                        ),
                        1,
                    )
                )
                await writer.drain()
                kind, body = await read_frame(reader)
                return kind, decode_binary_error(body)
            finally:
                writer.close()
                await writer.wait_closed()

    kind, (request_id, message) = asyncio.run(scenario())
    assert kind == KIND_ERROR
    assert request_id is None
    assert "intern" in message


def test_truncated_frame_drops_connection_but_not_server(tv_policy) -> None:
    """A peer dying mid-frame must not wedge the listener."""

    async def scenario():
        async with make_server(tv_policy) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # Half a header, then half a body, then hang up.
            writer.write(bytes([BINARY_MAGIC, KIND_REQUEST, 0x00]))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            # The server is still healthy for the next client.
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="binary"
            ) as client:
                return await client.check(
                    "alice", "watch", "livingroom/tv",
                    environment_roles={"free-time"},
                )

    assert asyncio.run(scenario()) is True


def test_oversized_frame_rejected_with_error_and_close(tv_policy) -> None:
    """Frames above MAX_FRAME_BYTES are refused, mirroring the NDJSON
    line cap — length is rejected from the header, the body is never
    buffered."""

    async def scenario():
        async with make_server(tv_policy) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(
                    FRAME_HEADER.pack(
                        BINARY_MAGIC, KIND_REQUEST, MAX_FRAME_BYTES + 1
                    )
                )
                await writer.drain()
                kind, body = await read_frame(reader)
                assert kind == KIND_ERROR
                _, message = decode_binary_error(body)
                # ...and the server closes the (unrecoverable) stream.
                assert await reader.read() == b""
                return message
            finally:
                writer.close()
                await writer.wait_closed()

    assert "exceeds" in asyncio.run(scenario())


def test_mixed_messages_on_one_raw_connection(tv_policy) -> None:
    """One socket interleaving NDJSON ops and binary requests."""

    async def scenario():
        async with make_server(tv_policy) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                # NDJSON intern handshake...
                writer.write(dumps_line({"op": "intern", "id": 1}))
                await writer.drain()
                line = await reader.readline()
                import json

                tables = InternTables.from_payload(json.loads(line))
                # ...a binary request...
                writer.write(
                    encode_binary_request(
                        tables,
                        AccessRequest(
                            "watch", "livingroom/tv", subject="alice"
                        ),
                        2,
                        env=frozenset({"free-time"}),
                    )
                )
                await writer.drain()
                kind, body = await read_frame(reader)
                assert kind == KIND_RESPONSE
                binary_response = decode_binary_response(body)
                # ...then an NDJSON ping on the same socket.
                writer.write(dumps_line({"op": "ping", "id": 3}))
                await writer.drain()
                pong = json.loads(await reader.readline())
                return binary_response, pong
            finally:
                writer.close()
                await writer.wait_closed()

    response, pong = asyncio.run(scenario())
    assert response.id == 2
    assert response.outcome is PDPOutcome.GRANT and response.granted
    assert pong == {"op": "pong", "id": 3}


def test_intern_refresh_after_policy_growth(tv_policy) -> None:
    """Names minted after the handshake fall back to NDJSON until the
    client re-interns — never an error, never a wrong answer."""

    async def scenario():
        async with make_server(tv_policy) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="binary"
            ) as client:
                before = len(client._tables.subjects)
                tv_policy.add_subject("grandpa")
                tv_policy.assign_subject("grandpa", "child")
                # Uninterned name: JSON fallback still answers.
                granted = await client.check(
                    "grandpa", "watch", "livingroom/tv",
                    environment_roles={"free-time"},
                )
                refreshed = await client.intern()
                return before, granted, len(refreshed.subjects)

    before, granted, after = asyncio.run(scenario())
    assert granted is True
    assert after == before + 1
