"""Property: hot-reload is indistinguishable from a fresh PDP.

Hypothesis generates random candidate rule sets.  A live PDP that
hot-reloads the candidate (with a warm cache full of old-policy
answers to tempt staleness) must answer every probe exactly as a PDP
built directly on the candidate — and a candidate that fails
validation must leave every answer exactly as it was.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessRequest, GrbacPolicy, MediationEngine
from repro.exceptions import GrbacError
from repro.policy import to_json
from repro.policy.admin import PolicyAdministrator
from repro.service import MEDIATED_OUTCOMES, PDPConfig, PolicyDecisionPoint

SUBJECT_ROLES = ["parent", "child"]
SUBJECTS = {"mom": "parent", "alice": "child"}
OBJECT_ROLES = ["entertainment", "dangerous"]
OBJECTS = {"tv": "entertainment", "oven": "dangerous"}
ENV_ROLES = ["free-time", "weekday"]
TRANSACTIONS = ["watch", "power_on"]

PROBES = [
    (subject, transaction, obj, env)
    for subject in sorted(SUBJECTS)
    for transaction in TRANSACTIONS
    for obj in sorted(OBJECTS)
    for env in (frozenset(), frozenset({"free-time"}))
]

rules = st.lists(
    st.tuples(
        st.sampled_from(["grant", "deny"]),
        st.sampled_from(SUBJECT_ROLES),
        st.sampled_from(TRANSACTIONS),
        st.sampled_from(OBJECT_ROLES),
        st.sampled_from(ENV_ROLES + [None]),
    ),
    max_size=6,
)


def build_policy(rule_list, name="prop") -> GrbacPolicy:
    policy = GrbacPolicy(name)
    for role in SUBJECT_ROLES:
        policy.add_subject_role(role)
    for role in OBJECT_ROLES:
        policy.add_object_role(role)
    for role in ENV_ROLES:
        policy.add_environment_role(role)
    for transaction in TRANSACTIONS:
        policy.add_transaction(transaction)
    for subject, role in SUBJECTS.items():
        policy.add_subject(subject)
        policy.assign_subject(subject, role)
    for obj, role in OBJECTS.items():
        policy.add_object(obj)
        policy.assign_object(obj, role)
    for sign, srole, transaction, orole, erole in rule_list:
        try:
            if sign == "grant":
                policy.grant(srole, transaction, orole, erole)
            else:
                policy.deny(srole, transaction, orole, erole)
        except GrbacError:
            pass  # duplicate rule in the sample
    return policy


BASE_RULES = [("grant", "child", "watch", "entertainment", "free-time")]


async def _probe_all(pdp: PolicyDecisionPoint):
    answers = []
    for subject, transaction, obj, env in PROBES:
        request = AccessRequest(transaction, obj, subject=subject)
        response = await pdp.submit(request, environment_roles=set(env))
        assert response.outcome in MEDIATED_OUTCOMES
        answers.append((response.outcome, response.granted))
    return answers


@settings(max_examples=25, deadline=None)
@given(rule_list=rules)
def test_reload_is_equivalent_to_a_fresh_pdp(rule_list) -> None:
    pdp = PolicyDecisionPoint(
        MediationEngine(build_policy(BASE_RULES, name="base")),
        PDPConfig(max_batch=8, cache_size=64),
    )
    fresh = PolicyDecisionPoint(
        MediationEngine(build_policy(rule_list)),
        PDPConfig(max_batch=8, cache_size=64),
    )
    administrator = PolicyAdministrator(pdp)
    candidate = to_json(build_policy(rule_list))

    async def scenario():
        async with pdp, fresh:
            await _probe_all(pdp)  # warm old-policy cache entries
            result = administrator.reload(candidate, actor="prop")
            assert result.accepted, result.error
            return await _probe_all(pdp), await _probe_all(fresh)

    reloaded, direct = asyncio.run(scenario())
    assert reloaded == direct


@settings(max_examples=25, deadline=None)
@given(rule_list=rules, junk=st.text(max_size=30))
def test_failed_validation_leaves_answers_untouched(rule_list, junk) -> None:
    policy = build_policy(rule_list)
    pdp = PolicyDecisionPoint(
        MediationEngine(policy), PDPConfig(max_batch=8, cache_size=64)
    )
    administrator = PolicyAdministrator(pdp)
    # Whatever the sampled junk, the leading line cannot parse.
    candidate = "certainly not a grbac statement\n" + junk

    async def scenario():
        async with pdp:
            before = await _probe_all(pdp)
            result = administrator.reload(candidate, actor="prop")
            assert result.accepted is False
            assert result.error
            return before, await _probe_all(pdp)

    before, after = asyncio.run(scenario())
    assert before == after
    assert pdp.policy is policy
    assert pdp.generation == 0
