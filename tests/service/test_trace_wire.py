"""Trace context on both wire formats.

The compatibility contract is strict: an untraced request encodes to
the exact bytes the pre-trace protocol produced, on both lanes.  The
router's hot-path helpers (``peek_binary_trace``, the two splice
functions) must tag and rewrite frames without intern tables and
without disturbing the segments they never decoded.
"""

from __future__ import annotations

import json

import pytest

from repro.core import AccessRequest
from repro.exceptions import ServiceError
from repro.service import PDPOutcome
from repro.service.pdp import PDPResponse
from repro.obs.trace import TraceContext
from repro.service.protocol import (
    FRAME_HEADER,
    InternTables,
    decode_binary_request,
    decode_binary_request_ex,
    decode_request,
    decode_response,
    decode_trace_context,
    dumps_line,
    encode_binary_request,
    encode_request,
    encode_response,
    peek_binary_trace,
    splice_binary_trace,
    splice_line_trace,
)

CTX = TraceContext("ab" * 8, "cd" * 8, True)


def body_of(frame: bytes) -> bytes:
    return frame[FRAME_HEADER.size:]


class TestLineLane:
    def test_untraced_payload_has_no_trace_key(self) -> None:
        request = AccessRequest("watch", "tv", subject="alice")
        untraced = encode_request(request, 1)
        assert "trace" not in untraced
        traced = encode_request(request, 1, trace=CTX)
        assert traced["trace"] == CTX.to_wire()
        assert {k: v for k, v in traced.items() if k != "trace"} == untraced

    def test_decode_trace_context(self) -> None:
        assert decode_trace_context({}) is None
        assert decode_trace_context({"trace": CTX.to_wire()}) == CTX
        with pytest.raises(ServiceError):
            decode_trace_context({"trace": 7})
        with pytest.raises(ServiceError):
            decode_trace_context({"trace": "garbage"})

    def response(self, trace_id: str = "") -> PDPResponse:
        return PDPResponse(
            request=AccessRequest("watch", "tv", subject="alice"),
            outcome=PDPOutcome.GRANT,
            granted=True,
            decision=None,
            trace_id=trace_id,
        )

    def test_response_echoes_trace_id_only_when_set(self) -> None:
        payload = encode_response(3, self.response())
        assert "trace_id" not in payload
        assert decode_response(payload).trace_id == ""
        tagged = encode_response(3, self.response(trace_id=CTX.trace_id))
        assert tagged["trace_id"] == CTX.trace_id
        assert decode_response(tagged).trace_id == CTX.trace_id

    def test_splice_into_untagged_line(self) -> None:
        line = dumps_line(encode_request(AccessRequest("watch", "tv", subject="alice"), 9))
        spliced = splice_line_trace(line, CTX)
        assert spliced.endswith(b"\n")
        payload = json.loads(spliced)
        assert payload["trace"] == CTX.to_wire()
        assert decode_request(payload)[1].transaction == "watch"

    def test_splice_rewrites_existing_context(self) -> None:
        line = dumps_line(
            encode_request(AccessRequest("watch", "tv", subject="alice"), 9, trace=CTX)
        )
        rewritten = TraceContext(CTX.trace_id, "ef" * 8, True)
        payload = json.loads(splice_line_trace(line, rewritten))
        assert payload["trace"] == rewritten.to_wire()

    def test_splice_rejects_non_object_line(self) -> None:
        with pytest.raises(ServiceError):
            splice_line_trace(b"[1, 2]\n", CTX)


class TestBinaryLane:
    @pytest.fixture()
    def tables(self, tv_policy) -> InternTables:
        return InternTables.from_policy(tv_policy)

    def encode(self, tables: InternTables, **kwargs) -> bytes:
        request = AccessRequest("watch", "livingroom/tv", subject="alice")
        return encode_binary_request(tables, request, 7, **kwargs)

    def test_untraced_frame_is_byte_identical(self, tables) -> None:
        assert self.encode(tables) == self.encode(tables, trace=None)
        assert peek_binary_trace(body_of(self.encode(tables))) is None

    def test_traced_frame_round_trips(self, tables) -> None:
        body = body_of(self.encode(tables, trace=CTX))
        assert peek_binary_trace(body) == CTX
        request_id, request, env, timeout_s, tenant, trace = (
            decode_binary_request_ex(tables, body)
        )
        assert request_id == 7
        assert request.subject == "alice"
        assert trace == CTX

    def test_trace_composes_with_env_and_tenant(self, tables) -> None:
        body = body_of(
            self.encode(
                tables,
                env=frozenset({"free-time"}),
                tenant="acme",
                trace=CTX,
            )
        )
        assert peek_binary_trace(body) == CTX
        _, _, env, _, tenant, trace = decode_binary_request_ex(tables, body)
        assert env == frozenset({"free-time"})
        assert tenant == "acme"
        assert trace == CTX

    def test_legacy_decode_drops_trace_silently(self, tables) -> None:
        body = body_of(self.encode(tables, trace=CTX))
        request_id, request, env, timeout_s = decode_binary_request(
            tables, body
        )
        assert request_id == 7 and request.subject == "alice"

    def test_splice_tags_untagged_frame(self, tables) -> None:
        untagged = body_of(self.encode(tables, tenant="acme"))
        tagged = splice_binary_trace(untagged, CTX)
        assert peek_binary_trace(tagged) == CTX
        _, request, _, _, tenant, trace = decode_binary_request_ex(
            tables, tagged
        )
        # The splice never decoded the tenant segment yet preserved it.
        assert tenant == "acme"
        assert request.subject == "alice"
        assert trace == CTX

    def test_splice_replaces_existing_segment(self, tables) -> None:
        tagged = body_of(self.encode(tables, trace=CTX))
        rewritten = TraceContext(CTX.trace_id, "ef" * 8, False)
        replaced = splice_binary_trace(tagged, rewritten)
        assert peek_binary_trace(replaced) == rewritten
        assert len(replaced) == len(tagged)

    def test_truncated_trace_segment_raises(self, tables) -> None:
        body = body_of(self.encode(tables, trace=CTX))
        with pytest.raises(ServiceError):
            peek_binary_trace(body[:-3])
        with pytest.raises(ServiceError):
            decode_binary_request_ex(tables, body[:-3])

    def test_splice_rejects_headerless_body(self) -> None:
        with pytest.raises(ServiceError):
            splice_binary_trace(b"\x01", CTX)
