"""Graceful shutdown: ``request_shutdown``, signals, drain deadline.

The cluster supervisor stops workers with SIGTERM and expects every
admitted request to be answered before the process exits; these tests
pin that contract on a single in-process server, plus the wire-level
two-phase reload ops the cluster reload is built on.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.core import AccessRequest, MediationEngine
from repro.exceptions import ServiceError
from repro.policy.admin import PolicyAdministrator
from repro.service import (
    PDPConfig,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)

REQUEST = AccessRequest("watch", "livingroom/tv", subject="alice")


def make_server(policy, administrator=False, **config) -> PDPServer:
    pdp = PolicyDecisionPoint(MediationEngine(policy), PDPConfig(**config))
    admin = PolicyAdministrator(pdp) if administrator else None
    return PDPServer(pdp, administrator=admin)


def test_drain_timeout_must_be_positive(tv_policy) -> None:
    pdp = PolicyDecisionPoint(MediationEngine(tv_policy), PDPConfig())
    with pytest.raises(ServiceError):
        PDPServer(pdp, drain_timeout_s=0)
    with pytest.raises(ServiceError):
        PDPServer(pdp, drain_timeout_s=-1.0)
    PDPServer(pdp, drain_timeout_s=None)  # unbounded drain is fine


def test_request_shutdown_before_serve_is_a_noop(tv_policy) -> None:
    server = make_server(tv_policy)
    server.request_shutdown()  # must not raise


def test_request_shutdown_exits_serve_forever(tv_policy) -> None:
    async def scenario():
        server = make_server(tv_policy)
        await server.start()
        serving = asyncio.get_running_loop().create_task(
            server.serve_forever()
        )
        client = await RemotePDPClient.connect("127.0.0.1", server.port)
        response = await client.decide(
            REQUEST, environment_roles={"free-time"}
        )
        await client.close()
        server.request_shutdown()
        await asyncio.wait_for(serving, timeout=10.0)
        return response

    response = asyncio.run(scenario())
    assert response.granted is True


def test_inflight_request_answered_during_drain(tv_policy) -> None:
    """A request admitted before shutdown gets its answer, not a cut."""

    async def scenario():
        # A long gather window forces queueing so the request is in
        # flight when the shutdown lands.
        server = make_server(tv_policy, max_batch=64, max_wait_ms=20.0)
        await server.start()
        serving = asyncio.get_running_loop().create_task(
            server.serve_forever()
        )
        client = await RemotePDPClient.connect("127.0.0.1", server.port)
        pending = asyncio.get_running_loop().create_task(
            client.decide(REQUEST, environment_roles={"free-time"})
        )
        await asyncio.sleep(0.002)  # let the request hit the queue
        server.request_shutdown()
        response = await asyncio.wait_for(pending, timeout=10.0)
        await client.close()
        await asyncio.wait_for(serving, timeout=10.0)
        return response

    response = asyncio.run(scenario())
    assert response.granted is True


def test_sigterm_routes_into_graceful_drain(tv_policy) -> None:
    async def scenario():
        server = make_server(tv_policy)
        await server.start()
        server.install_signal_handlers()
        serving = asyncio.get_running_loop().create_task(
            server.serve_forever()
        )
        await asyncio.sleep(0.01)
        os.kill(os.getpid(), signal.SIGTERM)
        await asyncio.wait_for(serving, timeout=10.0)
        # Restore default handling for the rest of the test session.
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
        return True

    assert asyncio.run(scenario()) is True


# ----------------------------------------------------------------------
# Two-phase reload over the wire
# ----------------------------------------------------------------------
NEW_POLICY = """
subject role child
subject bobby is child
object role entertainment
object tv is entertainment
environment role free-time
allow child to watch on entertainment when free-time
"""


def test_wire_two_phase_prepare_activate(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy, administrator=True) as server:
            client = await RemotePDPClient.connect(
                "127.0.0.1", server.port
            )
            prepared = await client.reload_prepare(
                NEW_POLICY, actor="wire-test"
            )
            # Prepared, not yet serving: bobby is unknown.
            before = await client.decide(
                AccessRequest("watch", "tv", subject="bobby"),
                environment_roles={"free-time"},
            )
            activated = await client.reload_activate(
                prepared["token"], actor="wire-test"
            )
            after = await client.decide(
                AccessRequest("watch", "tv", subject="bobby"),
                environment_roles={"free-time"},
            )
            await client.close()
            return prepared, before, activated, after

    prepared, before, activated, after = asyncio.run(scenario())
    assert prepared["accepted"] is True
    assert prepared["token"]
    assert before.granted is False
    assert activated["accepted"] is True
    assert activated["generation"] == 1
    assert after.granted is True


def test_wire_two_phase_abort_and_bad_candidate(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy, administrator=True) as server:
            client = await RemotePDPClient.connect(
                "127.0.0.1", server.port
            )
            rejected = await client.reload_prepare(
                "gibberish {{{", actor="wire-test"
            )
            prepared = await client.reload_prepare(
                NEW_POLICY, actor="wire-test"
            )
            aborted = await client.reload_abort(
                prepared["token"], actor="wire-test"
            )
            # The aborted token is dead.
            stale = await client.reload_activate(
                prepared["token"], actor="wire-test"
            )
            await client.close()
            return rejected, aborted, stale, server.pdp.generation

    rejected, aborted, stale, generation = asyncio.run(scenario())
    assert rejected["accepted"] is False
    assert rejected["token"] in (None, "")
    assert aborted is True
    assert stale["accepted"] is False
    assert generation == 0


def test_wire_two_phase_without_administrator(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            client = await RemotePDPClient.connect(
                "127.0.0.1", server.port
            )
            with pytest.raises(ServiceError):
                await client.reload_prepare(NEW_POLICY, actor="x")
            await client.close()

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# Intern with provided tables (the router's handshake replay)
# ----------------------------------------------------------------------
def test_intern_accepts_provided_tables(tv_policy) -> None:
    """A client may pin its own tables — ids survive reconnects."""

    async def scenario():
        async with make_server(tv_policy) as server:
            first = await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="binary"
            )
            tables = first._tables  # the handshake the router captures
            response_a = await first.decide(
                REQUEST, environment_roles={"free-time"}
            )
            await first.close()

            # A second connection provides the first's tables verbatim
            # (what the ShardRouter replays to a restarted worker).
            from repro.service.protocol import dumps_line, parse_line

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                dumps_line(
                    {
                        "op": "intern",
                        "id": "replay",
                        **tables.to_payload(),
                    }
                )
            )
            await writer.drain()
            echoed = parse_line(await reader.readline())
            writer.close()
            return tables, response_a, echoed

    tables, response_a, echoed = asyncio.run(scenario())
    assert response_a.granted is True
    assert echoed["id"] == "replay"
    assert echoed["tables"] == tables.to_payload()["tables"]
    assert echoed.get("error") is None
