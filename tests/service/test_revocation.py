"""Continuous authorization: subscribe, track, push-revoke (§4.2.2).

The paper's videophone scenario: a grant issued while an environment
role held must be *withdrawn* — not merely re-deniable — when that
role deactivates.  These tests pin the whole serving chain: the
``subscribe`` field / flag on both wire lanes, the PDP's
:class:`SessionGrantTable`, the server's push of unsolicited
``revoke`` messages (NDJSON op and KIND_REVOKE frame), and the
client-side dispatch to :meth:`RemotePDPClient.subscribe` handlers.
"""

from __future__ import annotations

import asyncio
import json
from datetime import datetime

import pytest

from repro.core import AccessRequest, GrbacPolicy, MediationEngine
from repro.env.runtime import EnvironmentRuntime
from repro.env.temporal import time_window
from repro.exceptions import ServiceError
from repro.service import (
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
    SessionGrant,
    SessionGrantTable,
)
from repro.service.protocol import (
    FRAME_HEADER,
    InternTables,
    WireRevocation,
    decode_binary_revocation,
    decode_revocation,
    decode_subscribe,
    encode_binary_request,
    encode_binary_revocation,
    encode_request,
    encode_revocation,
    peek_binary_subscribe,
)

EVENING = datetime(2000, 1, 17, 20, 0)  # inside free-time 19:00-22:00


def build_runtime_policy():
    """§5.1-style policy on a live simulated-clock runtime."""
    runtime = EnvironmentRuntime(start=EVENING)
    policy = GrbacPolicy()
    policy.add_subject("bobby")
    policy.add_subject_role("child")
    policy.assign_subject("bobby", "child")
    policy.add_object("den/tv")
    policy.add_object_role("entertainment")
    policy.assign_object("den/tv", "entertainment")
    runtime.define_time_role(policy, "free-time", time_window("19:00", "22:00"))
    policy.grant("child", "watch", "entertainment", "free-time")
    return runtime, policy


def make_server(**pdp_kwargs):
    runtime, policy = build_runtime_policy()
    engine = MediationEngine(policy, runtime.activator)
    pdp = PolicyDecisionPoint(engine, env_revision=runtime, **pdp_kwargs)
    return runtime, PDPServer(pdp, environment=runtime)


REQUEST = AccessRequest("watch", "den/tv", subject="bobby")


# ----------------------------------------------------------------------
# Protocol codecs
# ----------------------------------------------------------------------
def test_decode_subscribe_field() -> None:
    assert decode_subscribe({}) is False
    assert decode_subscribe({"subscribe": True}) is True
    assert decode_subscribe({"subscribe": False}) is False
    with pytest.raises(ServiceError):
        decode_subscribe({"subscribe": 1})


def test_encode_request_carries_subscribe_only_when_set() -> None:
    plain = encode_request(REQUEST, 7)
    assert "subscribe" not in plain
    subscribed = encode_request(REQUEST, 7, subscribe=True)
    assert subscribed["subscribe"] is True
    assert decode_subscribe(subscribed) is True


def test_ndjson_revocation_round_trip() -> None:
    revocation = WireRevocation(
        id=42,
        subject="bobby",
        transaction="watch",
        obj="den/tv",
        roles=("free-time",),
        reason="environment role 'free-time' deactivated",
        ts=123.5,
    )
    assert decode_revocation(encode_revocation(revocation)) == revocation


def test_ndjson_revocation_rejects_malformed() -> None:
    good = encode_revocation(
        WireRevocation(1, None, "watch", "tv", ("r",), "x", 0.0)
    )
    decoded = decode_revocation(good)
    assert decoded.subject is None
    for corrupt in (
        {**good, "transaction": 3},
        {**good, "roles": "free-time"},
        {**good, "roles": [1]},
        {**good, "subject": 5},
    ):
        with pytest.raises(ServiceError):
            decode_revocation(corrupt)


def _tables() -> InternTables:
    return InternTables(
        subjects=["bobby"],
        objects=["den/tv"],
        transactions=["watch"],
        environment_roles=["free-time", "kitchen"],
    )


def test_binary_revocation_round_trip() -> None:
    tables = _tables()
    revocation = WireRevocation(
        id=9,
        subject="bobby",
        transaction="watch",
        obj="den/tv",
        roles=("free-time", "kitchen"),
        reason="flip",
        ts=77.25,
    )
    header = FRAME_HEADER.size  # encode returns a full frame
    body = encode_binary_revocation(tables, revocation)[header:]
    assert decode_binary_revocation(tables, body) == revocation
    # Anonymous grants ride as subject id -1.
    anon = WireRevocation(9, None, "watch", "den/tv", ("kitchen",), "", 0.0)
    assert (
        decode_binary_revocation(
            tables, encode_binary_revocation(tables, anon)[header:]
        ).subject
        is None
    )


def test_binary_revocation_refuses_uninterned_names() -> None:
    tables = _tables()
    minted = WireRevocation(
        1, "bobby", "watch", "den/tv", ("minted-later",), "x", 0.0
    )
    # This is the NDJSON-fallback trigger: a role bound after the
    # intern handshake cannot ride the binary lane.
    with pytest.raises(ServiceError):
        encode_binary_revocation(tables, minted)
    with pytest.raises(ServiceError):
        decode_binary_revocation(tables, b"\x00\x01")  # truncated
    with pytest.raises(ServiceError):
        decode_binary_revocation(None, b"")  # no handshake


def test_peek_binary_subscribe_flag() -> None:
    tables = _tables()
    plain = encode_binary_request(tables, REQUEST, 3)
    flagged = encode_binary_request(tables, REQUEST, 3, subscribe=True)
    header = FRAME_HEADER.size  # precedes the body these helpers inspect
    assert peek_binary_subscribe(plain[header:]) is False
    assert peek_binary_subscribe(flagged[header:]) is True
    assert peek_binary_subscribe(b"") is False
    # The flag is a pure flags bit: body length is unchanged, so
    # pre-subscription decoders walk the same offsets.
    assert len(plain) == len(flagged)


# ----------------------------------------------------------------------
# SessionGrantTable
# ----------------------------------------------------------------------
def _grant(session, grant_id, roles=("free-time",)) -> SessionGrant:
    return SessionGrant(
        session_id=session,
        grant_id=grant_id,
        subject="bobby",
        transaction="watch",
        obj="den/tv",
        roles=frozenset(roles),
    )


def test_grant_table_register_and_revoke() -> None:
    table = SessionGrantTable()
    pushed = []
    session = object()
    table.attach_session(
        session, lambda g, roles, reason, ts: pushed.append((g, roles))
    )
    assert table.register(_grant(session, 1)) is True
    assert table.grants == 1 and table.sessions == 1
    revoked = table.revoke_role("free-time", reason="flip", ts=1.0)
    assert [g.grant_id for g in revoked] == [1]
    assert pushed and pushed[0][1] == ("free-time",)
    assert table.grants == 0
    # Already swept: a second flip finds nothing.
    assert table.revoke_role("free-time", reason="flip", ts=2.0) == []


def test_grant_table_rejects_unwatchable_grants() -> None:
    table = SessionGrantTable()
    session = object()
    table.attach_session(session, lambda *a: None)
    # No supporting roles -> nothing can ever revoke it.
    assert table.register(_grant(session, 1, roles=())) is False
    # Unattached session -> no push path.
    assert table.register(_grant(object(), 2)) is False
    assert table.grants == 0


def test_grant_table_multi_role_grant_revokes_once() -> None:
    table = SessionGrantTable()
    session = object()
    pushed = []
    table.attach_session(
        session, lambda g, roles, reason, ts: pushed.append(g.grant_id)
    )
    table.register(_grant(session, 5, roles=("free-time", "kitchen")))
    revoked = table.revoke_role("kitchen", reason="left", ts=0.0)
    assert [g.grant_id for g in revoked] == [5]
    # The other posting was unindexed with the grant: no double push.
    assert table.revoke_role("free-time", reason="flip", ts=0.0) == []
    assert pushed == [5]


def test_grant_table_detach_drops_all_postings() -> None:
    table = SessionGrantTable()
    session = object()
    table.attach_session(session, lambda *a: None)
    table.register(_grant(session, 1))
    table.register(_grant(session, 2, roles=("kitchen",)))
    assert table.grants == 2
    table.detach_session(session)
    assert table.grants == 0 and table.sessions == 0
    assert table.revoke_role("free-time", reason="flip", ts=0.0) == []


def test_grant_table_push_errors_do_not_leak() -> None:
    table = SessionGrantTable()
    session = object()

    def exploding_push(grant, roles, reason, ts):
        raise RuntimeError("connection died")

    table.attach_session(session, exploding_push)
    table.register(_grant(session, 1))
    revoked = table.revoke_role("free-time", reason="flip", ts=0.0)
    assert [g.grant_id for g in revoked] == [1]
    assert table.push_errors == 1


# ----------------------------------------------------------------------
# End-to-end: both wire lanes
# ----------------------------------------------------------------------
def _run_flip_scenario(wire: str):
    async def scenario():
        runtime, server = make_server()
        async with server:
            client = await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire=wire
            )
            received = asyncio.Event()
            client.subscribe(lambda r: received.set())
            response = await client.decide(REQUEST, subscribe=True)
            assert response.outcome is PDPOutcome.GRANT
            assert server.pdp.grants.grants == 1
            # 20:00 + 3h = 23:00 crosses the 22:00 boundary; the env
            # op answers only after revocations are queued.
            out = await client.env("advance", seconds=3 * 3600)
            assert out["active"] == []
            await asyncio.wait_for(received.wait(), timeout=2.0)
            revocations = list(client.revocations)
            metrics = server.pdp.metrics.snapshot()
            await client.close()
            return revocations, metrics

    return asyncio.run(scenario())


@pytest.mark.parametrize("wire", ["json", "binary"])
def test_flip_pushes_revocation(wire: str) -> None:
    revocations, metrics = _run_flip_scenario(wire)
    assert len(revocations) == 1
    revocation = revocations[0]
    assert revocation.subject == "bobby"
    assert revocation.transaction == "watch"
    assert revocation.obj == "den/tv"
    assert revocation.roles == ("free-time",)
    assert "free-time" in revocation.reason
    assert revocation.ts > 0.0
    assert metrics["counters"]["pdp.revocations"] == 1
    assert metrics["histograms"]["pdp.revocation_latency"]["count"] == 1


def test_unsubscribed_and_overridden_grants_are_not_watched() -> None:
    async def scenario():
        runtime, server = make_server()
        async with server:
            client = await RemotePDPClient.connect("127.0.0.1", server.port)
            # Plain grant: no subscribe field.
            plain = await client.decide(REQUEST)
            # Explicit env override: resolved against the caller's
            # claimed roles, not the live environment — never watched
            # even with subscribe set.
            overridden = await client.decide(
                REQUEST,
                environment_roles={"free-time"},
                subscribe=True,
            )
            # A deny registers nothing either.
            denied = await client.decide(
                AccessRequest("watch", "den/tv", subject="nobody"),
                subscribe=True,
            )
            table_size = server.pdp.grants.grants
            await client.env("advance", seconds=3 * 3600)
            await asyncio.sleep(0.1)
            revocations = list(client.revocations)
            await client.close()
            return plain, overridden, denied, table_size, revocations

    plain, overridden, denied, table_size, revocations = asyncio.run(
        scenario()
    )
    assert plain.outcome is PDPOutcome.GRANT
    assert overridden.outcome is PDPOutcome.GRANT
    assert denied.outcome is not PDPOutcome.GRANT
    assert table_size == 0
    assert revocations == []


def test_disconnect_detaches_session() -> None:
    async def scenario():
        runtime, server = make_server()
        async with server:
            client = await RemotePDPClient.connect("127.0.0.1", server.port)
            await client.decide(REQUEST, subscribe=True)
            assert server.pdp.grants.sessions == 1
            await client.close()
            for _ in range(50):
                if server.pdp.grants.sessions == 0:
                    break
                await asyncio.sleep(0.02)
            sessions, grants = (
                server.pdp.grants.sessions,
                server.pdp.grants.grants,
            )
            # The flip after disconnect must sweep nothing and push
            # nowhere (no dead-connection writes).
            runtime.clock.advance(hours=3)
            return sessions, grants, server.pdp.grants.push_errors

    sessions, grants, push_errors = asyncio.run(scenario())
    assert sessions == 0 and grants == 0
    assert push_errors == 0


def test_binary_lane_falls_back_to_ndjson_revoke(monkeypatch) -> None:
    """A withdrawal that cannot ride the binary lane still arrives.

    The real trigger is a role minted after the intern handshake;
    simulated here by making the binary encoder refuse outright.  The
    client's per-message format detection picks the NDJSON push off a
    binary connection.
    """

    def refuse(tables, revocation):
        raise ServiceError("uninterned name")

    monkeypatch.setattr(
        "repro.service.server.encode_binary_revocation", refuse
    )

    async def scenario():
        runtime, server = make_server()
        async with server:
            client = await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire="binary"
            )
            received = asyncio.Event()
            client.subscribe(lambda r: received.set())
            await client.decide(REQUEST, subscribe=True)
            await client.env("advance", seconds=3 * 3600)
            await asyncio.wait_for(received.wait(), timeout=2.0)
            revocations = list(client.revocations)
            await client.close()
            return revocations

    revocations = asyncio.run(scenario())
    assert revocations and revocations[0].roles == ("free-time",)
    assert revocations[0].subject == "bobby"


def test_env_op_refuses_without_continuous_runtime(tv_policy) -> None:
    async def scenario():
        engine = MediationEngine(tv_policy)
        server = PDPServer(PolicyDecisionPoint(engine))
        async with server:
            client = await RemotePDPClient.connect("127.0.0.1", server.port)
            with pytest.raises(ServiceError, match="continuous"):
                await client.env("advance", seconds=1)
            await client.close()

    asyncio.run(scenario())


def test_env_op_set_and_move_drive_revocations() -> None:
    async def scenario():
        runtime, policy = build_runtime_policy()
        policy.add_environment_role("in-kitchen")
        runtime.define_location_role(policy, "in-kitchen", "bobby", "kitchen")
        policy.add_transaction("call")
        policy.add_object("videophone")
        policy.add_object_role("comms")
        policy.assign_object("videophone", "comms")
        policy.grant("child", "call", "comms", "in-kitchen")
        engine = MediationEngine(policy, runtime.activator)
        pdp = PolicyDecisionPoint(engine, env_revision=runtime)
        server = PDPServer(pdp, environment=runtime)
        async with server:
            client = await RemotePDPClient.connect("127.0.0.1", server.port)
            received = asyncio.Event()
            client.subscribe(lambda r: received.set())
            await client.env_move("bobby", "kitchen")
            call = await client.decide(
                AccessRequest("call", "videophone", subject="bobby"),
                subscribe=True,
            )
            assert call.outcome is PDPOutcome.GRANT
            # The hangup: bobby leaves the kitchen mid-call.
            out = await client.env_move("bobby", "den")
            assert "in-kitchen" not in out["active"]
            await asyncio.wait_for(received.wait(), timeout=2.0)
            revocations = list(client.revocations)
            await client.close()
            return revocations

    revocations = asyncio.run(scenario())
    assert len(revocations) == 1
    assert revocations[0].roles == ("in-kitchen",)
    assert revocations[0].transaction == "call"


def test_raw_ndjson_revoke_schema() -> None:
    """The on-wire push is a self-describing NDJSON object."""

    async def scenario():
        runtime, server = make_server()
        async with server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            payload = encode_request(REQUEST, 1, subscribe=True)
            writer.write(
                (json.dumps(payload) + "\n").encode()
            )
            await writer.drain()
            await reader.readline()  # the decision
            runtime.clock.advance(hours=3)
            line = await asyncio.wait_for(reader.readline(), timeout=2.0)
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

    raw = asyncio.run(scenario())
    assert raw["op"] == "revoke"
    assert raw["id"] == 1
    assert raw["subject"] == "bobby"
    assert raw["object"] == "den/tv"
    assert raw["roles"] == ["free-time"]
    assert isinstance(raw["ts"], float)
