"""End-to-end tests for the NDJSON TCP transport."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import AccessRequest, MediationEngine
from repro.exceptions import ServiceError
from repro.service import (
    PDPConfig,
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)
from repro.service.protocol import (
    MAX_LINE_BYTES,
    decode_request,
    decode_response,
    dumps_line,
    encode_request,
    parse_line,
)


def make_server(policy, **config) -> PDPServer:
    engine = MediationEngine(policy)
    return PDPServer(PolicyDecisionPoint(engine, PDPConfig(**config)))


def test_round_trip_grant_and_deny(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port
            ) as client:
                granted = await client.check(
                    "alice", "watch", "livingroom/tv",
                    environment_roles={"free-time"},
                )
                denied = await client.check(
                    "alice", "watch", "livingroom/tv",
                    environment_roles=set(),
                )
                return granted, denied

    granted, denied = asyncio.run(scenario())
    assert granted is True
    assert denied is False


def test_wire_response_carries_service_metadata(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port
            ) as client:
                request = AccessRequest("watch", "livingroom/tv", subject="alice")
                first = await client.decide(
                    request, environment_roles={"free-time"}
                )
                second = await client.decide(
                    request, environment_roles={"free-time"}
                )
                return first, second

    first, second = asyncio.run(scenario())
    assert first.outcome is PDPOutcome.GRANT
    assert not first.cached and first.batch_size >= 1
    assert second.cached and second.batch_size == 0
    assert second.latency_us >= 0.0
    assert "grant" in first.rationale or first.rationale


def test_pipelined_requests_on_one_connection(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy, cache_size=0) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port
            ) as client:
                request = AccessRequest("watch", "livingroom/tv", subject="alice")
                responses = await asyncio.gather(
                    *(
                        client.decide(request, environment_roles={"free-time"})
                        for _ in range(40)
                    )
                )
                return responses

    responses = asyncio.run(scenario())
    assert all(r.outcome is PDPOutcome.GRANT for r in responses)
    # Concurrent wire requests really coalesce into micro-batches.
    assert max(r.batch_size for r in responses) > 1


def test_ping_and_stats_ops(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port
            ) as client:
                alive = await client.ping()
                await client.check(
                    "alice", "watch", "livingroom/tv",
                    environment_roles={"free-time"},
                )
                stats = await client.stats()
                return alive, stats

    alive, stats = asyncio.run(scenario())
    assert alive is True
    assert stats["requests"] == 1
    assert stats["running"] is True
    assert "cache" in stats


def test_malformed_lines_keep_the_connection_alive(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                error_line = json.loads(await reader.readline())
                # Bad request body: error echoes the id.
                writer.write(dumps_line({"id": 9, "transaction": 42}))
                await writer.drain()
                bad_request = json.loads(await reader.readline())
                # The stream still works afterwards.
                writer.write(
                    dumps_line(
                        encode_request(
                            AccessRequest(
                                "watch", "livingroom/tv", subject="alice"
                            ),
                            request_id=10,
                            env=frozenset({"free-time"}),
                        )
                    )
                )
                await writer.drain()
                good = json.loads(await reader.readline())
                return error_line, bad_request, good
            finally:
                writer.close()
                await writer.wait_closed()

    error_line, bad_request, good = asyncio.run(scenario())
    assert "error" in error_line
    assert bad_request["id"] == 9 and "error" in bad_request
    assert good["id"] == 10 and good["granted"] is True


def test_unknown_op_reports_error(tv_policy) -> None:
    async def scenario():
        async with make_server(tv_policy) as server:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(dumps_line({"op": "reboot", "id": 1}))
                await writer.drain()
                return json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()

    payload = asyncio.run(scenario())
    assert payload["id"] == 1
    assert "unknown op" in payload["error"]


def test_server_stop_fails_pending_client_calls(tv_policy) -> None:
    async def scenario():
        server = make_server(tv_policy)
        await server.start()
        client = await RemotePDPClient.connect("127.0.0.1", server.port)
        try:
            assert await client.ping()
            await server.stop()
            with pytest.raises(ServiceError):
                await client.check(
                    "alice", "watch", "livingroom/tv",
                    environment_roles={"free-time"},
                )
        finally:
            await client.close()

    asyncio.run(scenario())


def test_protocol_codec_round_trip() -> None:
    request = AccessRequest(
        "watch",
        "livingroom/tv",
        subject="alice",
        role_claims={"child": 0.98},
        identity_confidence=0.75,
    )
    payload = parse_line(
        dumps_line(
            encode_request(
                request, request_id=3,
                env=frozenset({"free-time"}), timeout_ms=250,
            )
        ).strip()
    )
    request_id, decoded, env, timeout_s = decode_request(payload)
    assert request_id == 3
    assert decoded == request
    assert env == frozenset({"free-time"})
    assert timeout_s == pytest.approx(0.25)


def test_protocol_rejects_oversized_and_invalid_lines() -> None:
    with pytest.raises(ServiceError):
        parse_line(b"x" * (MAX_LINE_BYTES + 1))
    with pytest.raises(ServiceError):
        parse_line(b"[1, 2, 3]")  # not an object
    with pytest.raises(ServiceError):
        decode_request({"id": 1, "transaction": "watch"})  # no object
    with pytest.raises(ServiceError):
        decode_response({"id": 1, "error": "nope"})
    with pytest.raises(ServiceError):
        decode_response({"id": 1, "outcome": "maybe"})
