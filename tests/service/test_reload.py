"""Hot-reload through the PDP: atomic swap, generation keying, wiring.

The tentpole guarantees under test:

* a swap is atomic — in-flight micro-batches complete against the old
  engine, later batches see only the new one, and no request ever
  errors because a reload happened underneath it;
* pre-swap cache entries can never answer post-swap traffic, even when
  the two policies share a ``decision_revision`` (the generation
  component makes the keys disjoint by construction);
* a candidate that fails validation leaves the old policy serving,
  with an audited rejection;
* the ``reload`` wire op and ``POST /reload`` admin endpoint drive the
  same administrator.
"""

from __future__ import annotations

import asyncio
import json

from repro.core import AccessRequest, GrbacPolicy, MediationEngine
from repro.policy.admin import PolicyAdministrator
from repro.policy.templates import install_figure2_roles
from repro.service import (
    AdminServer,
    PDPConfig,
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
)

REQUEST = AccessRequest("watch", "livingroom/tv", subject="alice")
ENV = {"free-time"}


def run(coroutine):
    return asyncio.run(coroutine)


def make_pdp(policy, **config) -> PolicyDecisionPoint:
    return PolicyDecisionPoint(MediationEngine(policy), PDPConfig(**config))


def build_tv_policy(grant: bool) -> GrbacPolicy:
    """A tv_policy twin whose §5.1 rule is a grant or a deny.

    Built through identical mutation sequences, so both versions end at
    the *same* ``decision_revision`` — the collision case the cache-key
    generation component exists for.
    """
    policy = GrbacPolicy("tv")
    install_figure2_roles(policy)
    for subject, role in [("alice", "child"), ("bobby", "child")]:
        policy.add_subject(subject)
        policy.assign_subject(subject, role)
    policy.add_object("livingroom/tv")
    policy.add_object_role("entertainment-devices")
    policy.assign_object("livingroom/tv", "entertainment-devices")
    policy.add_environment_role("free-time")
    if grant:
        policy.grant("child", "watch", "entertainment-devices", "free-time")
    else:
        policy.deny("child", "watch", "entertainment-devices", "free-time")
    return policy


# ----------------------------------------------------------------------
# Generation keying
# ----------------------------------------------------------------------
def test_equal_revision_policies_cannot_share_cache_entries() -> None:
    old = build_tv_policy(grant=True)
    new = build_tv_policy(grant=False)
    assert old.decision_revision == new.decision_revision  # the trap

    pdp = make_pdp(old)

    async def scenario():
        async with pdp:
            before = await pdp.submit(REQUEST, environment_roles=ENV)
            warmed = await pdp.submit(REQUEST, environment_roles=ENV)
            pdp.swap_policy(new)
            after = await pdp.submit(REQUEST, environment_roles=ENV)
        return before, warmed, after

    before, warmed, after = run(scenario())
    assert before.granted is True
    assert warmed.cached is True  # the stale entry really was there
    # Same request, same revision number — but the generation moved,
    # so the pre-swap grant cannot be served for the deny policy.
    assert after.cached is False
    assert after.granted is False


def test_swap_bumps_generation_and_stats() -> None:
    pdp = make_pdp(build_tv_policy(grant=True))
    generation = pdp.swap_policy(build_tv_policy(grant=True))
    assert generation == pdp.generation == 1
    stats = pdp.stats()
    assert stats["generation"] == 1
    assert stats["reloads"] == 1
    assert pdp.health()["generation"] == 1


def test_swap_preserves_engine_configuration() -> None:
    policy = build_tv_policy(grant=True)
    engine = MediationEngine(
        policy, confidence_threshold=0.25, mode="indexed", cache_size=16
    )
    veto = lambda ctx: None  # noqa: E731
    engine.decision_constraints.append(veto)
    pdp = PolicyDecisionPoint(engine, PDPConfig())
    pdp.swap_policy(build_tv_policy(grant=True))
    swapped = pdp.engine
    assert swapped is not engine
    assert swapped.confidence_threshold == 0.25
    assert swapped.mode == "indexed"
    assert swapped.cache_size == 16
    assert swapped.decision_constraints == [veto]


# ----------------------------------------------------------------------
# Atomicity under in-flight work
# ----------------------------------------------------------------------
def test_inflight_batch_completes_on_old_policy() -> None:
    """A batch already handed to the engine is decided by *that* engine.

    The batcher is parked inside ``_decide`` (the documented offload
    hook) while a swap lands; the parked batch must come back with the
    old policy's answer, and the very next request must see the new
    policy's.
    """
    old = build_tv_policy(grant=True)
    new = build_tv_policy(grant=False)
    engine = MediationEngine(old)
    pdp = PolicyDecisionPoint(engine, PDPConfig(cache_size=0))
    entered = asyncio.Event()
    release = asyncio.Event()
    original = PolicyDecisionPoint._decide

    async def gated(self, requests, env_overrides, engine=None):
        entered.set()
        await release.wait()
        return await original(self, requests, env_overrides, engine)

    pdp._decide = gated.__get__(pdp)

    async def scenario():
        async with pdp:
            inflight = asyncio.create_task(
                pdp.submit(REQUEST, environment_roles=ENV)
            )
            # Wait until the batcher holds the request inside _decide.
            await asyncio.wait_for(entered.wait(), timeout=2.0)
            pdp.swap_policy(new)
            release.set()
            before = await inflight
            after = await pdp.submit(REQUEST, environment_roles=ENV)
        return before, after

    before, after = run(scenario())
    assert before.outcome is PDPOutcome.GRANT  # old engine's answer
    assert after.outcome is PDPOutcome.DENY  # new engine's answer


def test_reload_under_concurrent_traffic_never_errors() -> None:
    """Swaps landing mid-stream: every answer is a clean GRANT/DENY."""
    versions = [build_tv_policy(grant=True), build_tv_policy(grant=False)]
    pdp = make_pdp(versions[0], max_batch=8)
    admin = PolicyAdministrator(pdp)

    async def scenario():
        async with pdp:
            responses = []
            for wave in range(10):
                tasks = [
                    asyncio.create_task(
                        pdp.submit(REQUEST, environment_roles=ENV)
                    )
                    for _ in range(16)
                ]
                # Swap while the wave is in flight.
                pdp.swap_policy(versions[(wave + 1) % 2])
                responses.extend(await asyncio.gather(*tasks))
            return responses

    responses = run(scenario())
    assert len(responses) == 160
    assert all(
        r.outcome in (PDPOutcome.GRANT, PDPOutcome.DENY) for r in responses
    )
    assert pdp.stats()["errors"] == 0
    assert pdp.generation == 10
    assert admin.audit.stats()["attempts"] == 0  # direct swaps, no admin


# ----------------------------------------------------------------------
# Wire op
# ----------------------------------------------------------------------
NEW_RULE_DSL = """
subject role family-member
subject role parent extends family-member
subject role child extends family-member
object role entertainment-devices
environment role free-time
subject alice is child
subject grandma is parent
object livingroom/tv is entertainment-devices
allow child to watch on entertainment-devices when free-time
allow parent to watch on entertainment-devices
"""


def test_reload_wire_op_swaps_and_reports(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    administrator = PolicyAdministrator(pdp)

    async def scenario():
        async with PDPServer(pdp, administrator=administrator) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port
            ) as client:
                dry = await client.reload(
                    NEW_RULE_DSL, actor="wire-test", dry_run=True
                )
                applied = await client.reload(NEW_RULE_DSL, actor="wire-test")
                granted = await client.check(
                    "grandma", "watch", "livingroom/tv",
                    environment_roles=set(),
                )
                rejected = await client.reload("broken ???", actor="wire-test")
        return dry, applied, granted, rejected

    dry, applied, granted, rejected = run(scenario())
    assert dry["accepted"] is False and dry["dry_run"] is True
    assert dry["error"] == ""
    assert applied["accepted"] is True
    assert applied["record"]["actor"] == "wire-test"
    assert applied["record"]["generation"] == 1
    assert granted is True  # the new rule is live
    assert rejected["accepted"] is False
    assert "parse error" in rejected["error"]
    assert administrator.audit.stats() == {
        "attempts": 3,
        "accepted": 1,
        "rejected": 1,
        "retained": 3,
    }


def test_reload_wire_op_without_administrator_errors(tv_policy) -> None:
    pdp = make_pdp(tv_policy)

    async def scenario():
        async with PDPServer(pdp) as server:
            async with await RemotePDPClient.connect(
                "127.0.0.1", server.port
            ) as client:
                try:
                    await client.reload(NEW_RULE_DSL)
                except Exception as error:  # noqa: BLE001
                    return str(error)
        return None

    message = run(scenario())
    assert message is not None and "not enabled" in message


# ----------------------------------------------------------------------
# Admin HTTP endpoint
# ----------------------------------------------------------------------
async def _http(port: int, request: bytes) -> "tuple[int, bytes]":
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n", 1)[0].split()[1])
    return status, body


def _post_reload(body: bytes, target: str = "/reload") -> bytes:
    return (
        f"POST {target} HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("ascii") + body


def test_http_reload_endpoint(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    administrator = PolicyAdministrator(pdp)

    async def scenario():
        async with AdminServer(pdp, administrator=administrator) as admin:
            ok = await _http(
                admin.port,
                _post_reload(
                    NEW_RULE_DSL.encode(), "/reload?actor=curl&dry_run=1"
                ),
            )
            applied = await _http(
                admin.port, _post_reload(NEW_RULE_DSL.encode())
            )
            bad = await _http(admin.port, _post_reload(b"broken ???"))
            empty = await _http(admin.port, _post_reload(b""))
            get = await _http(
                admin.port, b"GET /reload HTTP/1.1\r\nHost: x\r\n\r\n"
            )
        return ok, applied, bad, empty, get

    ok, applied, bad, empty, get = run(scenario())
    status, body = ok
    payload = json.loads(body)
    assert status == 200
    assert payload["dry_run"] is True and payload["error"] == ""
    assert payload["record"]["actor"] == "curl"

    status, body = applied
    assert status == 200 and json.loads(body)["accepted"] is True
    assert pdp.generation == 1

    status, body = bad
    assert status == 422
    assert "parse error" in json.loads(body)["error"]
    assert pdp.generation == 1  # rejection did not touch the policy

    assert empty[0] == 400
    assert get[0] == 405


def test_http_reload_404_without_administrator(tv_policy) -> None:
    pdp = make_pdp(tv_policy)

    async def scenario():
        async with AdminServer(pdp) as admin:
            return await _http(
                admin.port, _post_reload(NEW_RULE_DSL.encode())
            )

    status, _body = run(scenario())
    assert status == 404
