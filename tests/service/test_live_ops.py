"""End-to-end tests for the PDP's live-ops surface (PR 4).

Covers the new wire ops (``metrics``/``health``/``ready``/``dump``),
the HTTP admin sidecar, trace export with head sampling, flight
recording, request-id propagation from the wire into spans and flight
entries, and the audit-log/trace-export join on ``request_id``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import AccessRequest, AuditLog, MediationEngine
from repro.obs import InMemoryTraceSink, SloTracker, parse_prometheus
from repro.service import (
    AdminServer,
    LoadgenConfig,
    PDPClient,
    PDPConfig,
    PDPOutcome,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
    build_stream,
    run_loadgen,
)


def make_pdp(policy, *, sink=None, slo=None, **config) -> PolicyDecisionPoint:
    engine = MediationEngine(policy)
    return PolicyDecisionPoint(
        engine, PDPConfig(**config), trace_sink=sink, slo=slo
    )


async def drive(client, n: int = 6) -> None:
    """A little mixed traffic: grants and denies."""
    for i in range(n):
        subject = "alice" if i % 2 == 0 else "bobby"
        env = {"free-time"} if i % 3 != 2 else set()
        await client.check(
            subject, "watch", "livingroom/tv", environment_roles=env
        )


class TestWireOps:
    def test_metrics_op_returns_parseable_exposition(self, tv_policy):
        async def scenario():
            async with PDPServer(make_pdp(tv_policy)) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await drive(client)
                    return await client.metrics()

        metrics = asyncio.run(scenario())
        families = parse_prometheus(metrics["prometheus"])
        assert families["grbac_pdp_requests_total"][0][1] == 6.0
        # The scrape is the whole stack: engine counters, PDP gauges,
        # latency histograms, and the SLO objectives.
        assert "grbac_pdp_running" in families
        assert "grbac_slo_availability_ratio" in families
        assert "grbac_pdp_latency_seconds_bucket" in families
        assert metrics["json"]["counters"]["pdp.requests"] == 6

    def test_health_op_reports_policy_and_slo(self, tv_policy):
        async def scenario():
            async with PDPServer(make_pdp(tv_policy)) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await drive(client)
                    return await client.health()

        health = asyncio.run(scenario())
        assert health["healthy"] is True
        assert health["policy"] == "tv"
        assert health["slo"]["availability"]["ratio"] == 1.0
        assert health["slo"]["healthy"] is True

    def test_ready_op_and_stopped_pdp(self, tv_policy):
        async def scenario():
            pdp = make_pdp(tv_policy)
            async with PDPServer(pdp) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    ready_live = await client.ready()
            ready_stopped = pdp.ready()
            return ready_live, ready_stopped

        ready_live, ready_stopped = asyncio.run(scenario())
        assert ready_live["ready"] is True
        assert ready_stopped["ready"] is False

    def test_dump_op_with_cursor_and_filters(self, tv_policy):
        async def scenario():
            async with PDPServer(make_pdp(tv_policy)) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await drive(client)
                    everything = await client.dump()
                    cursor = everything[-1]["seq"]
                    nothing = await client.dump(since_seq=cursor)
                    alice_only = await client.dump(subject="alice")
                    limited = await client.dump(limit=2)
                    return everything, nothing, alice_only, limited

        everything, nothing, alice_only, limited = asyncio.run(scenario())
        assert len(everything) == 6
        assert nothing == []
        assert {e["subject"] for e in alice_only} == {"alice"}
        assert len(limited) == 2
        assert limited[-1]["seq"] == everything[-1]["seq"]

    def test_dump_op_validates_parameters(self, tv_policy):
        async def scenario():
            async with PDPServer(make_pdp(tv_policy)) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    json.dumps({"op": "dump", "id": 1, "limit": "five"}).encode()
                    + b"\n"
                )
                await writer.drain()
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return json.loads(line)

        reply = asyncio.run(scenario())
        assert "error" in reply
        assert reply["id"] == 1


class TestRequestIdPropagation:
    def test_wire_id_reaches_flight_and_spans(self, tv_policy):
        sink = InMemoryTraceSink()
        pdp = make_pdp(tv_policy, sink=sink, trace_sample_rate=1.0)

        async def scenario():
            async with PDPServer(pdp) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    response = await client.check(
                        "alice", "watch", "livingroom/tv",
                        environment_roles={"free-time"},
                    )
                    return response

        asyncio.run(scenario())
        # The remote client numbers requests from 1; that id must
        # surface in both the flight entry and the exported span.
        entries = pdp.flight.dump()
        assert entries[0]["request_id"] == 1
        assert sink.spans[0]["request_id"] == 1
        assert sink.spans[0]["subject"] == "alice"
        assert sink.spans[0]["granted"] is True
        assert sink.spans[0]["stages"]  # live decision: real stages

    def test_cached_hit_exports_cached_mode_span(self, tv_policy):
        sink = InMemoryTraceSink()
        pdp = make_pdp(tv_policy, sink=sink, trace_sample_rate=1.0)

        async def scenario():
            async with pdp:
                client = PDPClient(pdp)
                request = AccessRequest(
                    transaction="watch", obj="livingroom/tv", subject="alice"
                )
                first = await client.decide(
                    request, environment_roles={"free-time"}
                )
                second = await client.decide(
                    request, environment_roles={"free-time"}
                )
                return first, second

        first, second = asyncio.run(scenario())
        assert not first.cached and second.cached
        assert len(sink.spans) == 2
        assert sink.spans[0]["mode"] != "cached"
        assert sink.spans[1]["mode"] == "cached"
        assert sink.spans[1]["request_id"] == second.request_id
        # Reconstructed span: same decision facts, no stage timings.
        assert sink.spans[1]["granted"] is True
        assert sink.spans[1]["total_us"] is None

    def test_sampling_rate_limits_exported_spans(self, tv_policy):
        sink = InMemoryTraceSink()
        pdp = make_pdp(
            tv_policy, sink=sink, trace_sample_rate=0.25, cache_size=0
        )

        async def scenario():
            async with pdp:
                client = PDPClient(pdp)
                await drive(client, n=8)

        asyncio.run(scenario())
        assert len(sink.spans) == 2  # deterministic: ceil-free 8 * 0.25
        assert pdp.sampler.seen == 8
        assert pdp.sampler.sampled == 2

    def test_traced_and_plain_requests_agree(self, tv_policy):
        """Sampled requests take the individual traced path; their
        answers must match the batch path exactly."""
        sink = InMemoryTraceSink()
        config = LoadgenConfig(requests=60, concurrency=8, seed=3)
        stream = build_stream(tv_policy, config)

        async def run_with(rate):
            pdp = make_pdp(
                tv_policy, sink=sink if rate else None,
                trace_sample_rate=rate, cache_size=0,
            )
            async with pdp:
                outcomes = []
                client = PDPClient(pdp)
                for item in stream:
                    response = await client.decide(
                        item.request,
                        environment_roles=set(item.active_environment_roles),
                    )
                    outcomes.append(response.granted)
                return outcomes

        async def scenario():
            return await run_with(0.0), await run_with(0.5)

        plain, traced = asyncio.run(scenario())
        assert plain == traced
        assert len(sink.spans) == 30


class TestSloIntegration:
    def test_sheds_surface_in_slo_and_health(self, tv_policy):
        class Clock:
            t = 0.0

            def __call__(self):
                return self.t

        slo = SloTracker(clock=Clock())
        pdp = make_pdp(tv_policy, slo=slo, max_queue=1, max_batch=1)

        async def scenario():
            async with pdp:
                client = PDPClient(pdp)
                # Saturate: the queue holds one; concurrent extras shed.
                results = await asyncio.gather(
                    *(
                        client.check(
                            "alice", "watch", "livingroom/tv",
                            environment_roles={"free-time"},
                        )
                        for _ in range(12)
                    )
                )
                return results

        asyncio.run(scenario())
        assert pdp.stats()["shed"] > 0
        snapshot = slo.snapshot()
        total = snapshot["availability"]["window_total"]
        good = snapshot["availability"]["window_good"]
        assert total == 12
        assert total - good == pdp.stats()["shed"]


class TestAdminServer:
    async def _get(self, port: int, target: str) -> "tuple[int, str, bytes]":
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: x\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        head_lines = head.decode("latin-1").split("\r\n")
        status = int(head_lines[0].split()[1])
        content_type = ""
        for line in head_lines[1:]:
            name, _, value = line.partition(":")
            if name.lower() == "content-type":
                content_type = value.strip()
        return status, content_type, body

    def test_routes(self, tv_policy):
        pdp = make_pdp(tv_policy)

        async def scenario():
            async with PDPServer(pdp) as server:
                async with AdminServer(pdp) as admin:
                    async with await RemotePDPClient.connect(
                        "127.0.0.1", server.port
                    ) as client:
                        await drive(client)
                    results = {
                        "metrics": await self._get(admin.port, "/metrics"),
                        "json": await self._get(admin.port, "/metrics.json"),
                        "health": await self._get(admin.port, "/health"),
                        "ready": await self._get(admin.port, "/ready"),
                        "dump": await self._get(
                            admin.port, "/dump?limit=3&subject=alice"
                        ),
                        "missing": await self._get(admin.port, "/nope"),
                        "bad": await self._get(admin.port, "/dump?limit=x"),
                    }
                    return results

        results = asyncio.run(scenario())
        status, content_type, body = results["metrics"]
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        families = parse_prometheus(body.decode("utf-8"))
        assert families["grbac_pdp_requests_total"][0][1] == 6.0

        status, content_type, body = results["json"]
        assert status == 200 and content_type == "application/json"
        assert json.loads(body)["counters"]["pdp.requests"] == 6

        status, _, body = results["health"]
        assert status == 200 and json.loads(body)["healthy"] is True

        status, _, body = results["ready"]
        assert status == 200 and json.loads(body)["ready"] is True

        status, _, body = results["dump"]
        entries = json.loads(body)["entries"]
        assert status == 200
        assert 0 < len(entries) <= 3
        assert all(e["subject"] == "alice" for e in entries)

        assert results["missing"][0] == 404
        assert results["bad"][0] == 400

    def test_not_ready_is_503(self, tv_policy):
        pdp = make_pdp(tv_policy)

        async def scenario():
            async with AdminServer(pdp) as admin:
                # PDP never started: liveness and readiness both fail.
                return (
                    await self._get(admin.port, "/ready"),
                    await self._get(admin.port, "/health"),
                )

        (ready_status, _, ready_body), (health_status, _, _) = asyncio.run(
            scenario()
        )
        assert ready_status == 503
        assert json.loads(ready_body)["ready"] is False
        assert health_status == 503

    def test_post_is_rejected(self, tv_policy):
        pdp = make_pdp(tv_policy)

        async def scenario():
            async with AdminServer(pdp) as admin:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", admin.port
                )
                writer.write(b"POST /metrics HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                return raw

        raw = asyncio.run(scenario())
        assert b"405" in raw.split(b"\r\n", 1)[0]


class TestAuditTraceJoin:
    def test_audit_records_join_exported_spans_on_request_id(self, tv_policy):
        """The §5.1 scenario, served: every audited decision and every
        exported span for the same request carry the same id."""
        sink = InMemoryTraceSink()
        pdp = make_pdp(
            tv_policy, sink=sink, trace_sample_rate=1.0, cache_size=0
        )
        audit = AuditLog()

        async def scenario():
            async with PDPServer(pdp) as server:
                async with await RemotePDPClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    # §5.1: children may watch entertainment devices
                    # during free time — and not outside it.
                    for subject, env in [
                        ("alice", {"free-time"}),
                        ("bobby", {"free-time"}),
                        ("alice", set()),
                    ]:
                        await client.check(
                            subject, "watch", "livingroom/tv",
                            environment_roles=env,
                        )

        asyncio.run(scenario())
        # The PDP decided each request with trace=True; audit the same
        # decisions (the flight recorder pairs ids with outcomes, the
        # engine's decisions carry the traces).
        for entry in pdp.flight.dump():
            assert entry["request_id"] is not None

        # Rebuild the audit log from the traced decisions the engine
        # produced: decide() again in trace mode mirrors what an
        # auditing PEP does with the PDP's decision objects.
        spans_by_id = {span["request_id"]: span for span in sink.spans}
        assert len(spans_by_id) == 3

        engine = pdp.engine
        for request_id, span in sorted(spans_by_id.items()):
            decision = engine.decide(
                AccessRequest(
                    transaction=span["transaction"],
                    obj=span["object"],
                    subject=span["subject"],
                ),
                environment_roles=set(span["environment_roles"]),
                trace=True,
            )
            decision.trace.request_id = request_id
            audit.record(decision)

        exported = [
            json.loads(line)
            for line in audit.export_jsonl().splitlines()
        ]
        assert [record["request_id"] for record in exported] == [1, 2, 3]

        # The join: for every audit record there is exactly one span
        # with the same request_id, and they agree on the facts.
        for record in exported:
            span = spans_by_id[record["request_id"]]
            assert span["subject"] == record["subject"]
            assert span["granted"] == record["granted"]
            assert span["environment_roles"] == record["environment_roles"]

    def test_audit_record_without_trace_has_no_request_id(self, tv_policy):
        engine = MediationEngine(tv_policy)
        audit = AuditLog()
        decision = engine.decide(
            AccessRequest(
                transaction="watch", obj="livingroom/tv", subject="alice"
            ),
            environment_roles={"free-time"},
        )
        record = audit.record(decision)
        assert record.request_id is None
        assert json.loads(audit.export_jsonl())["request_id"] is None


class TestLoadgenAttribution:
    def test_mismatches_carry_request_ids(self, tv_policy):
        config = LoadgenConfig(requests=20, concurrency=4, seed=1)
        stream = build_stream(tv_policy, config)
        # Deliberately inverted expectations: every mediated answer is
        # a "mismatch", and each must be attributed to a request id.
        engine = MediationEngine(tv_policy)
        wrong = [
            not engine.decide(
                item.request,
                environment_roles=set(item.active_environment_roles),
            ).granted
            for item in stream
        ]

        async def scenario():
            pdp = make_pdp(tv_policy, cache_size=0)
            async with pdp:
                return await run_loadgen(
                    PDPClient(pdp), stream, config, expected=wrong
                )

        result = asyncio.run(scenario())
        assert result.mismatches == len(stream)
        assert len(result.mismatch_request_ids) == result.mismatches
        assert all(i is not None for i in result.mismatch_request_ids)
        assert not result.ok
        assert "request ids" in result.describe()

    def test_p95_in_report_dict(self, tv_policy):
        config = LoadgenConfig(requests=10, concurrency=2, seed=1)
        stream = build_stream(tv_policy, config)

        async def scenario():
            pdp = make_pdp(tv_policy)
            async with pdp:
                return await run_loadgen(PDPClient(pdp), stream, config)

        result = asyncio.run(scenario())
        data = result.to_dict()
        assert "latency_p95_us" in data
        assert data["latency_p50_us"] <= data["latency_p95_us"] <= (
            data["latency_p99_us"] + 1e-9
        )
