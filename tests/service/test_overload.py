"""Backpressure: overload is explicit, bounded, and never a grant.

The batcher is parked on an event (via the overridable ``_decide``
hook) so the admission queue fills deterministically — no timing
races, no real load needed.  Every scenario releases the gate in a
``finally`` so a failing assertion can never deadlock the drain.
"""

from __future__ import annotations

import asyncio

from repro.core import AccessRequest, MediationEngine
from repro.service import PDPConfig, PDPOutcome, PolicyDecisionPoint

REQUEST = AccessRequest("watch", "livingroom/tv", subject="alice")
ENV = {"free-time"}


def parked_pdp(policy, release: asyncio.Event, **config) -> PolicyDecisionPoint:
    """A PDP whose batcher blocks until ``release`` is set."""
    engine = MediationEngine(policy)
    pdp = PolicyDecisionPoint(engine, PDPConfig(cache_size=0, **config))
    original = PolicyDecisionPoint._decide

    async def gated(self, requests, env_overrides, engine=None):
        await release.wait()
        return await original(self, requests, env_overrides, engine)

    pdp._decide = gated.__get__(pdp)
    return pdp


async def park_batcher(pdp) -> "asyncio.Task":
    """Submit one request and wait until the batcher holds it."""
    blocker = asyncio.create_task(pdp.submit(REQUEST, environment_roles=ENV))
    for _ in range(20):
        await asyncio.sleep(0)
        if pdp.queue_depth == 0 and not blocker.done():
            return blocker
    raise AssertionError("batcher never picked up the blocker")


def test_full_queue_sheds_immediately_with_explicit_outcome(tv_policy) -> None:
    async def scenario():
        release = asyncio.Event()
        pdp = parked_pdp(tv_policy, release, max_queue=4, max_batch=1)
        try:
            async with pdp:
                blocker = await park_batcher(pdp)
                waiters = [
                    asyncio.create_task(
                        pdp.submit(REQUEST, environment_roles=ENV)
                    )
                    for _ in range(4)
                ]
                await asyncio.sleep(0)
                assert pdp.queue_depth == 4  # at capacity
                # The next submit must shed *now* — no waiting.
                shed = await asyncio.wait_for(
                    pdp.submit(REQUEST, environment_roles=ENV), timeout=0.1
                )
                assert shed.outcome is PDPOutcome.DENY_OVERLOAD
                assert shed.granted is False
                assert shed.decision is None
                assert "queue full" in shed.detail
                release.set()
                admitted = await asyncio.gather(blocker, *waiters)
            return shed, admitted
        finally:
            release.set()

    shed, admitted = asyncio.run(scenario())
    # Everyone actually admitted still got a real mediated answer.
    assert [r.outcome for r in admitted] == [PDPOutcome.GRANT] * 5
    assert shed.latency_s < 0.1


def test_shed_count_is_observable(tv_policy) -> None:
    async def scenario():
        release = asyncio.Event()
        pdp = parked_pdp(tv_policy, release, max_queue=2, max_batch=1)
        try:
            async with pdp:
                blocker = await park_batcher(pdp)
                waiters = [
                    asyncio.create_task(
                        pdp.submit(REQUEST, environment_roles=ENV)
                    )
                    for _ in range(2)
                ]
                await asyncio.sleep(0)
                for _ in range(4):
                    await pdp.submit(REQUEST, environment_roles=ENV)
                stats = pdp.stats()
                release.set()
                await asyncio.gather(blocker, *waiters)
            return stats
        finally:
            release.set()

    stats = asyncio.run(scenario())
    assert stats["shed"] == 4
    assert stats["requests"] == 7


def test_queued_deadline_resolves_to_timeout_not_grant(tv_policy) -> None:
    async def scenario():
        release = asyncio.Event()
        pdp = parked_pdp(tv_policy, release, max_queue=8, max_batch=1)
        try:
            async with pdp:
                blocker = await park_batcher(pdp)
                # Queued behind the parked batch with a 5 ms deadline.
                timed = asyncio.create_task(
                    pdp.submit(REQUEST, environment_roles=ENV, timeout=0.005)
                )
                await asyncio.sleep(0.02)
                release.set()
                return await timed, await blocker
        finally:
            release.set()

    timed, blocker = asyncio.run(scenario())
    assert timed.outcome is PDPOutcome.DENY_TIMEOUT
    assert timed.granted is False
    assert timed.decision is None
    assert blocker.outcome is PDPOutcome.GRANT


def test_default_timeout_config_applies(tv_policy) -> None:
    async def scenario():
        release = asyncio.Event()
        pdp = parked_pdp(
            tv_policy, release, max_queue=8, max_batch=1,
            default_timeout_s=0.005,
        )
        try:
            async with pdp:
                blocker = await park_batcher(pdp)
                timed = asyncio.create_task(
                    pdp.submit(REQUEST, environment_roles=ENV)
                )
                await asyncio.sleep(0.02)
                release.set()
                await blocker
                return await timed
        finally:
            release.set()

    assert asyncio.run(scenario()).outcome is PDPOutcome.DENY_TIMEOUT


def test_non_drain_stop_sheds_queued_requests(tv_policy) -> None:
    async def scenario():
        release = asyncio.Event()
        pdp = parked_pdp(tv_policy, release, max_queue=8, max_batch=1)
        try:
            await pdp.start()
            blocker = await park_batcher(pdp)
            queued = [
                asyncio.create_task(pdp.submit(REQUEST, environment_roles=ENV))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            stopper = asyncio.create_task(pdp.stop(drain=False))
            await asyncio.sleep(0)
            release.set()
            await stopper
            return await blocker, await asyncio.gather(*queued)
        finally:
            release.set()

    blocker, queued = asyncio.run(scenario())
    # In flight when stop() landed: still decided.
    assert blocker.outcome is PDPOutcome.GRANT
    # Still queued: shed explicitly, never silently dropped.
    for response in queued:
        assert response.outcome is PDPOutcome.DENY_OVERLOAD
        assert response.granted is False
        assert "shutting down" in response.detail


def test_graceful_stop_decides_the_same_backlog(tv_policy) -> None:
    # Identical setup to the non-drain test, but drain=True: the same
    # backlog gets mediated answers instead of sheds.
    async def scenario():
        release = asyncio.Event()
        pdp = parked_pdp(tv_policy, release, max_queue=8, max_batch=1)
        try:
            await pdp.start()
            blocker = await park_batcher(pdp)
            queued = [
                asyncio.create_task(pdp.submit(REQUEST, environment_roles=ENV))
                for _ in range(3)
            ]
            await asyncio.sleep(0)
            stopper = asyncio.create_task(pdp.stop(drain=True))
            await asyncio.sleep(0)
            release.set()
            await stopper
            return await blocker, await asyncio.gather(*queued)
        finally:
            release.set()

    blocker, queued = asyncio.run(scenario())
    assert blocker.outcome is PDPOutcome.GRANT
    assert [r.outcome for r in queued] == [PDPOutcome.GRANT] * 3


def test_overload_never_leaks_a_spurious_grant(tv_policy) -> None:
    # Hammer an undersized PDP; every response must be either a real
    # mediated answer or an explicit service refusal, and every grant
    # must match the direct engine's verdict for that request.
    reference = MediationEngine(tv_policy)
    denied_request = AccessRequest("watch", "kitchen/oven", subject="alice")
    expected = {
        REQUEST.obj: reference.decide(REQUEST, environment_roles=ENV).granted,
        denied_request.obj: reference.decide(
            denied_request, environment_roles=ENV
        ).granted,
    }

    async def scenario():
        engine = MediationEngine(tv_policy)
        pdp = PolicyDecisionPoint(
            engine, PDPConfig(cache_size=0, max_queue=2, max_batch=2)
        )
        async with pdp:
            requests = [REQUEST, denied_request] * 100
            return requests, await asyncio.gather(
                *(pdp.submit(r, environment_roles=ENV) for r in requests)
            )

    requests, responses = asyncio.run(scenario())
    sheds = 0
    for request, response in zip(requests, responses):
        if response.outcome is PDPOutcome.DENY_OVERLOAD:
            sheds += 1
            assert response.granted is False
        else:
            assert response.outcome in (PDPOutcome.GRANT, PDPOutcome.DENY)
            assert response.granted == expected[request.obj]
    assert sheds > 0  # the undersized queue really was overloaded
