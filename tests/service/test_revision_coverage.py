"""Revision coverage: no decision-observable change may serve stale.

Two regression families guard the service cache key:

* every policy mutation that can change a decision must move
  ``decision_revision`` (or already be a key component, like
  precedence) — a mutation outside the key is a stale-serve bug;
* the environment part of the key must track the engine's *live*
  environment source.  The source used to be resolved once at PDP
  construction, so attaching or replacing a source afterwards changed
  decisions without changing keys.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import AccessRequest, MediationEngine, StaticEnvironment
from repro.core.precedence import PrecedenceStrategy
from repro.service import PDPConfig, PDPOutcome, PolicyDecisionPoint

REQUEST = AccessRequest("watch", "livingroom/tv", subject="alice")
ENV = {"free-time"}


def run(coroutine):
    return asyncio.run(coroutine)


def make_pdp(engine, **config) -> PolicyDecisionPoint:
    return PolicyDecisionPoint(engine, PDPConfig(**config))


class RevisionedEnvironment(StaticEnvironment):
    """A static source that also carries an explicit revision number."""

    def __init__(self, active=None, revision=0) -> None:
        super().__init__(active)
        self.revision = revision


# ----------------------------------------------------------------------
# Mutation sweep: everything decision-observable moves the revision
# ----------------------------------------------------------------------
def _specialize_subject(policy):
    policy.subject_roles.add_specialization("grandparent", "family-member")


def _specialize_object(policy):
    policy.object_roles.add_specialization("appliances", "dangerous")


def _specialize_environment(policy):
    policy.environment_roles.add_specialization("nighttime", "free-time")


MUTATIONS = [
    ("assign_subject", None, lambda p: p.assign_subject("mom", "child")),
    ("revoke_subject", None, lambda p: p.revoke_subject("alice", "child")),
    (
        "assign_object",
        None,
        lambda p: p.assign_object("kitchen/oven", "entertainment-devices"),
    ),
    (
        "revoke_object",
        None,
        lambda p: p.revoke_object("livingroom/tv", "television"),
    ),
    ("grant", None, lambda p: p.grant("parent", "watch", "dangerous")),
    ("deny", None, lambda p: p.deny("child", "watch", "dangerous")),
    (
        "remove_permission",
        None,
        lambda p: p.remove_permission(p.permissions()[0]),
    ),
    ("add_subject_role", None, lambda p: p.add_subject_role("grandparent")),
    ("add_object_role", None, lambda p: p.add_object_role("appliances")),
    (
        "add_environment_role",
        None,
        lambda p: p.add_environment_role("nighttime"),
    ),
    (
        "subject_specialization",
        lambda p: p.add_subject_role("grandparent"),
        _specialize_subject,
    ),
    (
        "object_specialization",
        lambda p: p.add_object_role("appliances"),
        _specialize_object,
    ),
    (
        "environment_specialization",
        lambda p: p.add_environment_role("nighttime"),
        _specialize_environment,
    ),
    (
        "remove_specialization",
        None,
        lambda p: p.object_roles.remove_specialization(
            "television", "entertainment-devices"
        ),
    ),
]


@pytest.mark.parametrize(
    "prepare,mutate",
    [case[1:] for case in MUTATIONS],
    ids=[case[0] for case in MUTATIONS],
)
def test_decision_observable_mutation_moves_revision(
    tv_policy, prepare, mutate
) -> None:
    if prepare is not None:
        prepare(tv_policy)
    before = tv_policy.decision_revision
    mutate(tv_policy)
    assert tv_policy.decision_revision > before


def test_entity_registration_does_not_move_revision(tv_policy) -> None:
    """Registering entities is deliberately revision-neutral.

    An unregistered entity can only produce an ERROR outcome, and
    errors are never cached — so registration cannot flip a cached
    answer and needs no revision bump (keeps bulk loading cheap).
    """
    before = tv_policy.decision_revision
    tv_policy.add_subject("grandma")
    tv_policy.add_object("den/radio")
    tv_policy.add_transaction("listen")
    assert tv_policy.decision_revision == before


def test_error_for_unknown_subject_is_not_served_after_registration(
    tv_policy,
) -> None:
    """The revision-neutrality above is safe only because ERROR
    outcomes never enter the cache: once the subject is registered
    *and assigned* (the assignment moves the revision), the next
    submit is decided fresh."""
    pdp = make_pdp(MediationEngine(tv_policy))
    request = AccessRequest("watch", "livingroom/tv", subject="grandma")

    async def scenario():
        async with pdp:
            unknown = await pdp.submit(request, environment_roles=ENV)
            tv_policy.add_subject("grandma")
            tv_policy.assign_subject("grandma", "parent")
            tv_policy.grant("parent", "watch", "entertainment-devices")
            known = await pdp.submit(request, environment_roles=ENV)
        return unknown, known

    unknown, known = run(scenario())
    assert unknown.outcome is PDPOutcome.ERROR
    assert known.outcome is PDPOutcome.GRANT
    assert known.cached is False


def test_mutation_invalidates_cached_decision_end_to_end(tv_policy) -> None:
    """Warm the cache, revoke the granting assignment, resubmit."""
    pdp = make_pdp(MediationEngine(tv_policy))

    async def scenario():
        async with pdp:
            first = await pdp.submit(REQUEST, environment_roles=ENV)
            warmed = await pdp.submit(REQUEST, environment_roles=ENV)
            tv_policy.revoke_subject("alice", "child")
            revoked = await pdp.submit(REQUEST, environment_roles=ENV)
        return first, warmed, revoked

    first, warmed, revoked = run(scenario())
    assert first.granted is True
    assert warmed.cached is True
    assert revoked.cached is False
    assert revoked.granted is False


def test_precedence_and_default_sign_are_key_components(tv_policy) -> None:
    """Precedence and the default sign do not move the revision — they
    are key components directly, so flipping them must still miss."""
    pdp = make_pdp(MediationEngine(tv_policy))
    tv_policy.deny("child", "watch", "television", "free-time")

    async def scenario():
        async with pdp:
            deny_wins = await pdp.submit(REQUEST, environment_roles=ENV)
            tv_policy.precedence = PrecedenceStrategy.MOST_SPECIFIC
            specific = await pdp.submit(REQUEST, environment_roles=ENV)
        return deny_wins, specific

    deny_wins, specific = run(scenario())
    assert deny_wins.granted is False  # deny-overrides
    # television ⊂ entertainment-devices: the deny is more specific,
    # so the answer happens to agree — the point is the key moved.
    assert specific.cached is False


# ----------------------------------------------------------------------
# Environment-source coverage (the attach/replace epoch fix)
# ----------------------------------------------------------------------
def test_attaching_environment_source_is_decision_visible(tv_policy) -> None:
    """No source → cached DENY; attach one mid-flight → fresh GRANT.

    Before the epoch fix the environment part of the key was resolved
    once at construction, so the attach changed decisions without
    changing keys."""
    engine = MediationEngine(tv_policy)
    pdp = make_pdp(engine)

    async def scenario():
        async with pdp:
            bare = await pdp.submit(REQUEST)
            warmed = await pdp.submit(REQUEST)
            engine.environment = RevisionedEnvironment({"free-time"})
            attached = await pdp.submit(REQUEST)
        return bare, warmed, attached

    bare, warmed, attached = run(scenario())
    assert bare.granted is False  # free-time not active
    assert warmed.cached is True
    assert attached.cached is False
    assert attached.granted is True


def test_replacing_source_with_equal_revision_cannot_serve_stale(
    tv_policy,
) -> None:
    """Two sources with the *same* revision number: the identity epoch
    keeps their keys disjoint."""
    engine = MediationEngine(
        tv_policy, RevisionedEnvironment({"free-time"}, revision=5)
    )
    pdp = make_pdp(engine)

    async def scenario():
        async with pdp:
            granted = await pdp.submit(REQUEST)
            warmed = await pdp.submit(REQUEST)
            engine.environment = RevisionedEnvironment(set(), revision=5)
            replaced = await pdp.submit(REQUEST)
        return granted, warmed, replaced

    granted, warmed, replaced = run(scenario())
    assert granted.granted is True
    assert warmed.cached is True
    assert replaced.cached is False
    assert replaced.granted is False


def test_source_revision_change_is_decision_visible(tv_policy) -> None:
    """The routine case: same source object, revision moves."""
    source = RevisionedEnvironment({"free-time"}, revision=1)
    engine = MediationEngine(tv_policy, source)
    pdp = make_pdp(engine)

    async def scenario():
        async with pdp:
            granted = await pdp.submit(REQUEST)
            source.set_active(set())
            source.revision += 1
            changed = await pdp.submit(REQUEST)
        return granted, changed

    granted, changed = run(scenario())
    assert granted.granted is True
    assert changed.cached is False
    assert changed.granted is False


def test_opaque_source_is_uncacheable_not_stale(tv_policy) -> None:
    """A source without ``.revision`` cannot be keyed: every submit is
    decided fresh (counted uncacheable) rather than risking staleness."""
    source = StaticEnvironment({"free-time"})
    pdp = make_pdp(MediationEngine(tv_policy, source))

    async def scenario():
        async with pdp:
            first = await pdp.submit(REQUEST)
            second = await pdp.submit(REQUEST)
            source.set_active(set())
            third = await pdp.submit(REQUEST)
        return first, second, third

    first, second, third = run(scenario())
    assert first.granted is second.granted is True
    assert second.cached is False
    assert third.granted is False
    stats = pdp.stats()
    assert stats["cache_hits"] == 0
    assert stats["cache_uncacheable"] == 3
