"""Admin HTTP hardening: read deadlines and request-size caps.

The sidecar used to read requests with no deadline and no bound on the
request head — one stalled scraper connection could hold a handler
forever.  These tests pin the fixes: 408 when the deadline expires,
413 when the head or declared body outgrows its cap, 400 on malformed
or short bodies.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import MediationEngine
from repro.exceptions import ServiceError
from repro.service import AdminServer, PDPConfig, PolicyDecisionPoint


def run(coroutine):
    return asyncio.run(coroutine)


def make_pdp(policy) -> PolicyDecisionPoint:
    return PolicyDecisionPoint(MediationEngine(policy), PDPConfig())


async def _exchange(port: int, payload: bytes, eof: bool = False):
    """Send ``payload``, optionally half-close, read the full response."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(payload)
    await writer.drain()
    if eof:
        writer.write_eof()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    if not raw:
        return None, b""
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b"\r\n", 1)[0].split()[1]), body


def test_read_timeout_must_be_positive(tv_policy) -> None:
    with pytest.raises(ServiceError):
        AdminServer(make_pdp(tv_policy), read_timeout_s=0)


def test_stalled_request_is_answered_408(tv_policy) -> None:
    pdp = make_pdp(tv_policy)

    async def scenario():
        async with AdminServer(pdp, read_timeout_s=0.2) as admin:
            # An unterminated request line: the reader waits for more
            # bytes that never come, and the deadline fires.
            return await _exchange(admin.port, b"GET /health"), admin

    (status, body), admin = run(scenario())
    assert status == 408
    assert b"deadline" in body
    assert admin.read_timeouts == 1


def test_slow_header_trickle_cannot_outlive_the_deadline(tv_policy) -> None:
    """The deadline covers the whole read, not each line: trickling
    one header per 100ms still gets cut off."""
    pdp = make_pdp(tv_policy)

    async def scenario():
        async with AdminServer(pdp, read_timeout_s=0.3) as admin:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", admin.port
            )
            writer.write(b"GET /health HTTP/1.1\r\n")
            await writer.drain()
            dripped = 0
            try:
                for index in range(20):
                    writer.write(f"X-Drip-{index}: 1\r\n".encode("ascii"))
                    await writer.drain()
                    await asyncio.sleep(0.1)
                    dripped += 1
            except (ConnectionResetError, BrokenPipeError):
                pass
            try:
                raw = await reader.read()
            except OSError:
                raw = b""  # the write-side failure poisoned the stream
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            return raw, dripped, admin.read_timeouts

    raw, dripped, timeouts = run(scenario())
    assert timeouts == 1  # the deadline fired despite steady progress
    assert dripped < 20  # ... and the connection was cut early
    if raw:
        assert raw.startswith(b"HTTP/1.1 408")


def test_oversized_header_block_is_answered_413(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    filler = b"".join(
        b"X-Pad-%d: %s\r\n" % (index, b"v" * 120) for index in range(80)
    )
    request = b"GET /health HTTP/1.1\r\n" + filler + b"\r\n"
    assert len(request) > 8 * 1024  # bigger than the head cap

    async def scenario():
        async with AdminServer(pdp) as admin:
            return await _exchange(admin.port, request)

    status, body = run(scenario())
    assert status == 413
    assert b"head exceeds" in body


def test_declared_oversized_body_is_answered_413(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    request = (
        b"POST /reload HTTP/1.1\r\n"
        b"Content-Length: 10485760\r\n\r\n"  # 10 MiB, never sent
    )

    async def scenario():
        async with AdminServer(pdp) as admin:
            return await _exchange(admin.port, request)

    status, body = run(scenario())
    assert status == 413
    assert b"body exceeds" in body


@pytest.mark.parametrize("value", [b"ten", b"-5"])
def test_malformed_content_length_is_answered_400(tv_policy, value) -> None:
    pdp = make_pdp(tv_policy)
    request = (
        b"POST /reload HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n"
    )

    async def scenario():
        async with AdminServer(pdp) as admin:
            return await _exchange(admin.port, request)

    status, body = run(scenario())
    assert status == 400
    assert b"Content-Length" in body


def test_body_shorter_than_declared_is_answered_400(tv_policy) -> None:
    pdp = make_pdp(tv_policy)
    request = b"POST /reload HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"

    async def scenario():
        async with AdminServer(pdp) as admin:
            return await _exchange(admin.port, request, eof=True)

    status, body = run(scenario())
    assert status == 400
    assert b"shorter than Content-Length" in body


def test_well_formed_requests_still_served_after_refusals(tv_policy) -> None:
    """Refused connections must not wedge the listener."""
    pdp = make_pdp(tv_policy)

    async def scenario():
        async with AdminServer(pdp, read_timeout_s=0.2) as admin:
            await _exchange(admin.port, b"GET /stall")  # 408s
            status, _ = await _exchange(
                admin.port, b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            return status, admin.requests_served

    status, served = run(scenario())
    assert status in (200, 503)
    assert served == 1  # only the good request counts
