"""Regression: grants must not outlive their environment roles.

The §4.2.2 staleness class this PR fixes: the pre-fix activator moved
its revision only when ``active_environment_roles()`` happened to run
and observe a change, so an environment-role flip with zero requests
in flight left every cached decision keyed on the old revision —
"children may use the videophone only while they are in the kitchen"
degenerated to "…until someone else asks".

The fix is structural (eager revision bumps at the change itself:
event handlers, clock-advance hooks, and the timer wheel for
non-notifying wall clocks); these tests pin it at the PDP layer.
"""

from __future__ import annotations

import asyncio
from datetime import datetime, timedelta

from repro.core import AccessRequest, MediationEngine
from repro.env.clock import Clock, to_timestamp
from repro.env.runtime import EnvironmentRuntime
from repro.env.temporal import time_window
from repro.service import PolicyDecisionPoint


class WallClock(Clock):
    """Steppable, *non-notifying* — the shape of a real SystemClock."""

    def __init__(self, start: datetime) -> None:
        self._now = to_timestamp(start)

    def now(self) -> float:
        return self._now

    def step(self, **units: float) -> None:
        self._now += timedelta(**units).total_seconds()


def build(policy, runtime):
    # §5.1-style: children may watch TV during free time (19:00-22:00).
    policy.add_subject_role("child")
    policy.add_object_role("tv")
    policy.add_subject("bobby")
    policy.assign_subject("bobby", "child")
    policy.add_object("den/tv")
    policy.assign_object("den/tv", "tv")
    runtime.define_time_role(policy, "free-time", time_window("19:00", "22:00"))
    policy.grant("child", "watch", "tv", "free-time")
    return MediationEngine(policy, runtime.activator)


def test_time_role_flip_invalidates_cache_with_zero_requests_in_flight(
    empty_policy,
) -> None:
    runtime = EnvironmentRuntime(start=datetime(2000, 1, 17, 19, 30))
    engine = build(empty_policy, runtime)
    pdp = PolicyDecisionPoint(engine, env_revision=runtime)
    request = AccessRequest("watch", "den/tv", subject="bobby")

    async def scenario():
        async with pdp:
            first = await pdp.submit(request)
            # A 100%-hit stream: every answer after the first is the
            # cached grant.
            stream = [await pdp.submit(request) for _ in range(20)]

            # Observe the raw revision WITHOUT triggering the lazy
            # re-evaluation path (no .revision read, no role query).
            revision_before = (
                runtime.activator._revision + runtime.state.revision
            )
            deactivations = len(runtime.bus.history("role.deactivated"))

            runtime.clock.advance(hours=3)  # 22:30 — zero requests in flight

            # The flip itself must have moved the revision and
            # published the deactivation — *before* any request or
            # revision read could observe it.  This is the eager bump
            # the pre-fix activator did not do.
            revision_after = (
                runtime.activator._revision + runtime.state.revision
            )
            assert revision_after > revision_before
            assert (
                len(runtime.bus.history("role.deactivated"))
                == deactivations + 1
            )

            after = await pdp.submit(request)
            return first, stream, after

    first, stream, after = asyncio.run(scenario())
    assert first.granted is True
    assert all(r.granted and r.cached for r in stream)
    # The pre-flip grant did not survive the boundary.
    assert after.granted is False
    assert after.cached is False


def test_wall_clock_flip_invalidates_without_notifications(
    empty_policy,
) -> None:
    # A real deployment's clock notifies nobody.  The timer wheel
    # catches the boundary on the next observation — and because the
    # memo is keyed on boundary crossings rather than now(), the
    # 100%-hit stream stays a 100%-hit stream until the flip.
    clock = WallClock(datetime(2000, 1, 17, 19, 30))
    runtime = EnvironmentRuntime(clock=clock)
    engine = build(empty_policy, runtime)
    pdp = PolicyDecisionPoint(engine, env_revision=runtime)
    request = AccessRequest("watch", "den/tv", subject="bobby")

    async def scenario():
        async with pdp:
            first = await pdp.submit(request)
            stream = []
            for _ in range(20):
                clock.step(seconds=1)  # wall time moves between requests
                stream.append(await pdp.submit(request))
            evaluations = runtime.activator.evaluations
            clock.step(hours=3)  # 22:31 — crosses 22:00 unannounced
            after = await pdp.submit(request)
            return first, stream, after, evaluations

    first, stream, after, evaluations = asyncio.run(scenario())
    assert first.granted is True
    # The whole pre-flip stream was served from cache: with the old
    # now()-keyed memo every one of these was a full re-evaluation.
    assert all(r.granted and r.cached for r in stream)
    assert runtime.activator.memo_hits >= 20
    assert after.granted is False and after.cached is False
    # The flip cost exactly one re-evaluation of the one temporal role.
    assert runtime.activator.evaluations == evaluations + 1
