"""Stateful property tests (hypothesis RuleBasedStateMachine).

Two safety invariants the model must hold under *any* interleaving of
operations:

* **Separation of duty** (§4.1.2): no sequence of assigns, revokes,
  session openings, activations and deactivations ever reaches a state
  where a subject's assigned roles violate an SSD constraint or a
  session's active roles violate a DSD constraint.
* **Delegation lifecycle**: under arbitrary delegate/revoke/advance
  interleavings, a subject possesses a delegated role exactly while
  some delegation of it is ACTIVE — never after expiry or revocation.
"""

from __future__ import annotations

from datetime import datetime

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core import GrbacPolicy, SeparationOfDuty
from repro.core.delegation import DelegationManager, DelegationState
from repro.env.clock import SimulatedClock, from_timestamp
from repro.exceptions import GrbacError

SUBJECTS = ["s0", "s1", "s2"]
ROLES = ["r0", "r1", "r2", "r3"]
#: r0/r1 conflict statically; r2/r3 conflict dynamically.
SSD_PAIR = ("r0", "r1")
DSD_PAIR = ("r2", "r3")


class SodMachine(RuleBasedStateMachine):
    """Random assign/revoke/activate churn against SoD constraints."""

    def __init__(self) -> None:
        super().__init__()
        self.policy = GrbacPolicy("stateful")
        for subject in SUBJECTS:
            self.policy.add_subject(subject)
        for role in ROLES:
            self.policy.add_subject_role(role)
        self.policy.add_constraint(
            SeparationOfDuty("ssd", SSD_PAIR, static=True)
        )
        self.policy.add_constraint(
            SeparationOfDuty("dsd", DSD_PAIR, static=False)
        )
        self.sessions = {
            subject: self.policy.sessions.open(subject) for subject in SUBJECTS
        }

    @rule(subject=st.sampled_from(SUBJECTS), role=st.sampled_from(ROLES))
    def assign(self, subject, role):
        try:
            self.policy.assign_subject(subject, role)
        except GrbacError:
            pass  # vetoes are fine; the invariant is what matters

    @rule(subject=st.sampled_from(SUBJECTS), role=st.sampled_from(ROLES))
    def revoke(self, subject, role):
        try:
            self.policy.revoke_subject(subject, role)
        except GrbacError:
            pass

    @rule(subject=st.sampled_from(SUBJECTS), role=st.sampled_from(ROLES))
    def activate(self, subject, role):
        try:
            self.sessions[subject].activate(role)
        except GrbacError:
            pass

    @rule(subject=st.sampled_from(SUBJECTS), role=st.sampled_from(ROLES))
    def deactivate(self, subject, role):
        try:
            self.sessions[subject].deactivate(role)
        except GrbacError:
            pass

    @rule(subject=st.sampled_from(SUBJECTS))
    def reopen_session(self, subject):
        self.policy.sessions.close(self.sessions[subject])
        self.sessions[subject] = self.policy.sessions.open(subject)

    @invariant()
    def no_ssd_violation_in_assignments(self):
        for subject in SUBJECTS:
            assigned = self.policy.authorized_subject_role_names(subject)
            assert not (set(SSD_PAIR) <= assigned), (subject, assigned)

    @invariant()
    def no_dsd_violation_in_sessions(self):
        for subject, session in self.sessions.items():
            active = session.active_roles
            assert not (set(DSD_PAIR) <= active), (subject, active)

    @invariant()
    def active_roles_are_possessed(self):
        # Sessions may hold roles revoked after activation?  No: our
        # model keeps activation independent, so check the weaker but
        # still essential property that activation only ever happened
        # for possessed roles at activation time.  Here we assert the
        # set difference only contains roles revoked *after*
        # activation, which the model permits; nothing to check beyond
        # DSD above.  Kept as documentation of the design decision.
        pass


TestSodMachine = SodMachine.TestCase
TestSodMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


START = datetime(2000, 1, 17, 8, 0)


class DelegationMachine(RuleBasedStateMachine):
    """Random delegation churn; possession must track ACTIVE windows."""

    def __init__(self) -> None:
        super().__init__()
        self.clock = SimulatedClock(START)
        self.policy = GrbacPolicy("delegation-stateful")
        for subject in SUBJECTS:
            self.policy.add_subject(subject)
        self.policy.add_subject_role("guest")
        self.manager = DelegationManager(self.policy, self.clock)

    @rule(
        subject=st.sampled_from(SUBJECTS),
        start_offset=st.integers(0, 3600),
        duration=st.integers(60, 7200),
    )
    def delegate(self, subject, start_offset, duration):
        now = self.clock.now()
        starting = from_timestamp(now + start_offset)
        until = from_timestamp(now + start_offset + duration)
        try:
            self.manager.delegate(
                subject, "guest", until=until,
                starting=starting if start_offset else None,
            )
        except GrbacError:
            pass

    @rule(subject=st.sampled_from(SUBJECTS))
    def revoke_first_live(self, subject):
        for delegation in self.manager.delegations_of(subject):
            if delegation.state in (
                DelegationState.PENDING,
                DelegationState.ACTIVE,
            ):
                self.manager.revoke(delegation)
                break

    @rule(seconds=st.integers(1, 5400))
    def advance(self, seconds):
        self.clock.advance(seconds)

    @invariant()
    def possession_tracks_active_delegations(self):
        for subject in SUBJECTS:
            possessed = "guest" in self.policy.authorized_subject_role_names(
                subject
            )
            active = any(
                d.state is DelegationState.ACTIVE
                for d in self.manager.delegations_of(subject)
            )
            assert possessed == active, (subject, possessed, active)

    @invariant()
    def finished_delegations_stay_finished(self):
        now = self.clock.now()
        for subject in SUBJECTS:
            for delegation in self.manager.delegations_of(subject):
                if delegation.state is DelegationState.ACTIVE:
                    assert now < delegation.expires_at
                if delegation.state is DelegationState.PENDING:
                    assert now < delegation.expires_at


TestDelegationMachine = DelegationMachine.TestCase
TestDelegationMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
