"""Tests for separation of duty and companion constraints (§4.1.2)."""

import pytest

from repro.core.constraints import (
    CardinalityConstraint,
    ConstraintSet,
    PrerequisiteConstraint,
    SeparationOfDuty,
)
from repro.exceptions import ConstraintViolationError, PolicyError


class TestSeparationOfDuty:
    def test_pairwise_exclusion_blocks_second_role(self):
        # The paper's teller / account-holder example.
        sod = SeparationOfDuty("bank", ["teller", "account-holder"])
        sod.check("pat", "teller", set())  # fine alone
        with pytest.raises(ConstraintViolationError) as excinfo:
            sod.check("pat", "teller", {"account-holder"})
        assert excinfo.value.constraint_name == "bank"

    def test_unrelated_role_ignored(self):
        sod = SeparationOfDuty("bank", ["teller", "account-holder"])
        sod.check("pat", "janitor", {"teller"})

    def test_limit_generalizes_exclusion(self):
        sod = SeparationOfDuty("duties", ["a", "b", "c"], limit=2)
        sod.check("pat", "b", {"a"})  # two of three is fine
        with pytest.raises(ConstraintViolationError):
            sod.check("pat", "c", {"a", "b"})

    def test_violated_by(self):
        sod = SeparationOfDuty("x", ["a", "b"])
        assert sod.violated_by({"a", "b"})
        assert not sod.violated_by({"a"})

    def test_needs_two_roles(self):
        with pytest.raises(PolicyError):
            SeparationOfDuty("bad", ["only-one"])

    def test_limit_bounds(self):
        with pytest.raises(PolicyError):
            SeparationOfDuty("bad", ["a", "b"], limit=2)
        with pytest.raises(PolicyError):
            SeparationOfDuty("bad", ["a", "b"], limit=0)

    def test_static_flag_labels(self):
        assert SeparationOfDuty("x", ["a", "b"], static=True).kind_label == "static"
        assert SeparationOfDuty("x", ["a", "b"], static=False).kind_label == "dynamic"


class TestCardinality:
    def test_blocks_when_full(self):
        card = CardinalityConstraint("one-admin", "administrator", 1)
        card.check("alice", "administrator", 0)
        with pytest.raises(ConstraintViolationError):
            card.check("bob", "administrator", 1)

    def test_other_roles_ignored(self):
        card = CardinalityConstraint("one-admin", "administrator", 1)
        card.check("bob", "guest", 100)

    def test_max_must_be_positive(self):
        with pytest.raises(PolicyError):
            CardinalityConstraint("bad", "r", 0)


class TestPrerequisite:
    def test_requires_prior_role(self):
        prereq = PrerequisiteConstraint("admin-needs-family", "admin", "family-member")
        with pytest.raises(ConstraintViolationError):
            prereq.check("guest", "admin", set())
        prereq.check("mom", "admin", {"family-member"})

    def test_effective_roles_satisfy(self):
        # `held` is hierarchy-expanded by the caller, so a
        # specialization satisfies the requirement.
        prereq = PrerequisiteConstraint("x", "admin", "family-member")
        prereq.check("mom", "admin", {"parent", "family-member", "home-user"})

    def test_self_reference_rejected(self):
        with pytest.raises(PolicyError):
            PrerequisiteConstraint("bad", "r", "r")


class TestConstraintSet:
    def test_routes_by_type(self):
        constraints = ConstraintSet()
        constraints.add(SeparationOfDuty("ssd", ["a", "b"], static=True))
        constraints.add(SeparationOfDuty("dsd", ["c", "d"], static=False))
        constraints.add(CardinalityConstraint("card", "a", 2))
        constraints.add(PrerequisiteConstraint("pre", "a", "b"))
        assert len(constraints.static_sod) == 1
        assert len(constraints.dynamic_sod) == 1
        assert len(constraints.cardinality) == 1
        assert len(constraints.prerequisite) == 1
        assert len(constraints) == 4

    def test_unknown_type_rejected(self):
        with pytest.raises(PolicyError):
            ConstraintSet().add(object())

    def test_check_assignment_runs_all(self):
        constraints = ConstraintSet()
        constraints.add(SeparationOfDuty("ssd", ["teller", "holder"]))
        constraints.add(CardinalityConstraint("card", "teller", 1))
        constraints.add(PrerequisiteConstraint("pre", "manager", "employee"))

        # SSD violation
        with pytest.raises(ConstraintViolationError, match="ssd"):
            constraints.check_assignment(
                "pat", "teller", {"holder"}, {"holder"}, lambda role: 0
            )
        # cardinality violation
        with pytest.raises(ConstraintViolationError, match="card"):
            constraints.check_assignment(
                "pat", "teller", set(), set(), lambda role: 1
            )
        # prerequisite violation
        with pytest.raises(ConstraintViolationError, match="pre"):
            constraints.check_assignment(
                "pat", "manager", set(), set(), lambda role: 0
            )
        # clean assignment passes
        constraints.check_assignment(
            "pat", "manager", {"employee"}, {"employee"}, lambda role: 0
        )

    def test_check_activation_only_dsd(self):
        constraints = ConstraintSet()
        constraints.add(SeparationOfDuty("ssd", ["a", "b"], static=True))
        constraints.add(SeparationOfDuty("dsd", ["c", "d"], static=False))
        # SSD pairs are NOT activation-checked (they were blocked at
        # assignment time already).
        constraints.check_activation("pat", "a", {"b"})
        with pytest.raises(ConstraintViolationError, match="dsd"):
            constraints.check_activation("pat", "c", {"d"})
