"""The vectorized struct-of-arrays kernel (tentpole of PR 6).

Two layers under test:

* :mod:`repro.core.vectorized` — column packing, membership decoding,
  environment pre-pruning, and the numpy/pure-Python split;
* ``VectorizedStrategy`` — the batch lane's decision templates: hits
  must return decisions identical to the pipeline, and every
  invalidation edge (revision bump, precedence flip, threshold change,
  mid-batch mutation) must drop stale templates.

The headline property — vectorized ≡ compiled ≡ indexed ≡ naive on
random policies, including deny/precedence/wildcard and confidence
edge cases — lives here as the batch-lane equivalence test and in
``test_properties.py`` (``_assert_all_paths_agree`` runs the
vectorized engine and its batch kernel alongside the other paths).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessRequest, MediationEngine
from repro.core.vectorized import (
    NUMPY_MIN_ROWS,
    RuleColumns,
    VectorTable,
    mask_membership,
)
from repro.obs.observers import CollectingObserver
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
    replay_requests,
)

from tests.core.test_properties import (
    _decision_fingerprint,
    policy_configs,
)


def _fingerprints(decisions):
    return [_decision_fingerprint(d) for d in decisions]


# ----------------------------------------------------------------------
# Column primitives
# ----------------------------------------------------------------------
class TestMaskMembership:
    def test_decodes_bits_into_bytes(self):
        mask = (1 << 0) | (1 << 3) | (1 << 9)
        member = mask_membership(mask, 12)
        assert list(member) == [
            1, 0, 0, 1, 0, 0, 0, 0, 0, 1, 0, 0,
        ]

    def test_empty_mask(self):
        assert bytes(mask_membership(0, 5)) == b"\x00" * 5

    def test_bigint_mask_beyond_machine_words(self):
        # Role ids routinely exceed 64 — the closure masks are Python
        # bigints, which is exactly why the columns carry ids.
        mask = (1 << 200) | (1 << 64) | 1
        member = mask_membership(mask, 201)
        assert member[0] and member[64] and member[200]
        assert sum(member) == 3


class TestVectorTable:
    @pytest.fixture()
    def policy(self):
        return generate_policy(
            RandomPolicyConfig(permissions=60, seed=11)
        )

    def test_buckets_lazy_and_memoized(self, policy):
        engine = MediationEngine(policy, mode="vectorized")
        engine.strategy.snapshot()
        table = engine.strategy._tables
        assert table.stats() == {"vector_buckets": 0, "vector_rows": 0}
        snap = table.snapshot
        transaction = next(iter(snap.rules))
        subject_id = next(iter(snap.rules[transaction]))
        first = table.bucket(transaction, subject_id)
        assert first is table.bucket(transaction, subject_id)
        assert table.stats()["vector_buckets"] == 1
        assert table.stats()["vector_rows"] == len(first)

    def test_missing_bucket_is_none_and_cached(self, policy):
        engine = MediationEngine(policy, mode="vectorized")
        snap = engine.strategy.snapshot()
        table = engine.strategy._tables
        transaction = next(iter(snap.rules))
        assert table.bucket(transaction, 10_000) is None
        assert table.bucket(transaction, 10_000) is None
        assert table.stats()["vector_buckets"] == 0

    def test_prune_preserves_rule_order_within_groups(self, policy):
        engine = MediationEngine(policy, mode="vectorized")
        snap = engine.strategy.snapshot()
        table = engine.strategy._tables
        everything = mask_membership(
            (1 << table.environment_size) - 1, table.environment_size
        )
        for transaction, by_subject in snap.rules.items():
            for subject_id, rules in by_subject.items():
                columns = table.bucket(transaction, subject_id)
                groups = dict(columns.prune(everything))
                regrouped = {}
                for rule in rules:
                    regrouped.setdefault(rule.object_id, []).append(rule)
                assert {
                    oid: list(group) for oid, group in groups.items()
                } == regrouped

    def test_prune_numpy_and_python_paths_agree(self):
        # A bucket wide enough to clear NUMPY_MIN_ROWS exercises the
        # gather path when numpy is present; forcing env_np = None on
        # a copy exercises the pure-Python loop on identical columns.
        from repro.core.compiled import CompiledRule

        rules = [
            CompiledRule(
                order=i,
                permission=None,
                subject_id=0,
                object_bit=1 << (i % 5),
                environment_bit=1 << (i % 7),
                is_deny=False,
                min_confidence=0.0,
                object_is_wildcard=False,
                environment_is_wildcard=False,
                object_id=i % 5,
                environment_id=i % 7,
            )
            for i in range(max(NUMPY_MIN_ROWS, 32) + 8)
        ]
        fast = RuleColumns(rules)
        slow = RuleColumns(rules)
        slow.env_np = None
        member = mask_membership((1 << 1) | (1 << 4) | (1 << 6), 7)
        assert fast.prune(member) == slow.prune(member)


# ----------------------------------------------------------------------
# Batch-lane equivalence (the headline property)
# ----------------------------------------------------------------------
@given(policy_configs(), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_vectorized_batch_equals_compiled_scalar(config, request_seed):
    """The acceptance property: vectorized ``decide_batch`` decisions
    are identical to the scalar compiled path on generated policies —
    replayed twice so the second pass is served from decision
    templates."""
    policy = generate_policy(config)
    generated = generate_requests(policy, 12, seed=request_seed)
    compiled = MediationEngine(policy, mode="compiled")
    reference = _fingerprints(
        [
            compiled.decide(
                g.request, environment_roles=set(g.active_environment_roles)
            )
            for g in generated
        ]
    )
    vectorized = MediationEngine(policy, mode="vectorized")
    for _ in range(2):
        assert (
            _fingerprints(replay_requests(vectorized, generated, batch=True))
            == reference
        )
    assert vectorized.stats()["decision_templates"] > 0


@given(policy_configs(), st.integers(0, 10_000), st.data())
@settings(max_examples=20, deadline=None)
def test_vectorized_batch_with_confidence_edges(config, request_seed, data):
    """Role claims force the kernel's per-request pipeline fallback;
    identity confidences and thresholds exercise the §5.2 gate —
    both must match the compiled scalar path exactly."""
    policy = generate_policy(config)
    threshold = data.draw(st.sampled_from([0.0, 0.5, 0.95]))
    role_names = [r.name for r in policy.subject_roles.roles()]
    requests, envs = [], []
    for generated in generate_requests(policy, 8, seed=request_seed):
        base = generated.request
        claims = data.draw(
            st.dictionaries(
                st.sampled_from(role_names), st.floats(0.0, 1.0), max_size=2
            )
        )
        requests.append(
            AccessRequest(
                transaction=base.transaction,
                obj=base.obj,
                subject=base.subject,
                role_claims=claims,
                identity_confidence=data.draw(st.floats(0.0, 1.0)),
            )
        )
        envs.append(generated.active_environment_roles)
    compiled = MediationEngine(
        policy, mode="compiled", confidence_threshold=threshold
    )
    vectorized = MediationEngine(
        policy, mode="vectorized", confidence_threshold=threshold
    )
    reference = _fingerprints(
        [
            compiled.decide(r, environment_roles=set(env))
            for r, env in zip(requests, envs)
        ]
    )
    assert (
        _fingerprints(
            vectorized.decide_batch(requests, environment_roles=envs)
        )
        == reference
    )


# ----------------------------------------------------------------------
# Decision-template lifecycle
# ----------------------------------------------------------------------
class TestDecisionTemplates:
    @pytest.fixture()
    def policy(self):
        return generate_policy(
            RandomPolicyConfig(permissions=60, seed=23)
        )

    @pytest.fixture()
    def stream(self, policy):
        return generate_requests(policy, 20, seed=5)

    def test_template_hits_skip_pipeline_but_count_and_emit(
        self, policy, stream
    ):
        engine = MediationEngine(policy, mode="vectorized")
        observer = engine.observers.subscribe(CollectingObserver())
        first = replay_requests(engine, stream, batch=True)
        second = replay_requests(engine, stream, batch=True)
        assert _fingerprints(first) == _fingerprints(second)
        # Template hits return the identical Decision object.
        assert all(a is b for a, b in zip(first, second))
        # Tallies and observer fan-out cover both passes.
        assert engine.decisions == 2 * len(stream)
        assert engine.grants + engine.denies == engine.decisions
        assert len(observer.decisions) == 2 * len(stream)

    def test_revision_bump_invalidates_templates(self, policy, stream):
        engine = MediationEngine(policy, mode="vectorized")
        before = replay_requests(engine, stream, batch=True)
        assert engine.stats()["decision_templates"] > 0
        policy.grant("srole-0", "txn-0", "any-object", "any-environment")
        after = replay_requests(engine, stream, batch=True)
        # Fresh render against the new snapshot...
        assert not any(a is b for a, b in zip(before, after))
        # ...and equivalent to a cold engine on the mutated policy.
        cold = MediationEngine(policy, mode="vectorized")
        assert _fingerprints(after) == _fingerprints(
            replay_requests(cold, stream, batch=True)
        )

    def test_precedence_flip_invalidates_templates(self, policy, stream):
        engine = MediationEngine(policy, mode="vectorized")
        replay_requests(engine, stream, batch=True)
        from repro.core import PrecedenceStrategy

        policy.precedence = (
            PrecedenceStrategy.ALLOW_OVERRIDES
            if policy.precedence is not PrecedenceStrategy.ALLOW_OVERRIDES
            else PrecedenceStrategy.DENY_OVERRIDES
        )
        flipped = replay_requests(engine, stream, batch=True)
        cold = MediationEngine(policy, mode="vectorized")
        assert _fingerprints(flipped) == _fingerprints(
            replay_requests(cold, stream, batch=True)
        )

    def test_threshold_change_invalidates_templates(self, policy, stream):
        requests = [g.request for g in stream]
        envs = [g.active_environment_roles for g in stream]
        low_identity = [
            AccessRequest(
                transaction=r.transaction,
                obj=r.obj,
                subject=r.subject,
                identity_confidence=0.4,
            )
            for r in requests
        ]
        engine = MediationEngine(policy, mode="vectorized")
        engine.decide_batch(low_identity, environment_roles=envs)
        engine.confidence_threshold = 0.9
        gated = engine.decide_batch(low_identity, environment_roles=envs)
        cold = MediationEngine(
            policy, mode="vectorized", confidence_threshold=0.9
        )
        assert _fingerprints(gated) == _fingerprints(
            cold.decide_batch(low_identity, environment_roles=envs)
        )

    def test_mid_batch_mutation_is_picked_up(self, policy, stream):
        """An observer mutating the policy mid-batch must not leave
        later requests in the same batch on the stale snapshot."""
        engine = MediationEngine(policy, mode="vectorized")

        class MutateOnce(CollectingObserver):
            fired = False

            def on_decision(self, decision, trace=None):
                super().on_decision(decision, trace)
                if not MutateOnce.fired:
                    MutateOnce.fired = True
                    policy.grant(
                        "srole-0", "txn-0", "any-object", "any-environment"
                    )

        engine.observers.subscribe(MutateOnce())
        decisions = replay_requests(engine, stream, batch=True)
        # Requests after the mutation see the post-mutation policy.
        cold = MediationEngine(policy, mode="vectorized")
        expected = replay_requests(cold, stream, batch=True)
        assert _fingerprints(decisions[1:]) == _fingerprints(expected[1:])

    def test_sessions_and_constraints_bypass_kernel(self, policy, stream):
        engine = MediationEngine(policy, mode="vectorized")
        subject = stream[0].request.subject
        session = policy.sessions.open(subject)
        own = [g for g in stream if g.request.subject == subject]
        requests = [g.request for g in own]
        envs = [g.active_environment_roles for g in own]
        engine.decide_batch(requests, session=session, environment_roles=envs)
        assert engine.stats()["decision_templates"] == 0
        engine.decision_constraints.append(lambda ctx: None)
        engine.decide_batch(requests, environment_roles=envs)
        assert engine.stats()["decision_templates"] == 0

    def test_unknown_transaction_still_raises(self, policy):
        from repro.exceptions import PolicyError

        engine = MediationEngine(policy, mode="vectorized")
        with pytest.raises(PolicyError):
            engine.decide_batch(
                [
                    AccessRequest(
                        transaction="no-such-txn",
                        obj="object-0",
                        subject="subject-0",
                    )
                ],
                environment_roles=[frozenset()],
            )

    def test_stats_expose_kernel_counters(self, policy, stream):
        engine = MediationEngine(policy, mode="vectorized")
        replay_requests(engine, stream, batch=True)
        stats = engine.stats()
        assert stats["mode"] == "vectorized"
        assert stats["decision_templates"] > 0
        assert stats["environment_prunes"] > 0
        assert stats["vector_buckets"] > 0
        assert stats["vector_rows"] > 0
