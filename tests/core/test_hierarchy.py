"""Tests for RoleHierarchy: DAG maintenance, closure, distances."""

import pytest

from repro.core.hierarchy import RoleHierarchy
from repro.core.roles import RoleKind, object_role, subject_role
from repro.exceptions import (
    HierarchyCycleError,
    HierarchyError,
    RoleKindError,
    UnknownEntityError,
)


@pytest.fixture
def figure2() -> RoleHierarchy:
    """The Figure 2 subject-role hierarchy."""
    h = RoleHierarchy(RoleKind.SUBJECT)
    for name in [
        "home-user",
        "family-member",
        "authorized-guest",
        "parent",
        "child",
        "service-agent",
    ]:
        h.add_role(subject_role(name))
    h.add_specialization("family-member", "home-user")
    h.add_specialization("authorized-guest", "home-user")
    h.add_specialization("parent", "family-member")
    h.add_specialization("child", "family-member")
    h.add_specialization("service-agent", "authorized-guest")
    return h


class TestRegistration:
    def test_add_and_lookup(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        role = h.add_role(subject_role("parent"))
        assert h.role("parent") is role
        assert "parent" in h
        assert len(h) == 1

    def test_identical_readd_is_idempotent(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_role(subject_role("x"))
        h.add_role(subject_role("x"))
        assert len(h) == 1

    def test_wrong_kind_rejected(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        with pytest.raises(RoleKindError):
            h.add_role(object_role("tv"))

    def test_unknown_role_lookup_raises(self):
        with pytest.raises(UnknownEntityError):
            RoleHierarchy(RoleKind.SUBJECT).role("ghost")

    def test_edge_to_unregistered_name_raises(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_role(subject_role("a"))
        with pytest.raises(UnknownEntityError):
            h.add_specialization("a", "ghost")

    def test_edge_with_role_objects_auto_registers(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_specialization(subject_role("child"), subject_role("person"))
        assert "child" in h and "person" in h


class TestCycleRejection:
    def test_self_edge_rejected(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_role(subject_role("a"))
        with pytest.raises(HierarchyCycleError):
            h.add_specialization("a", "a")

    def test_two_cycle_rejected(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_specialization(subject_role("a"), subject_role("b"))
        with pytest.raises(HierarchyCycleError):
            h.add_specialization("b", "a")

    def test_long_cycle_rejected(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_specialization(subject_role("a"), subject_role("b"))
        h.add_specialization("b", subject_role("c"))
        h.add_specialization("c", subject_role("d"))
        with pytest.raises(HierarchyCycleError):
            h.add_specialization("d", "a")

    def test_diamond_is_allowed(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_specialization(subject_role("bottom"), subject_role("left"))
        h.add_specialization("bottom", subject_role("right"))
        h.add_specialization("left", subject_role("top"))
        h.add_specialization("right", "top")
        assert {r.name for r in h.generalizations("bottom")} == {
            "left",
            "right",
            "top",
        }


class TestQueries:
    def test_generalizations_transitive(self, figure2):
        assert {r.name for r in figure2.generalizations("parent")} == {
            "family-member",
            "home-user",
        }

    def test_specializations_transitive(self, figure2):
        assert {r.name for r in figure2.specializations("home-user")} == {
            "family-member",
            "authorized-guest",
            "parent",
            "child",
            "service-agent",
        }

    def test_direct_queries(self, figure2):
        assert {r.name for r in figure2.direct_generalizations("parent")} == {
            "family-member"
        }
        assert {r.name for r in figure2.direct_specializations("family-member")} == {
            "parent",
            "child",
        }

    def test_is_specialization_reflexive(self, figure2):
        assert figure2.is_specialization_of("child", "child")

    def test_is_specialization_transitive(self, figure2):
        assert figure2.is_specialization_of("child", "home-user")
        assert not figure2.is_specialization_of("home-user", "child")

    def test_siblings_not_related(self, figure2):
        assert not figure2.is_specialization_of("child", "parent")
        assert not figure2.is_specialization_of("parent", "child")

    def test_expand_includes_self_and_ancestors(self, figure2):
        expanded = {r.name for r in figure2.expand(["child"])}
        assert expanded == {"child", "family-member", "home-user"}

    def test_expand_multiple_roots(self, figure2):
        expanded = {r.name for r in figure2.expand(["child", "service-agent"])}
        assert "authorized-guest" in expanded and "family-member" in expanded

    def test_expand_empty(self, figure2):
        assert figure2.expand([]) == set()


class TestDistance:
    def test_distance_zero_to_self(self, figure2):
        assert figure2.distance("child", "child") == 0

    def test_distance_counts_edges(self, figure2):
        assert figure2.distance("child", "family-member") == 1
        assert figure2.distance("child", "home-user") == 2

    def test_distance_none_when_unrelated(self, figure2):
        assert figure2.distance("child", "parent") is None
        assert figure2.distance("home-user", "child") is None

    def test_distance_shortest_path_in_diamond(self):
        h = RoleHierarchy(RoleKind.SUBJECT)
        h.add_specialization(subject_role("a"), subject_role("b"))
        h.add_specialization("b", subject_role("d"))
        h.add_specialization("a", "d")  # direct shortcut
        assert h.distance("a", "d") == 1

    def test_distance_cache_invalidated_on_edge_change(self, figure2):
        assert figure2.distance("child", "home-user") == 2
        figure2.add_specialization("child", "home-user")  # direct shortcut
        assert figure2.distance("child", "home-user") == 1


class TestMutation:
    def test_remove_specialization(self, figure2):
        figure2.remove_specialization("child", "family-member")
        assert figure2.generalizations("child") == set()

    def test_remove_missing_edge_raises(self, figure2):
        with pytest.raises(HierarchyError):
            figure2.remove_specialization("child", "home-user")

    def test_closure_invalidated_on_removal(self, figure2):
        assert figure2.is_specialization_of("child", "home-user")
        figure2.remove_specialization("family-member", "home-user")
        assert not figure2.is_specialization_of("child", "home-user")

    def test_conflicting_readd_raises(self, figure2):
        with pytest.raises(HierarchyError):
            figure2.add_role(subject_role("parent", x=1))

    def test_conflicting_description_readd_raises(self, figure2):
        with pytest.raises(HierarchyError):
            figure2.add_role(subject_role("parent", "a new description"))


class TestTopologicalOrder:
    def test_specializations_before_generalizations(self, figure2):
        order = [r.name for r in figure2.topological_order()]
        assert order.index("child") < order.index("family-member")
        assert order.index("family-member") < order.index("home-user")
        assert order.index("service-agent") < order.index("authorized-guest")

    def test_all_roles_present(self, figure2):
        assert len(figure2.topological_order()) == len(figure2)

    def test_edges_listing(self, figure2):
        edges = {(c.name, p.name) for c, p in figure2.edges()}
        assert ("parent", "family-member") in edges
        assert len(edges) == 5


class TestDotExport:
    def test_dot_contains_roles_edges_and_members(self, figure2):
        dot = figure2.to_dot(
            "figure2", members={"parent": ["mom", "dad"], "child": ["alice"]}
        )
        assert dot.startswith("digraph figure2 {")
        assert '"parent" -> "family-member";' in dot
        assert '"mom" -> "parent" [style=dashed];' in dot
        assert '"alice" [shape=ellipse];' in dot
        assert dot.rstrip().endswith("}")

    def test_dot_without_members(self, figure2):
        dot = figure2.to_dot()
        assert "style=dashed" not in dot
        assert '"child" -> "family-member";' in dot

    def test_dot_is_deterministic(self, figure2):
        assert figure2.to_dot() == figure2.to_dot()
