"""Tests for Permission (the GRBAC rule tuple)."""

import pytest

from repro.core.permissions import Permission, Sign
from repro.core.roles import environment_role, object_role, subject_role
from repro.core.transactions import Transaction
from repro.exceptions import PolicyError, RoleKindError


def make_permission(**overrides):
    values = dict(
        subject_role=subject_role("child"),
        object_role=object_role("entertainment"),
        environment_role=environment_role("free-time"),
        transaction=Transaction.simple("watch"),
        sign=Sign.GRANT,
    )
    values.update(overrides)
    return Permission(**values)


class TestConstruction:
    def test_valid_permission(self):
        permission = make_permission()
        assert permission.sign is Sign.GRANT
        assert permission.min_confidence == 0.0
        assert permission.priority == 0

    def test_kind_checked_subject(self):
        with pytest.raises(RoleKindError):
            make_permission(subject_role=object_role("wrong"))

    def test_kind_checked_object(self):
        with pytest.raises(RoleKindError):
            make_permission(object_role=subject_role("wrong"))

    def test_kind_checked_environment(self):
        with pytest.raises(RoleKindError):
            make_permission(environment_role=subject_role("wrong"))

    def test_sign_type_checked(self):
        with pytest.raises(PolicyError):
            make_permission(sign="grant")

    def test_confidence_range_checked(self):
        with pytest.raises(PolicyError):
            make_permission(min_confidence=1.5)
        with pytest.raises(PolicyError):
            make_permission(min_confidence=-0.1)


class TestKeyAndDescribe:
    def test_key_identifies_rule_tuple(self):
        a = make_permission()
        b = make_permission()
        assert a.key == b.key

    def test_key_distinguishes_sign(self):
        assert make_permission().key != make_permission(sign=Sign.DENY).key

    def test_key_ignores_priority_and_confidence(self):
        assert (
            make_permission(priority=5, min_confidence=0.9).key
            == make_permission().key
        )

    def test_describe_mentions_all_parts(self):
        text = make_permission(name="tv-rule", min_confidence=0.9).describe()
        assert "tv-rule" in text
        assert "grant watch" in text
        assert "child" in text
        assert "entertainment" in text
        assert "free-time" in text
        assert "90%" in text

    def test_describe_deny(self):
        assert make_permission(sign=Sign.DENY).describe().startswith("deny")
