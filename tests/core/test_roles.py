"""Tests for roles: kinds, equality, metadata, constructors."""

import pytest

from repro.core.roles import (
    ANY_ENVIRONMENT,
    ANY_OBJECT,
    Role,
    RoleKind,
    environment_role,
    object_role,
    subject_role,
)
from repro.exceptions import PolicyError, RoleKindError


class TestRoleConstruction:
    def test_constructors_set_kind(self):
        assert subject_role("parent").kind is RoleKind.SUBJECT
        assert object_role("tv").kind is RoleKind.OBJECT
        assert environment_role("weekday").kind is RoleKind.ENVIRONMENT

    def test_qualified_name(self):
        assert subject_role("parent").qualified_name == "subject:parent"
        assert str(environment_role("weekday")) == "environment:weekday"

    def test_empty_name_rejected(self):
        with pytest.raises(PolicyError):
            subject_role("")

    def test_whitespace_name_rejected(self):
        with pytest.raises(PolicyError):
            subject_role("two words")

    def test_non_rolekind_kind_rejected(self):
        with pytest.raises(RoleKindError):
            Role("x", "subject")  # type: ignore[arg-type]

    def test_metadata_stored_and_readable(self):
        role = subject_role("admin", "administrators", priority=7)
        assert role.meta("priority") == 7
        assert role.meta("missing") is None
        assert role.meta("missing", 3) == 3

    def test_metadata_copied_not_aliased(self):
        metadata = {"level": 1}
        role = Role("r", RoleKind.SUBJECT, metadata=metadata)
        metadata["level"] = 99
        assert role.meta("level") == 1


class TestRoleEquality:
    def test_same_kind_same_name_equal(self):
        assert subject_role("x") == subject_role("x")

    def test_same_name_different_kind_not_equal(self):
        assert subject_role("guest") != object_role("guest")

    def test_description_does_not_affect_equality(self):
        assert subject_role("x", "one") == subject_role("x", "two")

    def test_metadata_does_not_affect_equality(self):
        assert subject_role("x", a=1) == subject_role("x", a=2)

    def test_hashable_and_set_dedup(self):
        roles = {subject_role("x"), subject_role("x"), object_role("x")}
        assert len(roles) == 2


class TestRequireKind:
    def test_require_matching_kind_returns_role(self):
        role = subject_role("x")
        assert role.require_kind(RoleKind.SUBJECT) is role

    def test_require_wrong_kind_raises(self):
        with pytest.raises(RoleKindError, match="expected a object role"):
            subject_role("x").require_kind(RoleKind.OBJECT)


class TestDistinguishedRoles:
    def test_any_object_is_object_kind(self):
        assert ANY_OBJECT.kind is RoleKind.OBJECT
        assert ANY_OBJECT.name == "any-object"

    def test_any_environment_is_environment_kind(self):
        assert ANY_ENVIRONMENT.kind is RoleKind.ENVIRONMENT
        assert ANY_ENVIRONMENT.name == "any-environment"
