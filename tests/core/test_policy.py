"""Tests for the GrbacPolicy aggregate."""

import pytest

from repro.core import (
    CardinalityConstraint,
    PrerequisiteConstraint,
    SeparationOfDuty,
)
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT
from repro.exceptions import (
    ConstraintViolationError,
    DuplicateEntityError,
    PolicyError,
    UnknownEntityError,
)


class TestEntityRegistration:
    def test_add_subject_by_name_with_attributes(self, empty_policy):
        subject = empty_policy.add_subject("alice", age=11)
        assert subject.attribute("age") == 11
        assert empty_policy.subject("alice") is subject

    def test_duplicate_subject_same_attributes_idempotent(self, empty_policy):
        a = empty_policy.add_subject("alice", age=11)
        b = empty_policy.add_subject("alice", age=11)
        assert a is b

    def test_duplicate_subject_different_attributes_raises(self, empty_policy):
        empty_policy.add_subject("alice", age=11)
        with pytest.raises(DuplicateEntityError):
            empty_policy.add_subject("alice", age=12)

    def test_unknown_lookups_raise(self, empty_policy):
        with pytest.raises(UnknownEntityError):
            empty_policy.subject("ghost")
        with pytest.raises(UnknownEntityError):
            empty_policy.object("ghost")
        with pytest.raises(UnknownEntityError):
            empty_policy.transaction("ghost")

    def test_transaction_by_name(self, empty_policy):
        txn = empty_policy.add_transaction("watch")
        assert empty_policy.transaction("watch") is txn

    def test_wildcard_roles_preregistered(self, empty_policy):
        assert ANY_OBJECT.name in empty_policy.object_roles
        assert ANY_ENVIRONMENT.name in empty_policy.environment_roles


class TestRoleQueries:
    def test_authorized_vs_effective_subject_roles(self, figure2_policy):
        direct = {r.name for r in figure2_policy.authorized_subject_roles("mom")}
        effective = {r.name for r in figure2_policy.effective_subject_roles("mom")}
        assert direct == {"parent"}
        assert effective == {"parent", "family-member", "home-user"}

    def test_subjects_in_role_transitive(self, figure2_policy):
        assert figure2_policy.subjects_in_role("family-member") == {
            "mom",
            "dad",
            "alice",
            "bobby",
        }
        assert figure2_policy.subjects_in_role("family-member", transitive=False) == set()
        assert figure2_policy.subjects_in_role("home-user") == {
            "mom",
            "dad",
            "alice",
            "bobby",
            "dishwasher-repair-tech",
        }

    def test_effective_object_roles_include_any_object(self, tv_policy):
        roles = {r.name for r in tv_policy.effective_object_roles("livingroom/tv")}
        assert roles == {"television", "entertainment-devices", "any-object"}

    def test_objects_in_role_transitive(self, tv_policy):
        assert tv_policy.objects_in_role("entertainment-devices") == {
            "livingroom/tv"
        }
        assert tv_policy.objects_in_role("any-object") == {
            "livingroom/tv",
            "kitchen/oven",
        }

    def test_assignment_requires_known_entities(self, empty_policy):
        empty_policy.add_subject_role("r")
        with pytest.raises(UnknownEntityError):
            empty_policy.assign_subject("ghost", "r")
        empty_policy.add_subject("alice")
        with pytest.raises(UnknownEntityError):
            empty_policy.assign_subject("alice", "ghost-role")

    def test_revoke_subject(self, figure2_policy):
        figure2_policy.revoke_subject("mom", "parent")
        assert figure2_policy.authorized_subject_roles("mom") == set()


class TestPermissions:
    def test_grant_registers_transaction(self, tv_policy):
        tv_policy.grant("parent", "brand-new-transaction")
        assert tv_policy.transaction("brand-new-transaction")

    def test_duplicate_rule_rejected(self, tv_policy):
        with pytest.raises(DuplicateEntityError):
            tv_policy.grant("child", "watch", "entertainment-devices", "free-time")

    def test_grant_and_deny_same_tuple_both_allowed(self, tv_policy):
        # Same tuple with opposite sign is a *conflict*, not a duplicate.
        tv_policy.deny("child", "watch", "entertainment-devices", "free-time")
        assert len(tv_policy.permissions()) == 2

    def test_unknown_role_in_rule_rejected(self, tv_policy):
        with pytest.raises(UnknownEntityError):
            tv_policy.grant("ghost-role", "watch")

    def test_remove_permission(self, tv_policy):
        permission = tv_policy.permissions()[0]
        tv_policy.remove_permission(permission)
        assert tv_policy.permissions() == []
        with pytest.raises(UnknownEntityError):
            tv_policy.remove_permission(permission)

    def test_permission_revision_bumps(self, tv_policy):
        before = tv_policy.permission_revision
        permission = tv_policy.grant("parent", "new-txn")
        tv_policy.remove_permission(permission)
        assert tv_policy.permission_revision == before + 2

    def test_permissions_for_transaction(self, tv_policy):
        assert len(tv_policy.permissions_for_transaction("watch")) == 1
        assert tv_policy.permissions_for_transaction("ghost") == []


class TestConstraintsIntegration:
    def test_ssd_enforced_on_assignment(self, empty_policy):
        policy = empty_policy
        policy.add_subject("pat")
        policy.add_subject_role("teller")
        policy.add_subject_role("account-holder")
        policy.add_constraint(
            SeparationOfDuty("bank", ["teller", "account-holder"], static=True)
        )
        policy.assign_subject("pat", "teller")
        with pytest.raises(ConstraintViolationError):
            policy.assign_subject("pat", "account-holder")

    def test_new_constraint_rejected_if_already_violated(self, empty_policy):
        policy = empty_policy
        policy.add_subject("pat")
        policy.add_subject_role("a")
        policy.add_subject_role("b")
        policy.assign_subject("pat", "a")
        policy.assign_subject("pat", "b")
        with pytest.raises(PolicyError):
            policy.add_constraint(SeparationOfDuty("late", ["a", "b"], static=True))

    def test_cardinality_enforced(self, empty_policy):
        policy = empty_policy
        policy.add_subject("a")
        policy.add_subject("b")
        policy.add_subject_role("admin")
        policy.add_constraint(CardinalityConstraint("one-admin", "admin", 1))
        policy.assign_subject("a", "admin")
        with pytest.raises(ConstraintViolationError):
            policy.assign_subject("b", "admin")

    def test_prerequisite_uses_hierarchy(self, figure2_policy):
        policy = figure2_policy
        policy.add_subject_role("administrator")
        policy.add_constraint(
            PrerequisiteConstraint("admin-family", "administrator", "family-member")
        )
        # Mom holds parent, which specializes family-member: allowed.
        policy.assign_subject("mom", "administrator")
        # The repair tech holds only service-agent: blocked.
        with pytest.raises(ConstraintViolationError):
            policy.assign_subject("dishwasher-repair-tech", "administrator")

    def test_dsd_enforced_via_sessions(self, empty_policy):
        policy = empty_policy
        policy.add_subject("pat")
        policy.add_subject_role("teller")
        policy.add_subject_role("account-holder")
        policy.add_constraint(
            SeparationOfDuty("bank", ["teller", "account-holder"], static=False)
        )
        policy.assign_subject("pat", "teller")
        policy.assign_subject("pat", "account-holder")  # possession OK
        session = policy.sessions.open("pat", activate=["teller"])
        with pytest.raises(ConstraintViolationError):
            session.activate("account-holder")


class TestStats:
    def test_stats_counts(self, tv_policy):
        stats = tv_policy.stats()
        assert stats["subjects"] == 4
        assert stats["objects"] == 2
        assert stats["permissions"] == 1
        assert stats["subject_roles"] == 6
        # any-object plus the three declared object roles
        assert stats["object_roles"] == 4
