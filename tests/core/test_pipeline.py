"""Unit tests for the staged decision pipeline."""

import pytest

from repro.core import (
    MODES,
    STAGE_ORDER,
    AccessRequest,
    MediationEngine,
    Sign,
)
from repro.core.pipeline import (
    DecisionContext,
    build_strategy,
    direct_subject_confidences,
    restricted_assigned_roles,
)
from repro.exceptions import PolicyError
from repro.obs import CollectingObserver


class TestPipelineStructure:
    def test_stage_order_constant_matches_pipeline(self, tv_policy):
        engine = MediationEngine(tv_policy)
        assert tuple(s.name for s in engine.pipeline.stages) == STAGE_ORDER

    @pytest.mark.parametrize("mode", MODES)
    def test_every_mode_is_a_strategy_of_one_pipeline(self, tv_policy, mode):
        engine = MediationEngine(tv_policy, mode=mode)
        assert engine.strategy.name == mode
        assert engine.pipeline.strategy is engine.strategy

    def test_unknown_mode_rejected_by_strategy_factory(self, tv_policy):
        engine = MediationEngine(tv_policy)
        with pytest.raises(PolicyError):
            build_strategy("psychic", engine)

    def test_direct_pipeline_execution_resolves_environment(self, tv_policy):
        # Driving the pipeline without a pre-resolved environment must
        # make SnapshotEnvironment consult the engine's source.
        from repro.core import StaticEnvironment

        engine = MediationEngine(tv_policy, StaticEnvironment({"free-time"}))
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        decision = engine.pipeline.execute(request)
        assert decision.granted
        assert "free-time" in decision.environment_roles


class TestTracedDecisions:
    def test_trace_records_all_stages_with_timings(self, tv_engine):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        decision = tv_engine.decide(
            request, environment_roles={"free-time"}, trace=True
        )
        trace = decision.trace
        assert trace is not None
        assert [s.name for s in trace.spans] == list(STAGE_ORDER)
        assert all(s.duration_s is not None for s in trace.spans)
        assert trace.total_s is not None and trace.total_s > 0.0
        assert trace.granted is True
        assert trace.stage_timings_us().keys() == set(STAGE_ORDER)

    def test_untraced_decision_has_no_trace(self, tv_engine):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        decision = tv_engine.decide(request, environment_roles={"free-time"})
        assert decision.trace is None

    def test_traced_and_untraced_decisions_agree(self, tv_engine):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="bobby")
        env = {"free-time"}
        traced = tv_engine.decide(request, environment_roles=env, trace=True)
        plain = tv_engine.decide(request, environment_roles=env)
        assert traced == plain  # Decision equality ignores the trace

    def test_traced_decisions_bypass_the_cache(self, tv_policy):
        engine = MediationEngine(tv_policy, cache_size=16)
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        env = {"free-time"}
        first = engine.decide(request, environment_roles=env)
        again = engine.decide(request, environment_roles=env)
        assert again is first
        traced = engine.decide(request, environment_roles=env, trace=True)
        assert traced is not first
        assert traced.trace is not None
        # The cached entry must not have been replaced by the traced one.
        assert engine.decide(request, environment_roles=env) is first

    def test_traced_calls_feed_stage_histograms(self, tv_engine):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        tv_engine.decide(request, environment_roles={"free-time"}, trace=True)
        histograms = tv_engine.metrics.histograms()
        for stage in STAGE_ORDER:
            assert histograms[f"pipeline.{stage}"]["count"] == 1
        assert histograms["pipeline.total"]["count"] == 1

    def test_explain_renders_the_recorded_trace(self, tv_engine):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        decision = tv_engine.decide(
            request, environment_roles={"free-time"}, trace=True
        )
        text = decision.explain()
        assert "pipeline (compiled strategy):" in text
        assert "resolve-subject-roles" in text
        assert "matched rules:" in text


class TestApplyConstraints:
    def test_constraint_veto_turns_grant_into_deny(self, tv_engine):
        tv_engine.decision_constraints.append(
            lambda ctx: "curfew" if ctx.request.subject == "alice" else None
        )
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        decision = tv_engine.decide(request, environment_roles={"free-time"})
        assert not decision.granted
        assert "constraint veto: curfew" in decision.rationale
        # Other subjects are untouched.
        other = AccessRequest(transaction="watch", obj="livingroom/tv", subject="bobby")
        assert tv_engine.decide(other, environment_roles={"free-time"}).granted

    def test_constraints_never_turn_a_deny_into_a_grant(self, tv_engine):
        tv_engine.decision_constraints.append(lambda ctx: None)
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        # No active free-time: denied, constraint returning None keeps it.
        decision = tv_engine.decide(request, environment_roles=set())
        assert not decision.granted

    def test_engines_with_constraints_skip_the_cache(self, tv_policy):
        engine = MediationEngine(tv_policy, cache_size=16)
        engine.decision_constraints.append(lambda ctx: None)
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        env = {"free-time"}
        first = engine.decide(request, environment_roles=env)
        second = engine.decide(request, environment_roles=env)
        assert second is not first
        assert engine.cache_hits == 0


class TestObserverIntegration:
    def test_observer_sees_every_decision(self, tv_policy):
        engine = MediationEngine(tv_policy)
        observer = engine.observers.subscribe(CollectingObserver())
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        plain = engine.decide(request, environment_roles={"free-time"})
        traced = engine.decide(
            request, environment_roles={"free-time"}, trace=True
        )
        assert observer.decisions == [plain, traced]
        assert observer.traces == [None, traced.trace]


class TestSharedRoleHelpers:
    def test_restricted_roles_without_session(self, tv_policy):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="mom")
        assert restricted_assigned_roles(tv_policy, request, None) == {"parent"}

    def test_restricted_roles_intersect_session_activation(self, tv_policy):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="mom")
        session = tv_policy.sessions.open("mom")
        try:
            assert restricted_assigned_roles(tv_policy, request, session) == set()
            session.activate("parent")
            assert restricted_assigned_roles(tv_policy, request, session) == {
                "parent"
            }
        finally:
            tv_policy.sessions.close(session)

    def test_session_subject_mismatch_raises(self, tv_policy):
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="mom")
        session = tv_policy.sessions.open("alice")
        try:
            with pytest.raises(PolicyError):
                restricted_assigned_roles(tv_policy, request, session)
        finally:
            tv_policy.sessions.close(session)

    def test_claims_merge_with_max_confidence(self, tv_policy):
        request = AccessRequest(
            transaction="watch",
            obj="livingroom/tv",
            subject="alice",
            role_claims={"child": 0.5},
            identity_confidence=0.9,
        )
        direct = direct_subject_confidences(tv_policy, request, None)
        assert direct["child"] == 0.9  # identity beats the weaker claim


class TestEngineTallies:
    def test_grants_and_denies_counted_including_cache_hits(self, tv_policy):
        engine = MediationEngine(tv_policy, cache_size=8)
        grant = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        for _ in range(3):
            engine.decide(grant, environment_roles={"free-time"})
        engine.decide(grant, environment_roles=set())  # deny
        stats = engine.stats()
        assert stats["grants"] == 3
        assert stats["denies"] == 1
        assert stats["decisions"] == 4
        # stats() syncs the tallies into the metrics registry.
        counters = engine.metrics.counters()
        assert counters["engine.decisions"] == 4
        assert counters["engine.grants"] == 3
        assert counters["engine.denies"] == 1

    def test_decision_context_carries_resolved_outputs(self, tv_policy):
        from repro.core import StaticEnvironment

        engine = MediationEngine(tv_policy, StaticEnvironment({"free-time"}))
        request = AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        ctx = DecisionContext(request)
        for run in engine.pipeline._runners:
            run(ctx)
        assert ctx.decision.granted
        assert ctx.matches and ctx.matches[0].sign is Sign.GRANT
        assert ctx.resolution.sign is Sign.GRANT
        assert "child" in ctx.subject_confidences
