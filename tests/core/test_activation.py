"""Tests for sessions and role activation (§4.1.2)."""

import pytest

from repro.core.activation import SessionManager
from repro.exceptions import (
    ActivationError,
    ConstraintViolationError,
    SessionError,
)


def make_manager(authorized=None, dsd_pairs=()):
    authorized = authorized or {"pat": {"teller", "account-holder", "janitor"}}

    def lookup(subject):
        return set(authorized.get(subject, set()))

    def dsd_check(subject, new_role, active):
        for a, b in dsd_pairs:
            if (new_role == a and b in active) or (new_role == b and a in active):
                raise ConstraintViolationError(f"{a} conflicts with {b}")

    return SessionManager(lookup, dsd_check)


class TestActivation:
    def test_activate_possessed_role(self):
        session = make_manager().open("pat")
        session.activate("teller")
        assert session.is_active("teller")
        assert session.active_roles == {"teller"}

    def test_activate_unpossessed_role_raises(self):
        session = make_manager().open("pat")
        with pytest.raises(ActivationError):
            session.activate("root")

    def test_activate_idempotent(self):
        session = make_manager().open("pat")
        session.activate("teller")
        session.activate("teller")
        assert session.active_roles == {"teller"}

    def test_dsd_blocks_simultaneous_activation(self):
        # The paper: "the system simply disallows any two roles with
        # dynamic separation of duty constraints from being active at
        # the same time."
        manager = make_manager(dsd_pairs=[("teller", "account-holder")])
        session = manager.open("pat")
        session.activate("teller")
        with pytest.raises(ConstraintViolationError):
            session.activate("account-holder")

    def test_dsd_roles_usable_in_different_intervals(self):
        # "There is no conflict of interest if the employee acts as a
        # teller during one time interval and an account holder during
        # another."
        manager = make_manager(dsd_pairs=[("teller", "account-holder")])
        session = manager.open("pat")
        session.activate("teller")
        session.deactivate("teller")
        session.activate("account-holder")  # fine now
        assert session.active_roles == {"account-holder"}

    def test_deactivate_inactive_raises(self):
        session = make_manager().open("pat")
        with pytest.raises(ActivationError):
            session.deactivate("teller")

    def test_activate_all_authorized_skips_dsd_conflicts(self):
        manager = make_manager(dsd_pairs=[("teller", "account-holder")])
        session = manager.open("pat")
        activated = session.activate_all_authorized()
        # Deterministic sorted order: account-holder first, teller skipped.
        assert "account-holder" in activated
        assert "teller" not in session.active_roles
        assert "janitor" in session.active_roles

    def test_drop_all(self):
        session = make_manager().open("pat")
        session.activate("teller")
        session.drop_all()
        assert session.active_roles == set()


class TestSessionManager:
    def test_open_with_initial_roles(self):
        session = make_manager().open("pat", activate=["teller"])
        assert session.is_active("teller")

    def test_get_live_session(self):
        manager = make_manager()
        session = manager.open("pat")
        assert manager.get(session.session_id) is session

    def test_close_terminates(self):
        manager = make_manager()
        session = manager.open("pat")
        manager.close(session)
        assert session.terminated
        with pytest.raises(SessionError):
            manager.get(session.session_id)
        with pytest.raises(SessionError):
            session.activate("teller")

    def test_close_idempotent(self):
        manager = make_manager()
        session = manager.open("pat")
        manager.close(session)
        manager.close(session.session_id)

    def test_sessions_of(self):
        manager = make_manager({"pat": {"a"}, "sam": {"a"}})
        s1 = manager.open("pat")
        manager.open("sam")
        assert manager.sessions_of("pat") == [s1]
        assert len(manager) == 2

    def test_unique_ids(self):
        manager = make_manager()
        ids = {manager.open("pat").session_id for _ in range(5)}
        assert len(ids) == 5
