"""Tests for the mediation engine — the §4.2.4 decision procedure."""

import pytest

from repro.core import (
    AccessRequest,
    MediationEngine,
    PrecedenceStrategy,
    StaticEnvironment,
)
from repro.exceptions import PolicyError, UnknownEntityError


class TestBasicRule:
    """The three existential conditions of §4.2.4."""

    def test_grant_requires_all_three_roles(self, tv_policy, tv_engine):
        env = tv_engine.environment
        # Environment role inactive -> deny (condition 2 fails).
        assert not tv_engine.check("alice", "watch", "livingroom/tv")
        env.activate("free-time")
        # All three hold -> grant.
        assert tv_engine.check("alice", "watch", "livingroom/tv")

    def test_object_role_must_match(self, tv_engine):
        tv_engine.environment.activate("free-time")
        # The oven possesses no entertainment role (condition 1 fails).
        assert not tv_engine.check("alice", "watch", "kitchen/oven")

    def test_subject_role_must_match(self, tv_engine):
        tv_engine.environment.activate("free-time")
        # Mom possesses parent, not child (condition 3 fails).
        assert not tv_engine.check("mom", "watch", "livingroom/tv")

    def test_unknown_entities_raise(self, tv_engine):
        with pytest.raises(UnknownEntityError):
            tv_engine.check("ghost", "watch", "livingroom/tv")
        with pytest.raises(UnknownEntityError):
            tv_engine.check("alice", "watch", "ghost-object")
        with pytest.raises(UnknownEntityError):
            tv_engine.check("alice", "ghost-transaction", "livingroom/tv")


class TestHierarchyExpansion:
    def test_object_hierarchy_expansion(self, tv_policy, free_time_env):
        # The rule names entertainment-devices; the TV's direct role is
        # television, a specialization.
        engine = MediationEngine(tv_policy, free_time_env)
        assert engine.check("alice", "watch", "livingroom/tv")

    def test_subject_hierarchy_expansion(self, tv_policy, free_time_env):
        # A rule for family-member covers children through expansion.
        tv_policy.grant("family-member", "open", "any-object")
        engine = MediationEngine(tv_policy, free_time_env)
        assert engine.check("alice", "open", "kitchen/oven")

    def test_environment_hierarchy_expansion(self, tv_policy):
        # weekday-evening specializes free-time: activating the
        # specific role activates the general one.
        tv_policy.add_environment_role("weekday-evening")
        tv_policy.environment_roles.add_specialization("weekday-evening", "free-time")
        engine = MediationEngine(tv_policy, StaticEnvironment({"weekday-evening"}))
        assert engine.check("alice", "watch", "livingroom/tv")

    def test_expansion_is_upward_only(self, tv_policy, free_time_env):
        # A rule for the *specific* role must not cover subjects that
        # hold only the general role.
        tv_policy.add_subject("guest-kid")
        tv_policy.assign_subject("guest-kid", "family-member")
        tv_policy.grant("parent", "unlock", "any-object")
        engine = MediationEngine(tv_policy, free_time_env)
        assert not engine.check("guest-kid", "watch", "livingroom/tv")
        assert not engine.check("guest-kid", "unlock", "kitchen/oven")


class TestNegativeRights:
    def test_deny_overrides_grant(self, tv_policy, free_time_env):
        tv_policy.deny("child", "watch", "television", "any-environment")
        engine = MediationEngine(tv_policy, free_time_env)
        decision = engine.decide(
            AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        )
        assert not decision.granted
        assert "deny-overrides" in decision.rationale

    def test_allow_overrides_flips_it(self, tv_policy, free_time_env):
        tv_policy.deny("child", "watch", "television", "any-environment")
        tv_policy.precedence = PrecedenceStrategy.ALLOW_OVERRIDES
        engine = MediationEngine(tv_policy, free_time_env)
        assert engine.check("alice", "watch", "livingroom/tv")

    def test_most_specific_prefers_television_rule(self, tv_policy, free_time_env):
        # Deny on the specific 'television' role vs grant on the
        # general 'entertainment-devices' (same environment role):
        # most-specific lets the deny win because it sits one
        # hierarchy step closer to the object's direct role.
        tv_policy.deny("child", "watch", "television", "free-time")
        tv_policy.precedence = PrecedenceStrategy.MOST_SPECIFIC
        engine = MediationEngine(tv_policy, free_time_env)
        assert not engine.check("alice", "watch", "livingroom/tv")

    def test_most_specific_treats_wildcards_as_least_specific(
        self, tv_policy, free_time_env
    ):
        # A deny written against any-environment is *less* specific
        # than a grant that names the active environment role, even if
        # the deny names a more specific object role.
        tv_policy.deny("child", "watch", "television")  # any-environment
        tv_policy.precedence = PrecedenceStrategy.MOST_SPECIFIC
        engine = MediationEngine(tv_policy, free_time_env)
        assert engine.check("alice", "watch", "livingroom/tv")

    def test_priority_strategy(self, tv_policy, free_time_env):
        tv_policy.deny("child", "watch", "television", priority=1)
        tv_policy.grant("child", "watch", "television", priority=5)
        tv_policy.precedence = PrecedenceStrategy.PRIORITY
        engine = MediationEngine(tv_policy, free_time_env)
        assert engine.check("alice", "watch", "livingroom/tv")


class TestSessions:
    def test_session_restricts_usable_roles(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        session = tv_policy.sessions.open("alice")  # nothing active
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="alice"
        )
        assert not engine.decide(request, session=session).granted
        session.activate("child")
        assert engine.decide(request, session=session).granted

    def test_session_subject_mismatch_raises(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        session = tv_policy.sessions.open("bobby")
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="alice"
        )
        with pytest.raises(PolicyError):
            engine.decide(request, session=session)


class TestConfidence:
    def test_rule_min_confidence_gates_grant(self, tv_policy, free_time_env):
        tv_policy.grant(
            "parent", "view_stream", "any-object", min_confidence=0.9
        )
        engine = MediationEngine(tv_policy, free_time_env)
        weak = AccessRequest(
            transaction="view_stream",
            obj="livingroom/tv",
            subject="mom",
            identity_confidence=0.7,
        )
        strong = AccessRequest(
            transaction="view_stream",
            obj="livingroom/tv",
            subject="mom",
            identity_confidence=0.95,
        )
        assert not engine.decide(weak).granted
        assert engine.decide(strong).granted

    def test_engine_threshold_gates_grant(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env, confidence_threshold=0.9)
        weak = AccessRequest(
            transaction="watch",
            obj="livingroom/tv",
            subject="alice",
            identity_confidence=0.75,
        )
        assert not engine.decide(weak).granted

    def test_rule_threshold_overrides_engine_threshold(self, tv_policy, free_time_env):
        # §3 quality tiers: a rule with its own (lower) min_confidence
        # governs itself, even under a stricter house default.
        tv_policy.grant(
            "parent", "view_snapshot", "any-object", min_confidence=0.6
        )
        engine = MediationEngine(tv_policy, free_time_env, confidence_threshold=0.9)
        request = AccessRequest(
            transaction="view_snapshot",
            obj="livingroom/tv",
            subject="mom",
            identity_confidence=0.75,
        )
        assert engine.decide(request).granted

    def test_role_claims_without_identity(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env, confidence_threshold=0.9)
        request = AccessRequest(
            transaction="watch",
            obj="livingroom/tv",
            role_claims={"child": 0.98},
        )
        decision = engine.decide(request)
        assert decision.granted
        assert decision.request.subject is None

    def test_claims_combine_with_identity_take_max(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env, confidence_threshold=0.9)
        request = AccessRequest(
            transaction="watch",
            obj="livingroom/tv",
            subject="alice",
            identity_confidence=0.75,
            role_claims={"child": 0.98},
        )
        decision = engine.decide(request)
        assert decision.granted
        assert decision.subject_role_confidence["child"] == 0.98

    def test_low_confidence_never_escapes_a_deny(self, tv_policy, free_time_env):
        # Denies match at any confidence; weak evidence must not
        # unlock what a deny forbids.
        tv_policy.deny("child", "watch", "television")
        engine = MediationEngine(tv_policy, free_time_env, confidence_threshold=0.9)
        request = AccessRequest(
            transaction="watch",
            obj="livingroom/tv",
            role_claims={"child": 0.98},
        )
        assert not engine.decide(request).granted

    def test_claim_for_unknown_role_raises(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        with pytest.raises(UnknownEntityError):
            engine.decide(
                AccessRequest(
                    transaction="watch",
                    obj="livingroom/tv",
                    role_claims={"ghost": 0.9},
                )
            )

    def test_confidence_propagates_to_generalizations(self, tv_policy, free_time_env):
        tv_policy.grant("family-member", "open", "any-object")
        engine = MediationEngine(tv_policy, free_time_env)
        decision = engine.decide(
            AccessRequest(
                transaction="open",
                obj="kitchen/oven",
                role_claims={"child": 0.8},
            )
        )
        assert decision.subject_role_confidence["family-member"] == 0.8


class TestRequestValidation:
    def test_request_needs_subject_or_claims(self):
        with pytest.raises(PolicyError):
            AccessRequest(transaction="t", obj="o")

    def test_confidence_ranges_validated(self):
        with pytest.raises(PolicyError):
            AccessRequest(transaction="t", obj="o", subject="s", identity_confidence=2)
        with pytest.raises(PolicyError):
            AccessRequest(transaction="t", obj="o", role_claims={"r": -0.5})


class TestIndexedVsNaive:
    def test_paths_agree_on_fixture(self, tv_policy, free_time_env):
        indexed = MediationEngine(tv_policy, free_time_env, use_index=True)
        naive = MediationEngine(tv_policy, free_time_env, use_index=False)
        for subject in ("mom", "alice"):
            for obj in ("livingroom/tv", "kitchen/oven"):
                request = AccessRequest(
                    transaction="watch", obj=obj, subject=subject
                )
                assert (
                    indexed.decide(request).granted
                    == naive.decide(request).granted
                )

    def test_index_refreshes_after_rule_changes(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        assert engine.check("alice", "watch", "livingroom/tv")
        permission = tv_policy.permissions()[0]
        tv_policy.remove_permission(permission)
        assert not engine.check("alice", "watch", "livingroom/tv")
        tv_policy.add_permission(permission)
        assert engine.check("alice", "watch", "livingroom/tv")


class TestDecisionExplain:
    def test_explain_contains_key_facts(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        decision = engine.decide(
            AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
        )
        text = decision.explain()
        assert "GRANT" in text
        assert "alice" in text
        assert "child" in text
        assert "free-time" in text
        assert "matched rules:" in text

    def test_environment_override(self, tv_policy):
        engine = MediationEngine(tv_policy)  # no environment source
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="alice"
        )
        assert not engine.decide(request).granted
        assert engine.decide(request, environment_roles={"free-time"}).granted
