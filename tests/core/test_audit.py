"""Tests for the audit log."""

import pytest

from repro.core import AccessRequest, AuditLog, MediationEngine, StaticEnvironment


@pytest.fixture
def decisions(tv_policy):
    """A small batch of real decisions (grants and denials)."""
    engine = MediationEngine(tv_policy, StaticEnvironment({"free-time"}))
    requests = [
        AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice"),
        AccessRequest(transaction="watch", obj="livingroom/tv", subject="mom"),
        AccessRequest(transaction="watch", obj="kitchen/oven", subject="alice"),
        AccessRequest(transaction="watch", obj="livingroom/tv", subject="bobby"),
    ]
    return [engine.decide(request) for request in requests]


class TestRecording:
    def test_record_and_counts(self, decisions):
        log = AuditLog()
        for decision in decisions:
            log.record(decision)
        assert len(log) == 4
        assert log.grant_count == 2  # alice + bobby on the TV
        assert log.deny_count == 2
        assert log.total == 4
        assert log.grant_rate() == pytest.approx(0.5)

    def test_sequence_numbers_monotonic(self, decisions):
        log = AuditLog()
        records = [log.record(d) for d in decisions]
        assert [r.sequence for r in records] == [1, 2, 3, 4]

    def test_timestamps_from_clock(self, decisions):
        times = iter([10.0, 20.0, 30.0, 40.0])
        log = AuditLog(clock=lambda: next(times))
        records = [log.record(d) for d in decisions]
        assert [r.timestamp for r in records] == [10.0, 20.0, 30.0, 40.0]

    def test_no_clock_no_timestamp(self, decisions):
        log = AuditLog()
        assert log.record(decisions[0]).timestamp is None

    def test_capacity_evicts_oldest_but_keeps_totals(self, decisions):
        log = AuditLog(capacity=2)
        for decision in decisions:
            log.record(decision)
        assert len(log) == 2
        assert log.total == 4  # counters survive eviction
        assert [r.sequence for r in log] == [3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=0)


class TestQueries:
    def test_filter_by_subject(self, decisions):
        log = AuditLog()
        for decision in decisions:
            log.record(decision)
        assert len(log.records(subject="alice")) == 2
        assert len(log.grants(subject="alice")) == 1
        assert len(log.denials(subject="mom")) == 1

    def test_filter_by_object_and_outcome(self, decisions):
        log = AuditLog()
        for decision in decisions:
            log.record(decision)
        tv_grants = log.records(obj="livingroom/tv", granted=True)
        assert {r.subject for r in tv_grants} == {"alice", "bobby"}

    def test_filter_by_time_window(self, decisions):
        times = iter([10.0, 20.0, 30.0, 40.0])
        log = AuditLog(clock=lambda: next(times))
        for decision in decisions:
            log.record(decision)
        window = log.records(since=15.0, until=35.0)
        assert [r.timestamp for r in window] == [20.0, 30.0]

    def test_describe_and_summary(self, decisions):
        log = AuditLog(clock=lambda: 5.0)
        record = log.record(decisions[0])
        assert "GRANT" in record.describe()
        assert "alice" in record.describe()
        assert "4 decision" not in log.summary()
        for decision in decisions[1:]:
            log.record(decision)
        assert "4 decision(s)" in log.summary()

    def test_empty_log_grant_rate(self):
        assert AuditLog().grant_rate() == 0.0


class TestExport:
    def test_jsonl_one_line_per_decision(self, decisions):
        import json

        log = AuditLog(clock=lambda: 42.0)
        for decision in decisions:
            log.record(decision)
        lines = log.export_jsonl().strip().splitlines()
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first["sequence"] == 1
        assert first["timestamp"] == 42.0
        assert first["granted"] is True
        assert first["subject"] == "alice"
        assert first["transaction"] == "watch"
        assert "free-time" in first["environment_roles"]
        assert any("grant watch" in rule for rule in first["matched_rules"])
        assert first["subject_roles"]["child"] == 1.0

    def test_empty_export(self):
        assert AuditLog().export_jsonl() == ""
