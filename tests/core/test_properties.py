"""Property-based tests for the core model (hypothesis).

Invariants checked:

* hierarchy seniority is a partial order (reflexive, transitive,
  antisymmetric) and ``expand`` equals the union of closures;
* random edge insertions never produce a cycle (cycle attempts raise);
* the indexed mediation path is decision-equivalent to the naive
  quantifier transcription on random policies and requests;
* deny-overrides/allow-overrides resolutions are monotone in match
  sets (adding a deny never turns a deny-overrides grant... etc.).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    STAGE_ORDER,
    AccessRequest,
    MediationEngine,
    PrecedenceStrategy,
    Sign,
)
from repro.core.hierarchy import RoleHierarchy
from repro.core.roles import RoleKind, subject_role
from repro.exceptions import HierarchyCycleError
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)

# ----------------------------------------------------------------------
# Hierarchy properties
# ----------------------------------------------------------------------
edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
    min_size=0,
    max_size=30,
)


def build_hierarchy(edges) -> RoleHierarchy:
    h = RoleHierarchy(RoleKind.SUBJECT)
    names = [f"r{i}" for i in range(12)]
    for name in names:
        h.add_role(subject_role(name))
    for child, parent in edges:
        if child == parent:
            continue
        try:
            h.add_specialization(names[child], names[parent])
        except HierarchyCycleError:
            pass
    return h


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_hierarchy_seniority_is_partial_order(edges):
    h = build_hierarchy(edges)
    names = [r.name for r in h.roles()]
    # Reflexive
    for name in names:
        assert h.is_specialization_of(name, name)
    # Antisymmetric (a DAG cannot have a <= b and b <= a for a != b)
    for a in names:
        for b in names:
            if a != b and h.is_specialization_of(a, b):
                assert not h.is_specialization_of(b, a)
    # Transitive
    for a in names:
        for b in (r.name for r in h.generalizations(a)):
            for c in (r.name for r in h.generalizations(b)):
                assert h.is_specialization_of(a, c)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_hierarchy_expand_is_union_of_closures(edges):
    h = build_hierarchy(edges)
    names = [r.name for r in h.roles()]
    some = names[::3]
    expanded = {r.name for r in h.expand(some)}
    union = set()
    for name in some:
        union.add(name)
        union.update(r.name for r in h.generalizations(name))
    assert expanded == union


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_hierarchy_distance_consistent_with_closure(edges):
    h = build_hierarchy(edges)
    names = [r.name for r in h.roles()]
    for a in names[:6]:
        for b in names[:6]:
            distance = h.distance(a, b)
            related = h.is_specialization_of(a, b)
            assert (distance is not None) == related
            if a == b:
                assert distance == 0


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_hierarchy_never_becomes_cyclic(edges):
    h = build_hierarchy(edges)
    # topological_order succeeds only on DAGs.
    order = [r.name for r in h.topological_order()]
    position = {name: i for i, name in enumerate(order)}
    for child, parent in ((c.name, p.name) for c, p in h.edges()):
        assert position[child] < position[parent]


# ----------------------------------------------------------------------
# Mediation equivalence: indexed == naive
# ----------------------------------------------------------------------
@st.composite
def policy_configs(draw):
    """Random-policy configs whose permission count always fits the
    unique grant-tuple space (the generator draws signs randomly, so
    the safe capacity is the grant-only one)."""
    subject_roles = draw(st.integers(2, 6))
    object_roles = draw(st.integers(2, 5))
    environment_roles = draw(st.integers(1, 4))
    transactions = draw(st.integers(1, 5))
    capacity = (
        subject_roles * (object_roles + 1) * (environment_roles + 1) * transactions
    )
    return RandomPolicyConfig(
        subjects=draw(st.integers(2, 8)),
        objects=draw(st.integers(2, 8)),
        transactions=transactions,
        subject_roles=subject_roles,
        object_roles=object_roles,
        environment_roles=environment_roles,
        hierarchy_edges=draw(st.integers(0, 5)),
        roles_per_subject=draw(st.integers(1, 3)),
        roles_per_object=draw(st.integers(1, 3)),
        permissions=min(draw(st.integers(1, 25)), capacity),
        deny_fraction=draw(st.floats(0.0, 0.5)),
        seed=draw(st.integers(0, 10_000)),
    )


@given(policy_configs(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_indexed_engine_equals_naive_engine(config, request_seed):
    policy = generate_policy(config)
    indexed = MediationEngine(policy, use_index=True)
    naive = MediationEngine(policy, use_index=False)
    for generated in generate_requests(policy, 15, seed=request_seed):
        env = set(generated.active_environment_roles)
        a = indexed.decide(generated.request, environment_roles=env)
        b = naive.decide(generated.request, environment_roles=env)
        assert a.granted == b.granted
        assert {m.permission.key for m in a.matches} == {
            m.permission.key for m in b.matches
        }


# ----------------------------------------------------------------------
# Mediation equivalence: compiled == indexed == naive
# ----------------------------------------------------------------------
def _decision_fingerprint(decision):
    """Everything a decision path computes, order-insensitively."""
    return (
        decision.granted,
        decision.resolution.sign,
        sorted(
            (repr(m.permission.key), m.specificity, m.confidence)
            for m in decision.matches
        ),
        dict(decision.subject_role_confidence),
        decision.object_roles,
        decision.environment_roles,
    )


def _assert_all_paths_agree(policy, requests_with_env, confidence_threshold=0.0):
    engines = [
        MediationEngine(policy, mode=mode, confidence_threshold=confidence_threshold)
        for mode in ("compiled", "vectorized", "indexed", "naive")
    ]
    compiled = engines[0]
    vectorized = engines[1]
    decisions_per_engine = [
        [engine.decide(r, environment_roles=env) for r, env in requests_with_env]
        for engine in engines
    ]
    # Both batch lanes: the compiled scalar loop and the vectorized
    # struct-of-arrays kernel (decision templates included — the
    # stream is replayed twice so repeats hit the template memo).
    batch_requests = [r for r, _ in requests_with_env]
    batch_envs = [env for _, env in requests_with_env]
    decisions_per_engine.append(
        compiled.decide_batch(batch_requests, environment_roles=batch_envs)
    )
    for _ in range(2):
        decisions_per_engine.append(
            vectorized.decide_batch(batch_requests, environment_roles=batch_envs)
        )
    reference = [_decision_fingerprint(d) for d in decisions_per_engine[0]]
    for decisions in decisions_per_engine[1:]:
        assert [_decision_fingerprint(d) for d in decisions] == reference


@given(policy_configs(), st.integers(0, 10_000), st.data())
@settings(max_examples=40, deadline=None)
def test_compiled_equals_indexed_equals_naive_with_claims(
    config, request_seed, data
):
    """Full 3-way (plus batch) equivalence under partial authentication.

    Requests are enriched with random role claims, identity
    confidences, and engine thresholds, so the DENY-at-any-confidence
    rule and the wildcard roles (the generator emits ``any-object`` /
    ``any-environment`` rules) are exercised across all paths.
    """
    policy = generate_policy(config)
    threshold = data.draw(
        st.sampled_from([0.0, 0.3, 0.7, 0.95]), label="threshold"
    )
    role_names = [r.name for r in policy.subject_roles.roles()]
    requests_with_env = []
    for generated in generate_requests(policy, 8, seed=request_seed):
        base = generated.request
        claims = data.draw(
            st.dictionaries(
                st.sampled_from(role_names),
                st.floats(0.0, 1.0),
                max_size=2,
            ),
            label="claims",
        )
        identity = data.draw(st.floats(0.0, 1.0), label="identity")
        subject = base.subject
        if claims and data.draw(st.booleans(), label="drop_subject"):
            subject = None  # pure sensor-driven request (§5.2)
        request = AccessRequest(
            transaction=base.transaction,
            obj=base.obj,
            subject=subject,
            role_claims=claims,
            identity_confidence=identity,
        )
        requests_with_env.append(
            (request, set(generated.active_environment_roles))
        )
    _assert_all_paths_agree(policy, requests_with_env, threshold)


@given(policy_configs(), st.integers(0, 10_000), st.data())
@settings(max_examples=25, deadline=None)
def test_compiled_equals_indexed_equals_naive_with_sessions(
    config, request_seed, data
):
    """3-way equivalence when sessions restrict the active role set,
    including mid-session activation changes (the epoch-keyed memo
    must never serve a stale activation state)."""
    policy = generate_policy(config)
    engines = [
        MediationEngine(policy, mode=mode)
        for mode in ("compiled", "vectorized", "indexed", "naive")
    ]
    for generated in generate_requests(policy, 5, seed=request_seed):
        subject = generated.request.subject
        env = set(generated.active_environment_roles)
        session = policy.sessions.open(subject)
        try:
            for role in sorted(policy.authorized_subject_role_names(subject)):
                if data.draw(st.booleans(), label=f"activate {role}"):
                    session.activate(role)
            fingerprints = [
                _decision_fingerprint(
                    engine.decide(
                        generated.request, session=session, environment_roles=env
                    )
                )
                for engine in engines
            ]
            assert fingerprints[1:] == fingerprints[:-1]
            # Flip the activation state and re-check: the compiled
            # session memo must follow the epoch.
            active = sorted(session.active_roles)
            if active:
                session.deactivate(active[0])
                fingerprints = [
                    _decision_fingerprint(
                        engine.decide(
                            generated.request,
                            session=session,
                            environment_roles=env,
                        )
                    )
                    for engine in engines
                ]
                assert fingerprints[1:] == fingerprints[:-1]
        finally:
            policy.sessions.close(session)


@given(policy_configs(), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_compiled_snapshot_invalidates_on_revision_bumps(config, request_seed):
    """A held engine must re-compile and agree with a fresh naive
    engine after every kind of policy mutation."""
    policy = generate_policy(config)
    compiled = MediationEngine(policy, mode="compiled")
    stream = generate_requests(policy, 6, seed=request_seed)

    def check_against_fresh_naive():
        naive = MediationEngine(policy, mode="naive")
        for generated in stream:
            env = set(generated.active_environment_roles)
            a = compiled.decide(generated.request, environment_roles=env)
            b = naive.decide(generated.request, environment_roles=env)
            assert _decision_fingerprint(a) == _decision_fingerprint(b)

    check_against_fresh_naive()
    revision_before = policy.decision_revision
    # Permission mutation.
    removed = policy.permissions()[0]
    policy.remove_permission(removed)
    check_against_fresh_naive()
    policy.add_permission(removed)
    check_against_fresh_naive()
    # Assignment mutation.
    subject = policy.subjects()[0].name
    assigned = sorted(policy.authorized_subject_role_names(subject))
    if assigned:
        policy.revoke_subject(subject, assigned[0])
        check_against_fresh_naive()
        policy.assign_subject(subject, assigned[0])
        check_against_fresh_naive()
    # Hierarchy mutation (fresh leaf role, then an edge).
    policy.add_subject_role("prop-fresh-role")
    policy.subject_roles.add_specialization(
        "prop-fresh-role", policy.subject_roles.roles()[0].name
    )
    check_against_fresh_naive()
    assert policy.decision_revision > revision_before
    assert compiled.stats()["snapshot_revision"] == policy.decision_revision


# ----------------------------------------------------------------------
# Trace / decision coherence
# ----------------------------------------------------------------------
@given(
    policy_configs(),
    st.integers(0, 10_000),
    st.sampled_from(["compiled", "vectorized", "indexed", "naive"]),
)
@settings(max_examples=30, deadline=None)
def test_trace_coheres_with_decision(config, request_seed, mode):
    """A traced decision must agree with the untraced reference path,
    and its trace must mirror the decision: granted iff a matched
    permission survived precedence as a grant, stage spans in pipeline
    order with real timings, and stage outputs (role closures, active
    environment roles) equal to direct policy queries."""
    policy = generate_policy(config)
    engine = MediationEngine(policy, mode=mode)
    reference = MediationEngine(policy, mode="naive")
    for generated in generate_requests(policy, 6, seed=request_seed):
        env = set(generated.active_environment_roles)
        decision = engine.decide(
            generated.request, environment_roles=env, trace=True
        )
        trace = decision.trace
        assert trace is not None
        assert trace.mode == mode

        # Tracing must not change the decision.
        untraced = reference.decide(generated.request, environment_roles=env)
        assert _decision_fingerprint(decision) == _decision_fingerprint(untraced)

        # One timed span per pipeline stage, in order.
        assert [span.name for span in trace.spans] == list(STAGE_ORDER)
        assert all(
            span.duration_s is not None and span.duration_s >= 0.0
            for span in trace.spans
        )

        # Decision facts mirrored into the trace.
        assert trace.granted == decision.granted
        assert trace.matched_rules == [
            m.permission.describe() for m in decision.matches
        ]

        # Granted iff a matched permission survived precedence as a
        # grant (or the policy default grants when nothing matched).
        winner = decision.resolution.winner
        if winner is not None:
            assert decision.granted == (winner.sign is Sign.GRANT)
            assert winner.permission.describe() in trace.matched_rules
        else:
            assert not trace.matched_rules
            assert decision.granted == (policy.default_sign is Sign.GRANT)

        # Stage outputs equal direct policy queries.
        subject = generated.request.subject
        assigned = policy.authorized_subject_role_names(subject)
        assert set(trace.subject_roles) == {
            r.name for r in policy.subject_roles.expand(assigned)
        }
        assert set(trace.object_roles) == {
            r.name
            for r in policy.effective_object_roles(generated.request.obj)
        }
        known = {n for n in env if n in policy.environment_roles}
        expected_env = {r.name for r in policy.environment_roles.expand(known)}
        expected_env.add("any-environment")
        assert set(trace.environment_roles) == expected_env


@given(policy_configs(), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_deny_overrides_is_never_more_permissive(config, request_seed):
    """deny-overrides grants a subset of what allow-overrides grants."""
    policy = generate_policy(config)
    engine = MediationEngine(policy)
    for generated in generate_requests(policy, 10, seed=request_seed):
        env = set(generated.active_environment_roles)
        policy.precedence = PrecedenceStrategy.DENY_OVERRIDES
        deny_first = engine.decide(generated.request, environment_roles=env)
        policy.precedence = PrecedenceStrategy.ALLOW_OVERRIDES
        allow_first = engine.decide(generated.request, environment_roles=env)
        if deny_first.granted:
            assert allow_first.granted


@given(policy_configs(), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_activating_more_environment_roles_is_monotone_for_grant_only(
    config, request_seed
):
    """With no deny rules, more active environment roles never revoke."""
    # Zeroing deny_fraction halves the unique-rule space (sign is part
    # of the rule key), so cap the permission count to what fits.
    capacity = (
        config.subject_roles
        * (config.object_roles + 1)
        * (config.environment_roles + 1)
        * config.transactions
    )
    config = RandomPolicyConfig(
        **{
            **config.__dict__,
            "deny_fraction": 0.0,
            "permissions": min(config.permissions, capacity),
        }
    )
    policy = generate_policy(config)
    engine = MediationEngine(policy)
    all_env = {
        r.name for r in policy.environment_roles.roles()
        if r.name != "any-environment"
    }
    for generated in generate_requests(policy, 10, seed=request_seed):
        some = set(generated.active_environment_roles)
        with_some = engine.decide(generated.request, environment_roles=some)
        with_all = engine.decide(generated.request, environment_roles=all_env)
        if with_some.granted:
            assert with_all.granted
