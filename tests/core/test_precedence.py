"""Tests for role-precedence / conflict-resolution strategies."""


from repro.core.permissions import Permission, Sign
from repro.core.precedence import Match, PrecedenceStrategy, resolve
from repro.core.roles import environment_role, object_role, subject_role
from repro.core.transactions import Transaction


def match(sign: Sign, priority: int = 0, specificity: int = 0) -> Match:
    permission = Permission(
        subject_role=subject_role(f"s-{sign.value}-{priority}-{specificity}"),
        object_role=object_role("o"),
        environment_role=environment_role("e"),
        transaction=Transaction.simple("t"),
        sign=sign,
        priority=priority,
    )
    return Match(
        permission=permission,
        subject_role=permission.subject_role,
        object_role=permission.object_role,
        environment_role=permission.environment_role,
        specificity=specificity,
    )


class TestEmptyMatches:
    def test_default_deny(self):
        resolution = resolve([], PrecedenceStrategy.DENY_OVERRIDES)
        assert resolution.sign is Sign.DENY
        assert resolution.winner is None
        assert "no matching rule" in resolution.rationale

    def test_default_sign_respected(self):
        resolution = resolve(
            [], PrecedenceStrategy.DENY_OVERRIDES, default_sign=Sign.GRANT
        )
        assert resolution.sign is Sign.GRANT


class TestDenyOverrides:
    def test_deny_beats_grant(self):
        resolution = resolve(
            [match(Sign.GRANT), match(Sign.DENY)],
            PrecedenceStrategy.DENY_OVERRIDES,
        )
        assert resolution.sign is Sign.DENY
        assert resolution.winner.sign is Sign.DENY

    def test_all_grants_grant(self):
        resolution = resolve(
            [match(Sign.GRANT), match(Sign.GRANT)],
            PrecedenceStrategy.DENY_OVERRIDES,
        )
        assert resolution.sign is Sign.GRANT


class TestAllowOverrides:
    def test_grant_beats_deny(self):
        resolution = resolve(
            [match(Sign.DENY), match(Sign.GRANT)],
            PrecedenceStrategy.ALLOW_OVERRIDES,
        )
        assert resolution.sign is Sign.GRANT

    def test_all_denies_deny(self):
        resolution = resolve(
            [match(Sign.DENY)], PrecedenceStrategy.ALLOW_OVERRIDES
        )
        assert resolution.sign is Sign.DENY


class TestPriority:
    def test_higher_priority_wins(self):
        resolution = resolve(
            [match(Sign.DENY, priority=1), match(Sign.GRANT, priority=5)],
            PrecedenceStrategy.PRIORITY,
        )
        assert resolution.sign is Sign.GRANT

    def test_tie_falls_back_to_deny(self):
        resolution = resolve(
            [match(Sign.DENY, priority=3), match(Sign.GRANT, priority=3)],
            PrecedenceStrategy.PRIORITY,
        )
        assert resolution.sign is Sign.DENY

    def test_lower_priority_ignored_entirely(self):
        # A low-priority deny must not override a high-priority grant.
        resolution = resolve(
            [match(Sign.DENY, priority=0), match(Sign.GRANT, priority=9)],
            PrecedenceStrategy.PRIORITY,
        )
        assert resolution.sign is Sign.GRANT
        assert "priority 9" in resolution.rationale


class TestMostSpecific:
    def test_smaller_distance_wins(self):
        resolution = resolve(
            [match(Sign.DENY, specificity=5), match(Sign.GRANT, specificity=1)],
            PrecedenceStrategy.MOST_SPECIFIC,
        )
        assert resolution.sign is Sign.GRANT

    def test_tie_falls_back_to_deny(self):
        resolution = resolve(
            [match(Sign.DENY, specificity=2), match(Sign.GRANT, specificity=2)],
            PrecedenceStrategy.MOST_SPECIFIC,
        )
        assert resolution.sign is Sign.DENY


class TestRationale:
    def test_rationale_names_strategy(self):
        for strategy, needle in [
            (PrecedenceStrategy.DENY_OVERRIDES, "deny-overrides"),
            (PrecedenceStrategy.ALLOW_OVERRIDES, "allow-overrides"),
            (PrecedenceStrategy.PRIORITY, "priority"),
            (PrecedenceStrategy.MOST_SPECIFIC, "most-specific"),
        ]:
            resolution = resolve([match(Sign.GRANT)], strategy)
            assert needle in resolution.rationale
