"""Tests for mediation diagnosis — the 'why can't I?' answer."""

import pytest

from repro.core import AccessRequest, MediationEngine, StaticEnvironment


@pytest.fixture
def engine(tv_policy):
    return MediationEngine(tv_policy, StaticEnvironment())


class TestDiagnose:
    def test_matched_rule_reported(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="alice"
        )
        diagnoses = engine.diagnose(request)
        assert len(diagnoses) == 1
        assert diagnoses[0].matched
        assert diagnoses[0].describe().startswith("MATCHED")

    def test_missing_environment_named(self, engine):
        # free-time is NOT active.
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="alice"
        )
        (diagnosis,) = engine.diagnose(request)
        assert not diagnosis.matched
        assert diagnosis.subject_role_ok
        assert diagnosis.object_role_ok
        assert not diagnosis.environment_role_ok
        assert "'free-time' not active" in diagnosis.describe()

    def test_missing_subject_role_named(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="mom"
        )
        (diagnosis,) = engine.diagnose(request)
        assert not diagnosis.subject_role_ok
        assert "requester lacks role 'child'" in diagnosis.describe()

    def test_missing_object_role_named(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        request = AccessRequest(
            transaction="watch", obj="kitchen/oven", subject="alice"
        )
        (diagnosis,) = engine.diagnose(request)
        assert not diagnosis.object_role_ok
        assert "object lacks role" in diagnosis.describe()

    def test_confidence_gate_reported(self, tv_policy, free_time_env):
        tv_policy.grant("parent", "view_stream", min_confidence=0.9)
        engine = MediationEngine(tv_policy, free_time_env)
        request = AccessRequest(
            transaction="view_stream",
            obj="livingroom/tv",
            subject="mom",
            identity_confidence=0.6,
        )
        (diagnosis,) = engine.diagnose(request)
        assert diagnosis.subject_role_ok
        assert not diagnosis.confidence_ok
        assert "confidence too low" in diagnosis.describe()

    def test_nearest_miss_sorted_first(self, tv_policy, free_time_env):
        # Add a rule that misses on everything for alice/tv.
        tv_policy.add_subject_role("houseguest")
        tv_policy.grant("houseguest", "watch", "dangerous", "weekday")
        engine = MediationEngine(tv_policy, StaticEnvironment())
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="alice"
        )
        diagnoses = engine.diagnose(request)
        assert len(diagnoses) == 2
        assert diagnoses[0].conditions_met >= diagnoses[1].conditions_met
        # The near miss (only environment missing) leads.
        assert diagnoses[0].permission.subject_role.name == "child"

    def test_matches_decide_participation(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        request = AccessRequest(
            transaction="watch", obj="livingroom/tv", subject="alice"
        )
        decision = engine.decide(request)
        diagnoses = engine.diagnose(request)
        matched_keys = {
            d.permission.key for d in diagnoses if d.matched
        }
        assert matched_keys == {m.permission.key for m in decision.matches}

    def test_unknown_transaction_raises(self, engine):
        from repro.exceptions import UnknownEntityError

        with pytest.raises(UnknownEntityError):
            engine.diagnose(
                AccessRequest(
                    transaction="ghost", obj="livingroom/tv", subject="alice"
                )
            )
