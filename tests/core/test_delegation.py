"""Tests for time-boxed role delegation."""

from datetime import datetime

import pytest

from repro.core import GrbacPolicy
from repro.core.delegation import DelegationManager, DelegationState
from repro.env.clock import SimulatedClock
from repro.env.events import EventBus
from repro.exceptions import PolicyError


@pytest.fixture
def setup():
    clock = SimulatedClock(datetime(2000, 1, 17, 7, 0))
    bus = EventBus(clock=clock)
    policy = GrbacPolicy()
    policy.add_subject("repair-tech")
    policy.add_subject("mom")
    policy.add_subject_role("service-agent")
    policy.add_subject_role("parent")
    policy.assign_subject("mom", "parent")
    manager = DelegationManager(policy, clock, bus=bus)
    return policy, clock, bus, manager


class TestLifecycle:
    def test_immediate_delegation_assigns_role(self, setup):
        policy, clock, _, manager = setup
        delegation = manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        assert delegation.state is DelegationState.ACTIVE
        assert "service-agent" in policy.authorized_subject_role_names("repair-tech")

    def test_expiry_revokes_automatically(self, setup):
        policy, clock, _, manager = setup
        manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        clock.advance(hours=5)  # 12:00 — still active
        assert "service-agent" in policy.authorized_subject_role_names("repair-tech")
        clock.advance(hours=2)  # 14:00 — expired
        assert "service-agent" not in policy.authorized_subject_role_names(
            "repair-tech"
        )
        assert manager.delegations_of("repair-tech")[0].state is (
            DelegationState.EXPIRED
        )

    def test_future_start_waits(self, setup):
        policy, clock, _, manager = setup
        delegation = manager.delegate(
            "repair-tech",
            "service-agent",
            starting=datetime(2000, 1, 17, 8, 0),
            until=datetime(2000, 1, 17, 13, 0),
        )
        assert delegation.state is DelegationState.PENDING
        assert "service-agent" not in policy.authorized_subject_role_names(
            "repair-tech"
        )
        clock.advance(hours=2)  # 09:00
        assert delegation.state is DelegationState.ACTIVE
        assert "service-agent" in policy.authorized_subject_role_names("repair-tech")

    def test_window_skipped_entirely(self, setup):
        policy, clock, _, manager = setup
        delegation = manager.delegate(
            "repair-tech",
            "service-agent",
            starting=datetime(2000, 1, 17, 8, 0),
            until=datetime(2000, 1, 17, 9, 0),
        )
        clock.advance(hours=6)  # jump straight past the window
        assert delegation.state is DelegationState.EXPIRED
        assert "service-agent" not in policy.authorized_subject_role_names(
            "repair-tech"
        )

    def test_revocation_mid_window(self, setup):
        policy, clock, _, manager = setup
        delegation = manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        manager.revoke(delegation)
        assert delegation.state is DelegationState.REVOKED
        assert "service-agent" not in policy.authorized_subject_role_names(
            "repair-tech"
        )
        with pytest.raises(PolicyError):
            manager.revoke(delegation)  # already finished

    def test_events_published(self, setup):
        _, clock, bus, manager = setup
        manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        clock.advance(hours=7)
        types = [e.type for e in bus.history() if e.type.startswith("delegation.")]
        assert types == ["delegation.granted", "delegation.expired"]


class TestValidation:
    def test_unknown_subject_or_role(self, setup):
        _, _, _, manager = setup
        with pytest.raises(Exception):
            manager.delegate("ghost", "service-agent", until=datetime(2000, 1, 18))
        with pytest.raises(Exception):
            manager.delegate("repair-tech", "ghost-role", until=datetime(2000, 1, 18))

    def test_window_in_the_past(self, setup):
        _, _, _, manager = setup
        with pytest.raises(PolicyError):
            manager.delegate(
                "repair-tech", "service-agent", until=datetime(2000, 1, 16)
            )

    def test_inverted_window(self, setup):
        _, _, _, manager = setup
        with pytest.raises(PolicyError):
            manager.delegate(
                "repair-tech",
                "service-agent",
                starting=datetime(2000, 1, 18),
                until=datetime(2000, 1, 17, 12, 0),
            )

    def test_cannot_delegate_possessed_role(self, setup):
        _, _, _, manager = setup
        with pytest.raises(PolicyError, match="already possesses"):
            manager.delegate("mom", "parent", until=datetime(2000, 1, 18))

    def test_no_duplicate_live_delegations(self, setup):
        _, _, _, manager = setup
        manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        with pytest.raises(PolicyError, match="live delegation"):
            manager.delegate(
                "repair-tech", "service-agent", until=datetime(2000, 1, 17, 14, 0)
            )

    def test_redelegation_after_expiry_allowed(self, setup):
        _, clock, _, manager = setup
        manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        clock.advance(hours=7)
        second = manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 18, 0)
        )
        assert second.state is DelegationState.ACTIVE


class TestMediationIntegration:
    def test_access_follows_the_delegation_window(self, setup):
        policy, clock, _, manager = setup
        from repro.core import MediationEngine

        policy.add_object("dishwasher")
        policy.grant("service-agent", "repair")
        engine = MediationEngine(policy)
        assert not engine.check("repair-tech", "repair", "dishwasher")
        manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        assert engine.check("repair-tech", "repair", "dishwasher")
        clock.advance(hours=7)
        assert not engine.check("repair-tech", "repair", "dishwasher")

    def test_queries(self, setup):
        _, _, _, manager = setup
        delegation = manager.delegate(
            "repair-tech", "service-agent", until=datetime(2000, 1, 17, 13, 0)
        )
        assert manager.get(delegation.delegation_id) is delegation
        assert manager.active() == [delegation]
        assert "service-agent" in delegation.describe()
        with pytest.raises(PolicyError):
            manager.get("delegation-999")
