"""Tests for Subject and Resource value objects."""

import pytest

from repro.core.objects import Object, Resource
from repro.core.subjects import Subject
from repro.exceptions import PolicyError


class TestSubject:
    def test_basic_construction(self):
        alice = Subject("alice", {"age": 11})
        assert alice.name == "alice"
        assert alice.attribute("age") == 11

    def test_attribute_default(self):
        assert Subject("x").attribute("age", 99) == 99

    def test_equality_by_name_only(self):
        assert Subject("alice", {"age": 11}) == Subject("alice", {"age": 12})
        assert Subject("alice") != Subject("bob")

    def test_attributes_frozen_copy(self):
        attributes = {"age": 11}
        alice = Subject("alice", attributes)
        attributes["age"] = 50
        assert alice.attribute("age") == 11

    def test_with_attributes_returns_new_subject(self):
        alice = Subject("alice", {"age": 11})
        older = alice.with_attributes(age=12, grade=6)
        assert older.attribute("age") == 12
        assert older.attribute("grade") == 6
        assert alice.attribute("age") == 11

    def test_invalid_names_rejected(self):
        with pytest.raises(PolicyError):
            Subject("")
        with pytest.raises(PolicyError):
            Subject("has space")

    def test_str_is_name(self):
        assert str(Subject("alice")) == "alice"


class TestResource:
    def test_basic_construction(self):
        tv = Resource("livingroom/tv", {"type": "television"})
        assert tv.name == "livingroom/tv"
        assert tv.attribute("type") == "television"

    def test_object_alias(self):
        assert Object is Resource

    def test_equality_by_name(self):
        assert Resource("tv", {"a": 1}) == Resource("tv", {"a": 2})

    def test_with_attributes(self):
        tv = Resource("tv", {"rating": "G"})
        rated = tv.with_attributes(rating="R")
        assert rated.attribute("rating") == "R"
        assert tv.attribute("rating") == "G"

    def test_invalid_name_rejected(self):
        with pytest.raises(PolicyError):
            Resource("bad name")

    def test_hashable(self):
        assert len({Resource("tv"), Resource("tv")}) == 1
