"""Hash-chained audit log and evidence-pack verification.

The chain's security claim is narrow and testable: any in-place edit,
insertion, deletion, or reordering breaks a ``prev_hash`` /
``record_hash`` link, and tail truncation — which leaves a valid
shorter chain — is caught against the writer's ``.head`` sidecar
anchor.  Evidence packs extend the same property to exported query
results via a digest and an optional HMAC signature.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.audit import (
    GENESIS_HASH,
    HashChainWriter,
    canonical_json,
    chain_record_hash,
    read_head_anchor,
    verify_audit_chain,
)
from repro.core.evidence import (
    build_evidence_pack,
    join_traces,
    load_jsonl,
    pack_digest,
    query_audit_records,
    verify_audit_file,
    verify_evidence_pack,
)


def make_chain(payloads):
    """Hand-roll a chained JSONL text from record payloads."""
    lines = []
    prev = GENESIS_HASH
    for sequence, payload in enumerate(payloads, start=1):
        record = {"sequence": sequence, **payload}
        record["prev_hash"] = prev
        record["record_hash"] = chain_record_hash(
            prev,
            {k: v for k, v in record.items() if k not in ("prev_hash", "record_hash")},
        )
        prev = record["record_hash"]
        lines.append(json.dumps(record))
    return "\n".join(lines) + ("\n" if lines else "")


RECORDS = [
    {"subject": "alice", "object": "tv", "transaction": "watch",
     "granted": True, "tenant": "default", "timestamp": 100.0,
     "trace_id": "aa" * 8, "request_id": 1},
    {"subject": "bobby", "object": "oven", "transaction": "power_on",
     "granted": False, "tenant": "default", "timestamp": 200.0,
     "trace_id": "", "request_id": 2},
    {"subject": "alice", "object": "oven", "transaction": "power_on",
     "granted": False, "tenant": "unit-9", "timestamp": 300.0,
     "trace_id": "bb" * 8, "request_id": 3},
]


class TestChainVerification:
    def test_intact_chain_verifies(self) -> None:
        text = make_chain(RECORDS)
        verification = verify_audit_chain(text)
        assert verification.ok
        assert verification.records == 3
        assert verification.head_hash != GENESIS_HASH
        assert [e["subject"] for e in verification.entries] == [
            "alice", "bobby", "alice",
        ]

    def test_empty_chain_is_valid_genesis(self) -> None:
        verification = verify_audit_chain("")
        assert verification.ok
        assert verification.records == 0
        assert verification.head_hash == GENESIS_HASH

    def test_in_place_edit_detected(self) -> None:
        lines = make_chain(RECORDS).splitlines()
        lines[1] = lines[1].replace('"bobby"', '"mallory"')
        verification = verify_audit_chain("\n".join(lines))
        assert not verification.ok
        assert verification.error_line == 2
        assert "tampered" in verification.error

    def test_deleted_record_detected(self) -> None:
        lines = make_chain(RECORDS).splitlines()
        del lines[1]
        verification = verify_audit_chain("\n".join(lines))
        assert not verification.ok

    def test_reordered_records_detected(self) -> None:
        lines = make_chain(RECORDS).splitlines()
        lines[0], lines[1] = lines[1], lines[0]
        verification = verify_audit_chain("\n".join(lines))
        assert not verification.ok

    def test_truncation_caught_only_with_anchor(self) -> None:
        full = verify_audit_chain(make_chain(RECORDS))
        truncated = "\n".join(make_chain(RECORDS).splitlines()[:-1])
        # Without an anchor a truncated tail is a valid shorter chain.
        assert verify_audit_chain(truncated).ok
        anchored = verify_audit_chain(
            truncated, expect_head=full.head_hash, expect_records=3
        )
        assert not anchored.ok
        assert "truncated" in anchored.error

    def test_wrong_head_rejected(self) -> None:
        verification = verify_audit_chain(
            make_chain(RECORDS), expect_head="f" * 64
        )
        assert not verification.ok

    def test_non_json_line_rejected(self) -> None:
        verification = verify_audit_chain(make_chain(RECORDS) + "not json\n")
        assert not verification.ok
        assert verification.error_line == 4

    def test_canonical_json_is_order_insensitive(self) -> None:
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )


class TestHashChainWriter:
    def test_writes_verifiable_chain_and_anchor(self, tmp_path) -> None:
        path = str(tmp_path / "audit.jsonl")
        writer = HashChainWriter(path)
        for record in RECORDS:
            assert writer.append(dict(record))
        writer.close()
        verification = verify_audit_file(path)
        assert verification.ok
        assert verification.records == 3
        anchor = read_head_anchor(path + ".head")
        assert anchor is not None
        assert anchor["records"] == 3
        assert anchor["head_hash"] == verification.head_hash

    def test_resumes_existing_chain(self, tmp_path) -> None:
        path = str(tmp_path / "audit.jsonl")
        first = HashChainWriter(path)
        first.append(dict(RECORDS[0]))
        first.close()
        second = HashChainWriter(path)
        second.append(dict(RECORDS[1]))
        second.close()
        verification = verify_audit_file(path)
        assert verification.ok
        assert verification.records == 2

    def test_sidecar_catches_file_truncation(self, tmp_path) -> None:
        path = str(tmp_path / "audit.jsonl")
        writer = HashChainWriter(path)
        for record in RECORDS:
            writer.append(dict(record))
        writer.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
        verification = verify_audit_file(path)
        assert not verification.ok
        assert "truncated" in verification.error

    def test_torn_tail_truncated_on_resume(self, tmp_path) -> None:
        """A kill -9 mid-write leaves a partial last line; the resumed
        writer must drop it rather than append onto it."""
        path = str(tmp_path / "audit.jsonl")
        first = HashChainWriter(path)
        first.append(dict(RECORDS[0]))
        first.append(dict(RECORDS[1]))
        first.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"subject": "torn", "record_ha')
        second = HashChainWriter(path)
        second.append(dict(RECORDS[2]))
        second.close()
        verification = verify_audit_file(path)
        assert verification.ok
        assert verification.records == 3
        assert [e["subject"] for e in verification.entries] == [
            "alice", "bobby", "alice",
        ]

    def test_interior_damage_not_truncated_on_resume(self, tmp_path) -> None:
        """Only a torn *tail* is recovery; interior junk is tampering
        evidence and must survive resume for verify to report."""
        path = str(tmp_path / "audit.jsonl")
        first = HashChainWriter(path)
        first.append(dict(RECORDS[0]))
        first.append(dict(RECORDS[1]))
        first.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[0] = "junk line"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        second = HashChainWriter(path)
        second.append(dict(RECORDS[2]))
        second.close()
        text = open(path, encoding="utf-8").read()
        assert "junk line" in text
        verification = verify_audit_file(path)
        assert not verification.ok
        assert verification.error_line == 1

    def test_append_after_close_drops(self, tmp_path) -> None:
        writer = HashChainWriter(str(tmp_path / "audit.jsonl"))
        writer.close()
        assert not writer.append({"x": 1})
        assert writer.dropped == 1


class TestQueriesAndPacks:
    def test_conjunctive_filters(self) -> None:
        records = verify_audit_chain(make_chain(RECORDS)).entries
        assert len(query_audit_records(records, subject="alice")) == 2
        assert len(query_audit_records(records, granted=False)) == 2
        assert (
            len(query_audit_records(records, subject="alice", granted=False))
            == 1
        )
        assert len(query_audit_records(records, tenant="unit-9")) == 1
        window = query_audit_records(records, since=150.0, until=250.0)
        assert [r["subject"] for r in window] == ["bobby"]

    def test_join_traces_by_trace_then_request_id(self) -> None:
        records = verify_audit_chain(make_chain(RECORDS)).entries
        spans = [
            {"trace_id": "aa" * 8, "name": "router.route"},
            {"trace_id": "aa" * 8, "name": "pdp.decide"},
            {"request_id": 2, "name": "pdp.decide"},
        ]
        joined = join_traces(records, spans)
        assert len(joined["aa" * 8]) == 2
        assert len(joined["request_id:2"]) == 1

    def test_pack_digest_and_signature_round_trip(self) -> None:
        verification = verify_audit_chain(make_chain(RECORDS))
        records = query_audit_records(verification.entries, subject="alice")
        pack = build_evidence_pack(
            verification,
            records,
            {"subject": "alice"},
            source="audit.jsonl",
            generated_at=time.time(),
            key=b"swordfish",
            key_id="ops-1",
        )
        assert pack["matches"] == 2
        assert pack["chain"]["head_hash"] == verification.head_hash
        assert verify_evidence_pack(pack, key=b"swordfish") == (True, "")
        ok, reason = verify_evidence_pack(pack, key=b"wrong")
        assert not ok and "signature" in reason

    def test_altered_pack_fails_digest(self) -> None:
        verification = verify_audit_chain(make_chain(RECORDS))
        pack = build_evidence_pack(
            verification, list(verification.entries), {}, source="a"
        )
        pack["records"][0]["subject"] = "mallory"
        ok, reason = verify_evidence_pack(pack)
        assert not ok and "digest" in reason
        # pack_digest over the altered content differs from the claim.
        assert pack_digest(pack) != pack["digest"]

    def test_query_over_large_log_is_fast(self) -> None:
        many = [
            {
                "subject": f"s{i % 50}",
                "object": f"o{i % 20}",
                "transaction": "watch",
                "granted": i % 3 == 0,
                "tenant": "default",
                "timestamp": float(i),
            }
            for i in range(4000)
        ]
        text = make_chain(many)
        started = time.perf_counter()
        verification = verify_audit_chain(text)
        matches = query_audit_records(
            verification.entries, subject="s7", since=1000.0, until=3000.0
        )
        elapsed = time.perf_counter() - started
        assert verification.ok and matches
        assert elapsed < 5.0  # "completes in seconds" acceptance bound

    def test_load_jsonl_skips_blanks(self, tmp_path) -> None:
        path = tmp_path / "spans.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n', encoding="utf-8")
        assert load_jsonl(str(path)) == [{"a": 1}, {"b": 2}]
