"""Tests for AssignmentTable (authorized role sets, §4.1.1)."""

import pytest

from repro.core.assignment import AssignmentTable
from repro.core.roles import RoleKind, object_role, subject_role
from repro.exceptions import ConstraintViolationError, RoleKindError, UnknownEntityError


@pytest.fixture
def table() -> AssignmentTable:
    return AssignmentTable(RoleKind.SUBJECT, "subject")


class TestAssign:
    def test_assign_and_query(self, table):
        table.assign("alice", subject_role("child"))
        assert table.possesses("alice", "child")
        assert table.role_names_of("alice") == {"child"}
        assert table.members_of("child") == {"alice"}

    def test_assign_idempotent(self, table):
        role = subject_role("child")
        table.assign("alice", role)
        table.assign("alice", role)
        assert len(table) == 1

    def test_wrong_kind_rejected(self, table):
        with pytest.raises(RoleKindError):
            table.assign("alice", object_role("tv"))

    def test_unassigned_entity_queries_empty(self, table):
        assert table.roles_of("ghost") == set()
        assert not table.possesses("ghost", "child")
        assert table.members_of("ghost-role") == set()

    def test_member_count(self, table):
        table.assign("alice", subject_role("child"))
        table.assign("bobby", subject_role("child"))
        assert table.member_count("child") == 2
        assert table.member_count("parent") == 0


class TestRevoke:
    def test_revoke(self, table):
        table.assign("alice", subject_role("child"))
        table.revoke("alice", "child")
        assert not table.possesses("alice", "child")
        assert table.members_of("child") == set()

    def test_revoke_missing_raises(self, table):
        with pytest.raises(UnknownEntityError):
            table.revoke("alice", "child")

    def test_revoke_all(self, table):
        table.assign("alice", subject_role("child"))
        table.assign("alice", subject_role("student"))
        table.revoke_all("alice")
        assert table.roles_of("alice") == set()
        assert table.members_of("child") == set()

    def test_revoke_all_when_empty_is_safe(self, table):
        table.revoke_all("nobody")


class TestValidator:
    def test_validator_vetoes_assignment(self):
        def validator(entity, role, current):
            if role.name == "forbidden":
                raise ConstraintViolationError("no")

        table = AssignmentTable(RoleKind.SUBJECT, "subject", validator)
        table.assign("alice", subject_role("ok"))
        with pytest.raises(ConstraintViolationError):
            table.assign("alice", subject_role("forbidden"))
        # Veto left no partial state.
        assert table.role_names_of("alice") == {"ok"}

    def test_validator_sees_current_roles(self):
        seen = {}

        def validator(entity, role, current):
            seen[role.name] = set(current)

        table = AssignmentTable(RoleKind.SUBJECT, "subject", validator)
        table.assign("alice", subject_role("first"))
        table.assign("alice", subject_role("second"))
        assert seen["first"] == set()
        assert seen["second"] == {"first"}

    def test_validator_not_called_for_duplicate(self):
        calls = []
        table = AssignmentTable(
            RoleKind.SUBJECT, "subject", lambda e, r, c: calls.append(r.name)
        )
        role = subject_role("x")
        table.assign("alice", role)
        table.assign("alice", role)
        assert calls == ["x"]


class TestIteration:
    def test_entities_and_assignments(self, table):
        table.assign("alice", subject_role("child"))
        table.assign("mom", subject_role("parent"))
        assert set(table.entities()) == {"alice", "mom"}
        pairs = {(entity, role.name) for entity, role in table.assignments()}
        assert pairs == {("alice", "child"), ("mom", "parent")}

    def test_len_counts_assignments(self, table):
        table.assign("alice", subject_role("a"))
        table.assign("alice", subject_role("b"))
        table.assign("mom", subject_role("a"))
        assert len(table) == 3
