"""Tests for the administrative control layer."""

from datetime import datetime

import pytest

from repro.core import GrbacPolicy, Permission, Sign
from repro.core.admin import AdminAction, PolicyAdministrator
from repro.core.delegation import DelegationManager
from repro.core.roles import ANY_ENVIRONMENT, ANY_OBJECT
from repro.env.clock import SimulatedClock
from repro.exceptions import AccessDeniedError, PolicyError
from repro.policy.templates import install_figure2_household


@pytest.fixture
def setup():
    policy = GrbacPolicy()
    install_figure2_household(policy)
    clock = SimulatedClock(datetime(2000, 1, 17, 7, 0))
    delegations = DelegationManager(policy, clock)
    admin = PolicyAdministrator(policy, delegations=delegations)
    # Parents administer the guest subtree.
    for action in (
        AdminAction.ASSIGN_ROLE,
        AdminAction.REVOKE_ROLE,
        AdminAction.DELEGATE_ROLE,
        AdminAction.ADD_RULE,
        AdminAction.REMOVE_RULE,
    ):
        admin.grant_admin("parent", action, "authorized-guest")
    policy.add_subject("babysitter")
    return policy, clock, delegations, admin


class TestScope:
    def test_parent_manages_guest_subtree(self, setup):
        policy, _, _, admin = setup
        assert admin.may("mom", AdminAction.ASSIGN_ROLE, "authorized-guest")
        assert admin.may("mom", AdminAction.ASSIGN_ROLE, "service-agent")

    def test_parent_cannot_manage_family_roles(self, setup):
        _, _, _, admin = setup
        assert not admin.may("mom", AdminAction.ASSIGN_ROLE, "parent")
        assert not admin.may("mom", AdminAction.ASSIGN_ROLE, "child")
        assert not admin.may("mom", AdminAction.ASSIGN_ROLE, "home-user")

    def test_children_administer_nothing(self, setup):
        _, _, _, admin = setup
        assert not admin.may("alice", AdminAction.ASSIGN_ROLE, "authorized-guest")

    def test_admin_rights_flow_through_hierarchy(self, setup):
        policy, _, _, admin = setup
        # Grant on family-member: parents AND children hold it
        # effectively, because both specialize family-member.
        admin.grant_admin("family-member", AdminAction.ASSIGN_ROLE, "service-agent")
        assert admin.may("alice", AdminAction.ASSIGN_ROLE, "service-agent")

    def test_grant_validation(self, setup):
        _, _, _, admin = setup
        with pytest.raises(Exception):
            admin.grant_admin("ghost", AdminAction.ASSIGN_ROLE, "child")
        with pytest.raises(PolicyError):
            admin.grant_admin("parent", "assign", "child")

    def test_admin_grants_listing(self, setup):
        _, _, _, admin = setup
        grants = admin.admin_grants()
        assert ("parent", AdminAction.ASSIGN_ROLE, "authorized-guest") in grants


class TestOperations:
    def test_assign_and_revoke_in_scope(self, setup):
        policy, _, _, admin = setup
        admin.assign_role("mom", "babysitter", "authorized-guest")
        assert "authorized-guest" in policy.authorized_subject_role_names(
            "babysitter"
        )
        admin.revoke_role("mom", "babysitter", "authorized-guest")
        assert policy.authorized_subject_role_names("babysitter") == set()

    def test_out_of_scope_assignment_denied(self, setup):
        policy, _, _, admin = setup
        with pytest.raises(AccessDeniedError):
            admin.assign_role("mom", "babysitter", "parent")
        assert policy.authorized_subject_role_names("babysitter") == set()

    def test_unauthorized_actor_denied(self, setup):
        _, _, _, admin = setup
        with pytest.raises(AccessDeniedError):
            admin.assign_role("alice", "babysitter", "authorized-guest")

    def test_delegation_through_admin(self, setup):
        policy, clock, _, admin = setup
        delegation = admin.delegate_role(
            "mom", "babysitter", "service-agent", until=datetime(2000, 1, 17, 22, 0)
        )
        assert delegation.granted_by == "mom"
        assert "service-agent" in policy.authorized_subject_role_names("babysitter")
        clock.advance(hours=16)
        assert "service-agent" not in policy.authorized_subject_role_names(
            "babysitter"
        )

    def test_delegation_requires_manager(self, setup):
        policy, _, _, _ = setup
        bare_admin = PolicyAdministrator(policy)
        bare_admin.grant_admin(
            "parent", AdminAction.DELEGATE_ROLE, "authorized-guest"
        )
        with pytest.raises(PolicyError, match="delegation manager"):
            bare_admin.delegate_role(
                "mom", "babysitter", "authorized-guest", until=datetime(2000, 1, 18)
            )

    def test_rule_management_in_scope(self, setup):
        policy, _, _, admin = setup
        policy.add_transaction("open")
        rule = Permission(
            subject_role=policy.subject_roles.role("service-agent"),
            object_role=ANY_OBJECT,
            environment_role=ANY_ENVIRONMENT,
            transaction=policy.transaction("open"),
            sign=Sign.GRANT,
        )
        admin.add_rule("mom", rule)
        assert len(policy.permissions()) == 1
        admin.remove_rule("dad", rule)
        assert policy.permissions() == []

    def test_rule_for_out_of_scope_role_denied(self, setup):
        policy, _, _, admin = setup
        policy.add_transaction("open")
        rule = Permission(
            subject_role=policy.subject_roles.role("child"),
            object_role=ANY_OBJECT,
            environment_role=ANY_ENVIRONMENT,
            transaction=policy.transaction("open"),
            sign=Sign.GRANT,
        )
        with pytest.raises(AccessDeniedError):
            admin.add_rule("mom", rule)


class TestAdminAudit:
    def test_admin_events_published(self, setup):
        policy, clock, delegations, _ = setup
        from repro.env.events import EventBus

        bus = EventBus(clock=clock)
        admin = PolicyAdministrator(policy, delegations=delegations, bus=bus)
        admin.grant_admin("parent", AdminAction.ASSIGN_ROLE, "authorized-guest")
        admin.assign_role("mom", "babysitter", "authorized-guest")
        events = bus.history("admin.assign-role")
        assert len(events) == 1
        assert events[0].get("actor") == "mom"
        assert events[0].get("subject") == "babysitter"
