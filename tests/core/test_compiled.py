"""Compiled-snapshot mediation: structure, invalidation, batch path.

The equivalence of the compiled path with the indexed/naive paths is
property-tested in ``test_properties.py``; this file pins down the
snapshot mechanics themselves — interning, bitset closures, revision
invalidation, the expansion memos, ``decide_batch``, ``check``'s
environment passthrough, and the engine statistics surface.
"""

from __future__ import annotations

import pytest

from repro.core import (
    AccessRequest,
    GrbacPolicy,
    MediationEngine,
    Sign,
)
from repro.exceptions import PolicyError, UnknownEntityError


@pytest.fixture
def tv_policy() -> GrbacPolicy:
    policy = GrbacPolicy("tv")
    policy.add_subject_role("home-user")
    policy.add_subject_role("family-member")
    policy.add_subject_role("parent")
    policy.add_subject_role("child")
    policy.subject_roles.add_specialization("family-member", "home-user")
    policy.subject_roles.add_specialization("parent", "family-member")
    policy.subject_roles.add_specialization("child", "family-member")
    policy.add_object_role("entertainment")
    policy.add_object_role("television")
    policy.object_roles.add_specialization("television", "entertainment")
    policy.add_environment_role("free-time")
    policy.add_subject("mom")
    policy.add_subject("bobby")
    policy.add_object("tv")
    policy.assign_subject("mom", "parent")
    policy.assign_subject("bobby", "child")
    policy.assign_object("tv", "television")
    policy.grant("family-member", "watch", "entertainment", "free-time")
    policy.deny("child", "watch", "television")
    return policy


class TestCompiledPolicyStructure:
    def test_interning_is_dense_and_insertion_ordered(self, tv_policy):
        snapshot = tv_policy.compiled()
        ids = snapshot.subjects.ids
        assert sorted(ids.values()) == list(range(len(ids)))
        assert list(ids) == [r.name for r in tv_policy.subject_roles.roles()]

    def test_upward_closure_masks(self, tv_policy):
        snapshot = tv_policy.compiled()
        interned = snapshot.subjects
        parent_mask = interned.up_masks[interned.ids["parent"]]
        for name in ("parent", "family-member", "home-user"):
            assert parent_mask & (1 << interned.ids[name])
        assert not parent_mask & (1 << interned.ids["child"])

    def test_rules_bucketed_by_transaction_and_subject_role(self, tv_policy):
        snapshot = tv_policy.compiled()
        watch = snapshot.rules["watch"]
        family_id = snapshot.subjects.ids["family-member"]
        child_id = snapshot.subjects.ids["child"]
        assert {family_id, child_id} == set(watch)
        (deny_rule,) = watch[child_id]
        assert deny_rule.is_deny
        assert deny_rule.object_is_wildcard is False
        assert snapshot.rule_count == 2

    def test_snapshot_cached_per_revision(self, tv_policy):
        first = tv_policy.compiled()
        assert tv_policy.compiled() is first
        tv_policy.grant("parent", "configure", "television")
        second = tv_policy.compiled()
        assert second is not first
        assert second.revision > first.revision
        assert tv_policy.compile_count == 2


class TestCompiledDecisions:
    def test_compiled_is_default_mode(self, tv_policy):
        engine = MediationEngine(tv_policy)
        assert engine.mode == "compiled"
        assert engine.use_index is False

    def test_legacy_use_index_still_selects_old_paths(self, tv_policy):
        assert MediationEngine(tv_policy, use_index=True).mode == "indexed"
        assert MediationEngine(tv_policy, use_index=False).mode == "naive"

    def test_unknown_mode_rejected(self, tv_policy):
        with pytest.raises(PolicyError):
            MediationEngine(tv_policy, mode="turbo")

    def test_grant_and_deny_precedence(self, tv_policy):
        engine = MediationEngine(tv_policy)
        assert engine.check("mom", "watch", "tv", environment_roles={"free-time"})
        assert not engine.check(
            "bobby", "watch", "tv", environment_roles={"free-time"}
        )

    def test_check_environment_passthrough(self, tv_policy):
        engine = MediationEngine(tv_policy)
        # Without the environment role active, the grant cannot match.
        assert not engine.check("mom", "watch", "tv")
        assert engine.check("mom", "watch", "tv", environment_roles={"free-time"})

    def test_unknown_entities_raise_like_other_paths(self, tv_policy):
        engine = MediationEngine(tv_policy)
        with pytest.raises(UnknownEntityError):
            engine.check("stranger", "watch", "tv")
        with pytest.raises(UnknownEntityError):
            engine.check("mom", "watch", "toaster")
        with pytest.raises(UnknownEntityError):
            engine.check("mom", "defrost", "tv")

    def test_entities_registered_after_compile_are_visible(self, tv_policy):
        engine = MediationEngine(tv_policy)
        engine.check("mom", "watch", "tv")  # forces a compile
        # add_object / add_transaction do not move the decision
        # revision; the compiled path must still resolve them.
        tv_policy.add_object("radio")
        tv_policy.add_transaction("listen")
        request = AccessRequest(transaction="listen", obj="radio", subject="mom")
        decision = engine.decide(request)
        assert not decision.granted
        assert decision.matches == ()

    def test_snapshot_invalidates_on_each_mutation_kind(self, tv_policy):
        engine = MediationEngine(tv_policy)
        env = {"free-time"}
        assert not engine.check("bobby", "watch", "tv", environment_roles=env)
        revisions = {engine.stats()["snapshot_revision"]}

        # Permission mutation: retract the child deny.
        (deny,) = [
            p for p in tv_policy.permissions() if p.sign is Sign.DENY
        ]
        tv_policy.remove_permission(deny)
        assert engine.check("bobby", "watch", "tv", environment_roles=env)
        revisions.add(engine.stats()["snapshot_revision"])

        # Assignment mutation: bobby loses child (and with it the path
        # to family-member), so the grant stops matching.
        tv_policy.revoke_subject("bobby", "child")
        assert not engine.check("bobby", "watch", "tv", environment_roles=env)
        revisions.add(engine.stats()["snapshot_revision"])

        # Hierarchy mutation: assign a fresh role and wire it under
        # family-member — possession flows again.
        tv_policy.add_subject_role("teen")
        tv_policy.assign_subject("bobby", "teen")
        assert not engine.check("bobby", "watch", "tv", environment_roles=env)
        tv_policy.subject_roles.add_specialization("teen", "family-member")
        assert engine.check("bobby", "watch", "tv", environment_roles=env)
        revisions.add(engine.stats()["snapshot_revision"])

        assert len(revisions) == 4
        assert engine.stats()["compile_count"] >= 4

    def test_session_memo_tracks_activation_epoch(self, tv_policy):
        engine = MediationEngine(tv_policy)
        session = tv_policy.sessions.open("mom")
        request = AccessRequest(transaction="watch", obj="tv", subject="mom")
        env = {"free-time"}
        # No active roles: nothing matches.
        assert not engine.decide(
            request, session=session, environment_roles=env
        ).granted
        session.activate("parent")
        assert engine.decide(
            request, session=session, environment_roles=env
        ).granted
        session.deactivate("parent")
        assert not engine.decide(
            request, session=session, environment_roles=env
        ).granted

    def test_session_subject_mismatch_raises(self, tv_policy):
        engine = MediationEngine(tv_policy)
        session = tv_policy.sessions.open("mom")
        request = AccessRequest(transaction="watch", obj="tv", subject="bobby")
        with pytest.raises(PolicyError):
            engine.decide(request, session=session)

    def test_deny_matches_at_any_confidence(self, tv_policy):
        engine = MediationEngine(tv_policy, confidence_threshold=0.9)
        request = AccessRequest(
            transaction="watch", obj="tv", role_claims={"child": 0.2}
        )
        decision = engine.decide(request, environment_roles={"free-time"})
        assert not decision.granted
        # The weak claim still triggered the DENY rule; the GRANT was
        # confidence-gated out.
        assert [m.sign for m in decision.matches] == [Sign.DENY]


class TestDecideBatch:
    def _requests(self):
        return [
            AccessRequest(transaction="watch", obj="tv", subject="mom"),
            AccessRequest(transaction="watch", obj="tv", subject="bobby"),
        ]

    def test_shared_environment(self, tv_policy):
        engine = MediationEngine(tv_policy)
        decisions = engine.decide_batch(
            self._requests(), environment_roles={"free-time"}
        )
        assert [d.granted for d in decisions] == [True, False]

    def test_per_request_environments(self, tv_policy):
        engine = MediationEngine(tv_policy)
        decisions = engine.decide_batch(
            self._requests(), environment_roles=[{"free-time"}, set()]
        )
        assert [d.granted for d in decisions] == [True, False]

    def test_per_request_environment_length_mismatch(self, tv_policy):
        engine = MediationEngine(tv_policy)
        with pytest.raises(PolicyError):
            engine.decide_batch(self._requests(), environment_roles=[set()])

    def test_batch_equals_singles_on_every_mode(self, tv_policy):
        requests = self._requests() * 3
        for mode in ("compiled", "vectorized", "indexed", "naive"):
            engine = MediationEngine(tv_policy, mode=mode)
            singles = [
                engine.decide(r, environment_roles={"free-time"})
                for r in requests
            ]
            batched = engine.decide_batch(
                requests, environment_roles={"free-time"}
            )
            assert [d.granted for d in batched] == [
                d.granted for d in singles
            ]

    def test_batch_reuses_expansion_memos(self, tv_policy):
        engine = MediationEngine(tv_policy)
        engine.decide_batch(
            self._requests() * 10, environment_roles={"free-time"}
        )
        stats = engine.stats()
        assert stats["decisions"] == 20
        assert stats["compile_count"] == 1
        assert stats["subject_profiles"] == 2
        assert stats["object_profiles"] == 1
        assert stats["environment_profiles"] == 1


class TestEngineStats:
    def test_stats_shape(self, tv_policy):
        engine = MediationEngine(tv_policy, cache_size=16)
        env = {"free-time"}
        engine.check("mom", "watch", "tv", environment_roles=env)
        engine.check("mom", "watch", "tv", environment_roles=env)
        stats = engine.stats()
        assert stats["mode"] == "compiled"
        assert stats["decisions"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
        assert stats["cache_entries"] == 1
        assert stats["compile_count"] == 1
        assert stats["compile_time_s"] >= 0.0
        assert stats["compiled_rules"] == 2
        assert stats["snapshot_revision"] == tv_policy.decision_revision

    def test_stats_before_first_decision(self, tv_policy):
        stats = MediationEngine(tv_policy).stats()
        assert stats["decisions"] == 0
        assert stats["snapshot_revision"] is None
        assert stats["compiled_rules"] == 0
