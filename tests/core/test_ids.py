"""Tests for the identifier discipline."""

import pytest

from repro.core.ids import qualify, validate_identifier
from repro.exceptions import PolicyError


class TestValidateIdentifier:
    def test_valid_identifiers_returned_unchanged(self):
        for name in ("alice", "livingroom/tv", "kid-safe", "a.b.c", "x:y"):
            assert validate_identifier(name) == name

    def test_empty_rejected(self):
        with pytest.raises(PolicyError, match="non-empty"):
            validate_identifier("")

    def test_whitespace_rejected(self):
        for bad in ("two words", "tab\tname", "new\nline", " leading"):
            with pytest.raises(PolicyError, match="whitespace"):
                validate_identifier(bad)

    def test_non_string_rejected(self):
        with pytest.raises(PolicyError, match="must be a string"):
            validate_identifier(42)

    def test_kind_appears_in_message(self):
        with pytest.raises(PolicyError, match="widget"):
            validate_identifier("", kind="widget")


class TestQualify:
    def test_joins_namespace_and_name(self):
        assert qualify("livingroom", "tv") == "livingroom/tv"

    def test_both_parts_validated(self):
        with pytest.raises(PolicyError):
            qualify("", "tv")
        with pytest.raises(PolicyError):
            qualify("livingroom", "big tv")
