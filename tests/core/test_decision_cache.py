"""Tests for the mediation decision cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessRequest, MediationEngine, StaticEnvironment
from repro.exceptions import PolicyError
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)


@pytest.fixture
def cached_engine(tv_policy, free_time_env):
    return MediationEngine(tv_policy, free_time_env, cache_size=64)


REQUEST = dict(transaction="watch", obj="livingroom/tv", subject="alice")


class TestCacheBasics:
    def test_hit_on_repeat(self, cached_engine):
        first = cached_engine.decide(AccessRequest(**REQUEST))
        second = cached_engine.decide(AccessRequest(**REQUEST))
        assert second is first
        assert cached_engine.cache_hits == 1
        assert cached_engine.cache_misses == 1

    def test_different_requests_miss(self, cached_engine):
        cached_engine.decide(AccessRequest(**REQUEST))
        cached_engine.decide(
            AccessRequest(transaction="watch", obj="livingroom/tv", subject="bobby")
        )
        assert cached_engine.cache_hits == 0
        assert cached_engine.cache_misses == 2

    def test_disabled_by_default(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env)
        engine.decide(AccessRequest(**REQUEST))
        engine.decide(AccessRequest(**REQUEST))
        assert engine.cache_hits == 0

    def test_negative_size_rejected(self, tv_policy):
        with pytest.raises(PolicyError):
            MediationEngine(tv_policy, cache_size=-1)

    def test_lru_eviction(self, tv_policy, free_time_env):
        engine = MediationEngine(tv_policy, free_time_env, cache_size=1)
        engine.decide(AccessRequest(**REQUEST))
        engine.decide(
            AccessRequest(transaction="watch", obj="kitchen/oven", subject="alice")
        )
        engine.decide(AccessRequest(**REQUEST))  # evicted -> miss again
        assert engine.cache_hits == 0
        assert engine.cache_misses == 3


class TestCacheInvalidation:
    def test_environment_change_invalidates(self, tv_policy):
        environment = StaticEnvironment({"free-time"})
        engine = MediationEngine(tv_policy, environment, cache_size=64)
        assert engine.decide(AccessRequest(**REQUEST)).granted
        environment.deactivate("free-time")
        assert not engine.decide(AccessRequest(**REQUEST)).granted

    def test_permission_change_invalidates(self, cached_engine, tv_policy):
        assert cached_engine.decide(AccessRequest(**REQUEST)).granted
        tv_policy.deny("child", "watch", "television")
        assert not cached_engine.decide(AccessRequest(**REQUEST)).granted

    def test_assignment_change_invalidates(self, cached_engine, tv_policy):
        assert cached_engine.decide(AccessRequest(**REQUEST)).granted
        tv_policy.revoke_subject("alice", "child")
        assert not cached_engine.decide(AccessRequest(**REQUEST)).granted

    def test_hierarchy_change_invalidates(self, cached_engine, tv_policy):
        assert cached_engine.decide(AccessRequest(**REQUEST)).granted
        tv_policy.object_roles.remove_specialization(
            "television", "entertainment-devices"
        )
        assert not cached_engine.decide(AccessRequest(**REQUEST)).granted

    def test_sessions_bypass_cache(self, cached_engine, tv_policy):
        session = tv_policy.sessions.open("alice", activate=["child"])
        request = AccessRequest(**REQUEST)
        assert cached_engine.decide(request, session=session).granted
        session.deactivate("child")
        assert not cached_engine.decide(request, session=session).granted
        assert cached_engine.cache_hits == 0  # session decisions uncached


class TestCacheEquivalenceProperty:
    @given(seed=st.integers(0, 3_000), request_seed=st.integers(0, 3_000))
    @settings(max_examples=20, deadline=None)
    def test_cached_engine_equals_uncached(self, seed, request_seed):
        policy = generate_policy(RandomPolicyConfig(seed=seed, permissions=25))
        cached = MediationEngine(policy, cache_size=64)
        plain = MediationEngine(policy)
        # Repeat the request stream twice so hits actually occur.
        stream = generate_requests(policy, 20, seed=request_seed) * 2
        for generated in stream:
            env = set(generated.active_environment_roles)
            assert (
                cached.decide(generated.request, environment_roles=env).granted
                == plain.decide(generated.request, environment_roles=env).granted
            )
        assert cached.cache_hits > 0
