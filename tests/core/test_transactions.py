"""Tests for Operation and Transaction (Figure 1 definitions)."""

import pytest

from repro.core.transactions import Operation, Transaction
from repro.exceptions import PolicyError


class TestOperation:
    def test_basic(self):
        assert Operation("read").name == "read"
        assert str(Operation("read")) == "read"

    def test_invalid_name(self):
        with pytest.raises(PolicyError):
            Operation("")


class TestTransaction:
    def test_simple_builds_one_operation(self):
        txn = Transaction.simple("watch")
        assert txn.name == "watch"
        assert [op.name for op in txn.operations] == ["watch"]

    def test_default_operations_named_after_transaction(self):
        txn = Transaction("reboot")
        assert [op.name for op in txn.operations] == ["reboot"]

    def test_composite_preserves_order(self):
        txn = Transaction.composite(
            "reorder_groceries", ["read_inventory", "place_order"]
        )
        assert [op.name for op in txn.operations] == [
            "read_inventory",
            "place_order",
        ]

    def test_a_transaction_is_one_or_more_accesses(self):
        # Figure 1: "a series of one or more accesses".
        assert len(Transaction("t").operations) >= 1
        assert len(Transaction.composite("t2", ["a", "b", "c"]).operations) == 3

    def test_equality_by_name(self):
        assert Transaction.simple("t") == Transaction.composite("t", ["x", "y"])

    def test_invalid_name(self):
        with pytest.raises(PolicyError):
            Transaction.simple("two words")
