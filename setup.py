"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` (legacy editable install) works
in offline environments that lack ``bdist_wheel`` support.
"""

from setuptools import setup

setup()
