"""EX2 — the electronic intruder: adversarial probing of the household.

The paper's motivating threat (§1): "an electronic intruder can attack
the home at any time, from any location."  This bench runs the probe
battery against the fully configured household (the E12 home) and
reports what leaked — the quantitative closed-world check the paper
argues the home needs.

Expected shape: zero grants to the role-less stranger; zero grants to
out-of-window replays; claim-spoofing succeeds exactly on the surface
the policy *intends* sensed evidence to reach (the §5.2 trade), with
weak claims blocked once the confidence threshold is raised.
"""

from __future__ import annotations

from datetime import datetime

from repro.workload.adversary import AdversarySimulator, AttackReport
from repro.workload.scenarios import build_repairman_scenario

from test_bench_home_day import build_full_home


def test_bench_adversary(benchmark, report):
    rows = ["EX2 The electronic intruder vs. the full household"]

    home = build_full_home()
    home.runtime.clock.advance_to(datetime(2000, 1, 17, 19, 30))  # free time
    simulator = AdversarySimulator(home)

    attack = AttackReport()
    simulator.stranger_probe(attack)
    surface = attack.attempts["stranger"]
    rows.append(
        f"attack surface:                {surface} (operation x device) pairs"
    )
    rows.append(
        f"stranger probe:                {attack.grant_count('stranger')}"
        f"/{surface} granted"
    )
    assert attack.grant_count("stranger") == 0

    simulator.claim_spoof_probe(attack, confidences=(0.5, 0.99))
    spoof_grants = attack.grants_for("claim-spoof")
    spoof_transactions = sorted({g.transaction for g in spoof_grants})
    rows.append(
        f"claim-spoof probe:             {len(spoof_grants)}"
        f"/{attack.attempts['claim-spoof']} granted"
    )
    rows.append(
        f"  operations reachable by spoofed claims: {spoof_transactions}"
    )
    # FINDING: the household policy as first written accepts *any*
    # sensed role claim (no min_confidence on its grants), so an
    # asserted "parent" even reaches the oven.  The probe exists to
    # surface exactly this.
    oven_spoofs = [g for g in spoof_grants if g.obj == "kitchen/oven"]
    rows.append(
        f"  FINDING: spoofed claims reach the oven {len(oven_spoofs)} "
        f"way(s) - unqualified grants trust any sensed evidence"
    )
    assert oven_spoofs  # the probe must catch the weakness

    # Hardening step 1: a house-wide 90% threshold blocks weak claims.
    home.engine.confidence_threshold = 0.9
    strict = AttackReport()
    simulator.claim_spoof_probe(strict, confidences=(0.5,))
    rows.append(
        f"  hardened (house threshold 90%): weak 0.5 spoofs "
        f"{strict.grant_count('claim-spoof')}/{strict.attempts['claim-spoof']}"
    )
    assert strict.grant_count("claim-spoof") == 0

    # Hardening step 2: safety-critical rules demand near-certainty,
    # which sensed-only evidence (capped by sensor reliability < 1)
    # can never reach; explicit authentication still can.
    from repro.core import Sign

    for permission in list(home.policy.permissions()):
        if (
            permission.sign is Sign.GRANT
            and permission.object_role.name == "safety-critical"
        ):
            home.policy.remove_permission(permission)
            from repro.core import Permission

            home.policy.add_permission(
                Permission(
                    subject_role=permission.subject_role,
                    object_role=permission.object_role,
                    environment_role=permission.environment_role,
                    transaction=permission.transaction,
                    sign=permission.sign,
                    min_confidence=0.995,
                    priority=permission.priority,
                    name=permission.name,
                )
            )
    hardened = AttackReport()
    simulator.claim_spoof_probe(hardened, confidences=(0.99,))
    rows.append(
        f"  hardened (oven rules need 99.5%): 0.99 spoofs reaching "
        f"the oven: "
        f"{len([g for g in hardened.grants_for('claim-spoof') if g.obj == 'kitchen/oven'])}"
    )
    assert not any(
        g.obj == "kitchen/oven" for g in hardened.grants_for("claim-spoof")
    )
    home.engine.confidence_threshold = 0.0

    # Replay: the repairman comes back at midnight.
    scenario = build_repairman_scenario()
    repair_home = scenario.home
    repair_home.runtime.clock.advance(hours=2)
    repair_home.move("repair-tech", "kitchen")
    legitimate = [("diagnose", "kitchen/dishwasher"), ("open", "kitchen/fridge")]
    repair_home.runtime.clock.advance(hours=15)  # midnight
    replay_sim = AdversarySimulator(repair_home)
    replay = AttackReport()
    replay_sim.replay_probe(replay, "repair-tech", legitimate)
    rows.append(
        f"repairman midnight replay:     "
        f"{replay.grant_count('replay')}/{replay.attempts['replay']} granted"
    )
    assert replay.grant_count("replay") == 0

    # Blast radius of each legitimate account right now.
    mapping = simulator.privilege_map()
    rows.append("compromise blast radius (reachable operations, 19:30 Monday):")
    for subject, reachable in sorted(mapping.items()):
        rows.append(f"  {subject:>14}: {len(reachable)}")
    rows.append(
        "shape: fail-closed holds - the stranger and the midnight "
        "replay get nothing; the claim-spoof probe FINDS the intended "
        "weakness (unqualified grants trust sensed evidence) and both "
        "hardening levers (house threshold, per-rule min_confidence) "
        "verifiably close it."
    )

    fresh_report = AttackReport()

    def run():
        simulator.stranger_probe(fresh_report)

    benchmark(run)
    report("EX2-adversary", rows)
