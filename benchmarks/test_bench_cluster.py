"""E14 — cluster scaling and cluster-wide two-phase reload under load.

Two claims about the multi-worker PDP cluster are measured against
real forked workers behind the shard router:

* **Scaling** — with shard-affine keys (the router hashes tenant else
  subject, so a subject's whole stream lands on one worker and stays
  in that worker's decision cache), a 4-worker cluster should sustain
  at least ``SCALING_GATE``x the throughput of a 1-worker cluster
  *when the host actually has cores to scale onto*.  The gate is
  asserted only on hosts with >= 4 usable CPUs; on smaller machines
  the ratio is still measured and reported (workers just time-slice
  one core).
* **Reload correctness under load** (always asserted) — a cluster-wide
  two-phase reload driven mid-load must lose nothing: zero errors,
  zero drops, zero unavailable sheds, and zero mixed-generation
  answers — per shard, the flip from old-policy answers to new-policy
  answers happens exactly once, and afterwards every worker reports
  the same generation.

Machine-readable results go to ``benchmarks/reports/BENCH_cluster.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.cluster import ClusterSupervisor
from repro.core import AccessRequest
from repro.policy.admin import load_policy_text
from repro.service import (
    LoadgenConfig,
    PDPOutcome,
    RemotePDPClient,
    build_stream,
    compute_expected,
    run_loadgen,
)

SCALING_GATE = 2.5  # 4 workers vs 1, only gated with >= 4 CPUs
HOMES = 64
UNIQUE_REQUESTS = 400
REPEAT = 2
CONCURRENCY = 32

#: Probe subjects for the reload phase — spread across shards.
PROBES = 8


def build_policy_text(homes: int) -> str:
    """A §5.1-shaped entertainment policy instanced across homes.

    Written as DSL text (not a built policy object) because cluster
    workers are separate processes booting from a policy *file*.
    """
    lines = [
        "subject role family-member",
        "subject role parent extends family-member",
        "subject role child extends family-member",
        "object role entertainment-devices",
        "object role game-devices extends entertainment-devices",
        "environment role free-time",
    ]
    for i in range(homes):
        lines.append(f"subject mom-{i} is parent")
        lines.append(f"subject alice-{i} is child")
        lines.append(f"object home{i}/tv is entertainment-devices")
        lines.append(f"object home{i}/console is game-devices")
    lines += [
        "allow child to watch on entertainment-devices when free-time",
        "allow parent to watch, power_on on entertainment-devices",
        "precedence deny-overrides",
        "default deny",
    ]
    return "\n".join(lines) + "\n"


#: The reload flips this probe from DENY to GRANT on every shard.
NEW_RULE = "allow child to power_on on game-devices when free-time\n"


def probe_request(i: int) -> AccessRequest:
    return AccessRequest(
        "power_on", f"home{i}/console", subject=f"alice-{i}"
    )


def measure_cluster(policy_path, policy, stream, expected, workers):
    """Best-of-2 verified loadgen runs through a ``workers``-cluster."""

    loadgen_config = LoadgenConfig(
        requests=UNIQUE_REQUESTS,
        concurrency=CONCURRENCY,
        seed=14,
        repeat=REPEAT,
    )

    async def scenario():
        async with ClusterSupervisor(
            policy_path=str(policy_path),
            workers=workers,
            probe_interval_s=0.5,
            drain_timeout_s=2.0,
        ) as sup:
            client = await RemotePDPClient.connect(
                "127.0.0.1", sup.router.port, wire="binary"
            )
            try:
                warm = await run_loadgen(
                    client, stream, loadgen_config, expected=expected
                )
                assert warm.ok, "verification failed during cluster warmup"
                best = None
                for _ in range(2):
                    result = await run_loadgen(
                        client, stream, loadgen_config, expected=expected
                    )
                    assert result.ok, "stale answer or drop through router"
                    assert result.errors == 0
                    assert result.unavailable == 0
                    if (
                        best is None
                        or result.throughput_rps > best.throughput_rps
                    ):
                        best = result
            finally:
                await client.close()
            routed = {
                name: row["routed"]
                for name, row in sup.router.stats()["workers"].items()
            }
        return best, routed

    return asyncio.run(scenario())


def reload_under_load(policy_path, old_text):
    """Drive probes continuously while the cluster reloads under them.

    :returns: ``(per-probe outcome timelines, health after, tallies)``
        where each timeline is the ordered list of granted booleans
        that probe observed across the reload.
    """
    new_text = old_text + NEW_RULE

    async def scenario():
        async with ClusterSupervisor(
            policy_path=str(policy_path),
            workers=4,
            probe_interval_s=0.5,
            drain_timeout_s=2.0,
        ) as sup:
            client = await RemotePDPClient.connect(
                "127.0.0.1", sup.router.port, wire="binary"
            )
            timelines = {i: [] for i in range(PROBES)}
            tallies = {"decided": 0, "errors": 0, "unavailable": 0}
            stop = asyncio.Event()

            async def hammer(i: int) -> None:
                request = probe_request(i)
                while not stop.is_set():
                    try:
                        response = await client.decide(
                            request, environment_roles={"free-time"}
                        )
                    except Exception:
                        tallies["errors"] += 1
                        continue
                    if response.outcome is PDPOutcome.DENY_UNAVAILABLE:
                        tallies["unavailable"] += 1
                        continue
                    tallies["decided"] += 1
                    timelines[i].append(response.granted)

            drivers = [
                asyncio.get_running_loop().create_task(hammer(i))
                for i in range(PROBES)
            ]
            await asyncio.sleep(0.5)  # steady old-policy traffic first
            reload_started = time.perf_counter()
            result = await sup.reload_cluster(new_text, actor="bench-e14")
            reload_s = time.perf_counter() - reload_started
            assert result["accepted"], result["error"]
            await asyncio.sleep(0.5)  # steady new-policy traffic after
            stop.set()
            await asyncio.gather(*drivers)
            await client.close()
            health = await sup.cluster_health()
        return timelines, health, tallies, result, reload_s

    return asyncio.run(scenario())


def test_bench_cluster(benchmark, report, tmp_path):
    old_text = build_policy_text(HOMES)
    policy_path = tmp_path / "e14.grbac"
    policy_path.write_text(old_text, encoding="utf-8")
    policy = load_policy_text(old_text, name="e14")

    loadgen_config = LoadgenConfig(
        requests=UNIQUE_REQUESTS, concurrency=CONCURRENCY, seed=14,
        repeat=REPEAT,
    )
    stream = build_stream(policy, loadgen_config)
    expected = compute_expected(policy, stream)

    cpus = len(os.sched_getaffinity(0))
    rows = [
        "E14 Cluster scaling and two-phase reload under load",
        f"  policy: {HOMES} homes, "
        f"{policy.stats()['permissions']} permissions; "
        f"stream: {len(stream)} requests, {CONCURRENCY} closed-loop "
        f"workers, binary wire through the shard router",
        f"  host: {cpus} usable CPU(s)",
        "",
        f"  {'cluster':>10}{'req/s':>10}{'p50 us':>9}{'p95 us':>9}"
        f"{'shards hit':>12}",
    ]

    records = {}
    for workers in (1, 4):
        result, routed = measure_cluster(
            policy_path, policy, stream, expected, workers
        )
        active = sum(1 for count in routed.values() if count > 0)
        rows.append(
            f"  {workers:>8}w{'':>1}{result.throughput_rps:>10,.0f}"
            f"{result.latency_us(0.5):>9.1f}"
            f"{result.latency_us(0.95):>9.1f}{active:>12}"
        )
        records[f"workers_{workers}"] = {
            "throughput_rps": round(result.throughput_rps, 1),
            "latency_p50_us": round(result.latency_us(0.5), 1),
            "latency_p95_us": round(result.latency_us(0.95), 1),
            "completed": result.completed,
            "mismatches": result.mismatches,
            "errors": result.errors,
            "unavailable": result.unavailable,
            "shards_hit": active,
            "routed": routed,
        }

    scaling = (
        records["workers_4"]["throughput_rps"]
        / records["workers_1"]["throughput_rps"]
    )
    gated = cpus >= 4
    rows.append(
        f"  4-worker vs 1-worker: {scaling:.2f}x "
        + (
            f"(gate {SCALING_GATE}x, {cpus} CPUs)"
            if gated
            else f"(gate waived: only {cpus} CPU(s); workers time-slice)"
        )
    )
    assert records["workers_4"]["shards_hit"] == 4, (
        "shard-affine keys did not reach all four workers: "
        f"{records['workers_4']['routed']}"
    )
    if gated:
        assert scaling >= SCALING_GATE, (
            f"4-worker cluster is only {scaling:.2f}x a single worker "
            f"with shard-affine keys on a {cpus}-CPU host; the "
            f"acceptance gate is {SCALING_GATE}x"
        )

    # ---- two-phase reload under load (always gated) --------------------
    timelines, health, tallies, result, reload_s = reload_under_load(
        policy_path, old_text
    )
    flips = {}
    for i, timeline in timelines.items():
        assert timeline, f"probe {i} observed no decisions"
        # Old policy answers False, new policy answers True; a clean
        # per-shard cutover is False...False True...True — exactly one
        # flip, never back.  Anything else is a mixed-generation shard
        # or a resurrected old policy.
        transitions = sum(
            1
            for a, b in zip(timeline, timeline[1:])
            if a != b
        )
        assert timeline[0] is False, f"probe {i} started on the new policy"
        assert timeline[-1] is True, f"probe {i} never saw the new policy"
        assert transitions == 1, (
            f"probe {i} flipped {transitions} times — mixed-generation "
            f"answers during the reload"
        )
        flips[i] = timeline.index(True)
    assert tallies["errors"] == 0, tallies
    assert tallies["unavailable"] == 0, tallies
    assert health["healthy"] and health["generations"] == [1], health
    assert result["generations"] == {f"w{i}": 1 for i in range(4)}

    rows += [
        "",
        "  two-phase reload under load (4 workers, 8 shard-affine probes):",
        f"    decided {tallies['decided']} probes across the reload; "
        f"0 errors, 0 unavailable, 0 drops",
        f"    every probe flipped deny->grant exactly once; cluster "
        f"converged to generation 1 everywhere in {reload_s * 1000:.0f} ms",
        "",
        "shape: shard affinity keeps each subject's stream on one "
        "worker (and in that worker's decision cache); prepare runs the "
        "full validation pipeline on every worker while the old policy "
        "serves, and activate is a per-worker atomic swap — so the only "
        "observable transition is each shard's single deny->grant flip, "
        "with no window where a request errors or sheds.",
    ]

    json_path = os.path.join(
        os.path.dirname(__file__), "reports", "BENCH_cluster.json"
    )
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E14-cluster",
                "homes": HOMES,
                "cpus": cpus,
                "clusters": records,
                "scaling_4w_over_1w": round(scaling, 2),
                "scaling_gate": SCALING_GATE,
                "scaling_gate_asserted": gated,
                "reload_under_load": {
                    "probes": PROBES,
                    "decided": tallies["decided"],
                    "errors": tallies["errors"],
                    "unavailable": tallies["unavailable"],
                    "reload_ms": round(reload_s * 1000, 1),
                    "generations": result["generations"],
                    "flip_indexes": flips,
                },
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    rows.append(f"machine-readable results written to {json_path}")

    # pytest-benchmark hook: steady-state shard routing (the only hot
    # cluster-side cost that doesn't need live subprocesses).
    ring = __import__(
        "repro.cluster.ring", fromlist=["ConsistentHashRing"]
    ).ConsistentHashRing([f"w{i}" for i in range(4)])
    keys = [f"alice-{i}" for i in range(HOMES)]

    def route_all():
        for key in keys:
            ring.route(key)

    benchmark(route_all)
    report("E14-cluster", rows)
