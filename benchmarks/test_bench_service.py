"""E12 — decision-service throughput: micro-batched vs one-at-a-time.

Closed-loop load generation against the in-process PDP over a §5.1
entertainment scenario scaled to ~4000 permissions (500 homes, each
with the paper's child/parent entertainment rules and the §3 negative
right on safety-critical devices).  Four service configurations are
measured — the batching and caching axes ablated independently — and
every configuration's answers are verified against a direct,
cache-less :class:`MediationEngine` before its numbers count.

Acceptance gates (asserted, not just reported):

* the full service (micro-batching + warm revision-keyed cache) must
  sustain at least ``THROUGHPUT_GATE``x the throughput of the
  one-request-per-engine-call configuration (``max_batch=1``, cache
  off) at the 4000-permission point;
* the warm cache hit rate of the full service must be at least
  ``HIT_RATE_GATE``.

Machine-readable results go to ``benchmarks/reports/BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.core import GrbacPolicy
from repro.core.mediation import MediationEngine
from repro.service import (
    LoadgenConfig,
    PDPClient,
    PDPConfig,
    PolicyDecisionPoint,
    build_stream,
    compute_expected,
    run_loadgen,
)
from repro.service.client import RemotePDPClient
from repro.service.server import PDPServer

THROUGHPUT_GATE = 2.0  # batched+cached vs unbatched+uncached
HIT_RATE_GATE = 0.50  # warm cache hit rate of the full service
TRACE_OVERHEAD_GATE = 0.05  # traced (default sampling) vs untraced
DEFAULT_TRACE_SAMPLE_RATE = 0.01  # the rate a production deploy runs at

HOMES = 500  # 8 rules per home -> ~4000 permissions
UNIQUE_REQUESTS = 400
REPEAT = 3  # replays warm the revision-keyed cache
CONCURRENCY = 32
REPEATS = 2  # best-of-N timing runs per configuration


def build_entertainment_policy(homes: int) -> GrbacPolicy:
    """§5.1's entertainment policy, instanced across ``homes`` homes.

    Shared base hierarchy (family-member/parent/child), one role
    family and device set per home, and the same eight rules the
    single-home example ships with — which is how the permission count
    scales in the deployment the paper sketches (§6's "hundreds of
    millions of homes" divided into per-home policies of this shape).
    """
    policy = GrbacPolicy("entertainment-x%d" % homes)
    policy.add_subject_role("family-member")
    policy.add_subject_role("parent")
    policy.add_subject_role("child")
    policy.subject_roles.add_specialization("parent", "family-member")
    policy.subject_roles.add_specialization("child", "family-member")
    for name in ("weekday-free-time", "weekend", "kitchen-occupied"):
        policy.add_environment_role(name)
    for i in range(homes):
        parent_role = policy.add_subject_role(f"parent-{i}").name
        child_role = policy.add_subject_role(f"child-{i}").name
        policy.subject_roles.add_specialization(parent_role, "parent")
        policy.subject_roles.add_specialization(child_role, "child")
        policy.add_subject(f"mom-{i}")
        policy.assign_subject(f"mom-{i}", parent_role)
        policy.add_subject(f"alice-{i}")
        policy.assign_subject(f"alice-{i}", child_role)

        ent = policy.add_object_role(f"entertainment-{i}").name
        tv = policy.add_object_role(f"television-{i}").name
        games = policy.add_object_role(f"game-devices-{i}").name
        safety = policy.add_object_role(f"safety-critical-{i}").name
        policy.object_roles.add_specialization(tv, ent)
        policy.object_roles.add_specialization(games, ent)
        for obj, role in [
            (f"home{i}/tv", tv),
            (f"home{i}/stereo", ent),
            (f"home{i}/console", games),
            (f"home{i}/oven", safety),
        ]:
            policy.add_object(obj)
            policy.assign_object(obj, role)

        policy.grant(child_role, "watch", ent, "weekday-free-time")
        policy.grant(child_role, "power_on", games, "weekend")
        policy.grant(parent_role, "watch", ent)
        policy.grant(parent_role, "power_on", ent)
        policy.grant(parent_role, "power_on", safety, "kitchen-occupied")
        policy.deny(child_role, "power_on", safety)
        policy.grant(child_role, "query_status", ent)
        policy.grant(parent_role, "query_status", safety)
    return policy


def measure(policy, stream, expected, loadgen_config, *, max_batch, cache_size):
    """Best-of-N loadgen runs for one PDP configuration.

    A warming pass precedes the timed passes so cached configurations
    are measured at their steady state; the returned result is the
    fastest timed pass (the PDP and its cache persist across passes).
    """

    async def one_run(pdp, verify):
        client = PDPClient(pdp)
        return await run_loadgen(
            client, stream, loadgen_config,
            expected=expected if verify else None,
        )

    async def scenario():
        engine = MediationEngine(policy)
        pdp = PolicyDecisionPoint(
            engine,
            PDPConfig(
                max_batch=max_batch,
                max_wait_ms=0.5,
                max_queue=4096,
                cache_size=cache_size,
            ),
        )
        async with pdp:
            warm = await one_run(pdp, verify=True)
            assert warm.ok, "verification failed during warmup"
            best = None
            for _ in range(REPEATS):
                result = await one_run(pdp, verify=True)
                assert result.ok, "stale answer or silent drop while timing"
                if best is None or result.throughput_rps > best.throughput_rps:
                    best = result
        return best, pdp.stats()

    return asyncio.run(scenario())


def measure_wire(policy, stream, expected, loadgen_config, *, wire):
    """Best-of-N loadgen runs against a real TCP server on one wire.

    Same warming-pass discipline as :func:`measure`, but the client
    speaks NDJSON or binary framing over a loopback socket, so the
    numbers include encode/decode and event-loop I/O — exactly the
    costs the binary lane exists to shrink.
    """

    async def one_run(client, verify):
        return await run_loadgen(
            client, stream, loadgen_config,
            expected=expected if verify else None,
        )

    async def scenario():
        engine = MediationEngine(policy, mode="vectorized")
        pdp = PolicyDecisionPoint(
            engine,
            PDPConfig(
                max_batch=64, max_wait_ms=0.5, max_queue=4096,
                cache_size=4096,
            ),
        )
        async with PDPServer(pdp, host="127.0.0.1", port=0) as server:
            client = await RemotePDPClient.connect(
                "127.0.0.1", server.port, wire=wire
            )
            try:
                warm = await one_run(client, verify=True)
                assert warm.ok, "verification failed during wire warmup"
                best = None
                for _ in range(REPEATS):
                    result = await one_run(client, verify=True)
                    assert result.ok, "stale answer or drop on %s wire" % wire
                    if (
                        best is None
                        or result.throughput_rps > best.throughput_rps
                    ):
                        best = result
            finally:
                await client.close()
        return best

    return asyncio.run(scenario())


def test_bench_service(benchmark, report):
    policy = build_entertainment_policy(HOMES)
    permissions = policy.stats()["permissions"]
    assert permissions >= 4000

    loadgen_config = LoadgenConfig(
        requests=UNIQUE_REQUESTS,
        concurrency=CONCURRENCY,
        seed=11,
        repeat=REPEAT,
    )
    stream = build_stream(policy, loadgen_config)
    expected = compute_expected(policy, stream)

    configurations = [
        ("batched+cache", 64, 4096),
        ("batched", 64, 0),
        ("unbatched+cache", 1, 4096),
        ("unbatched", 1, 0),
    ]
    rows = [
        "E12 Decision-service throughput: micro-batching and caching ablated",
        f"  policy: {HOMES} homes, {permissions} permissions; "
        f"stream: {len(stream)} requests "
        f"({UNIQUE_REQUESTS} unique x {REPEAT}), "
        f"{CONCURRENCY} closed-loop workers",
        f"  {'configuration':>16}{'req/s':>10}{'p50 us':>9}{'p99 us':>9}"
        f"{'hit rate':>10}{'mean batch':>12}",
    ]
    records = {}
    for label, max_batch, cache_size in configurations:
        result, stats = measure(
            policy, stream, expected, loadgen_config,
            max_batch=max_batch, cache_size=cache_size,
        )
        hits = stats["cache_hits"]
        # Misses exclude uncacheable lookups (None keys, cache-off
        # configs), so the rate measures only cache-eligible traffic —
        # the cache-off rows report 0/0 here, not a fake near-zero rate.
        lookups = hits + stats["cache_misses"]
        hit_rate = hits / lookups if lookups else 0.0
        mean_batch = (
            stats["decided"] / stats["batches"] if stats["batches"] else 0.0
        )
        rows.append(
            f"  {label:>16}{result.throughput_rps:>10,.0f}"
            f"{result.latency_us(0.5):>9.1f}{result.latency_us(0.99):>9.1f}"
            f"{hit_rate:>10.1%}{mean_batch:>12.1f}"
        )
        records[label] = {
            "max_batch": max_batch,
            "cache_size": cache_size,
            "throughput_rps": round(result.throughput_rps, 1),
            "latency_p50_us": round(result.latency_us(0.5), 1),
            "latency_p95_us": round(result.latency_us(0.95), 1),
            "latency_p99_us": round(result.latency_us(0.99), 1),
            "cache_hit_rate": round(hit_rate, 4),
            "cache_uncacheable": stats["cache_uncacheable"],
            "mean_batch_size": round(mean_batch, 2),
            "completed": result.completed,
            "mismatches": result.mismatches,
            "dropped": result.dropped,
            "shed": result.shed,
            "timeouts": result.timeouts,
        }

    full = records["batched+cache"]
    baseline = records["unbatched"]
    speedup = full["throughput_rps"] / baseline["throughput_rps"]
    rows.append(
        f"  full service vs one-per-call: {speedup:.1f}x throughput "
        f"(gate {THROUGHPUT_GATE:.0f}x); warm hit rate "
        f"{full['cache_hit_rate']:.1%} (gate {HIT_RATE_GATE:.0%})"
    )
    rows.append(
        "shape: the cache turns the replayed share of the stream into "
        "synchronous dict hits, and micro-batching amortizes event-loop "
        "and snapshot overhead across the misses; the unbatched, "
        "uncached column pays one full queue/flush round trip per "
        "request, which is exactly the overhead the service exists to "
        "amortize.  Every configuration's answers were verified against "
        "a direct cache-less engine before being timed."
    )

    assert speedup >= THROUGHPUT_GATE, (
        f"micro-batched+cached service is only {speedup:.2f}x the "
        f"one-request-per-call configuration at {permissions} "
        f"permissions; the acceptance gate is {THROUGHPUT_GATE:.0f}x"
    )
    assert full["cache_hit_rate"] >= HIT_RATE_GATE, (
        f"warm cache hit rate {full['cache_hit_rate']:.1%} is below the "
        f"{HIT_RATE_GATE:.0%} gate"
    )

    # ---- wire framing: NDJSON vs binary over a loopback socket ---------
    rows.append("")
    rows.append(
        "wire framing over TCP (vectorized PDP, loopback, "
        "interned binary vs NDJSON):"
    )
    rows.append(
        f"  {'wire':>8}{'req/s':>10}{'p50 us':>9}{'p95 us':>9}{'p99 us':>9}"
    )
    wire_records = {}
    for wire in ("json", "binary"):
        result = measure_wire(
            policy, stream, expected, loadgen_config, wire=wire
        )
        rows.append(
            f"  {wire:>8}{result.throughput_rps:>10,.0f}"
            f"{result.latency_us(0.5):>9.1f}{result.latency_us(0.95):>9.1f}"
            f"{result.latency_us(0.99):>9.1f}"
        )
        wire_records[wire] = {
            "throughput_rps": round(result.throughput_rps, 1),
            "latency_p50_us": round(result.latency_us(0.5), 1),
            "latency_p95_us": round(result.latency_us(0.95), 1),
            "latency_p99_us": round(result.latency_us(0.99), 1),
            "completed": result.completed,
            "mismatches": result.mismatches,
        }
    wire_gain = (
        wire_records["binary"]["throughput_rps"]
        / wire_records["json"]["throughput_rps"]
    )
    rows.append(
        f"  binary framing gain: {wire_gain:.2f}x NDJSON throughput"
    )
    rows.append(
        "shape: both wires pay the same mediation cost server-side; the "
        "delta is pure codec + byte volume — fixed-width struct fields "
        "and interned u16/u32 role ids against per-request JSON "
        "serialization and parsing."
    )
    assert wire_gain > 1.0, (
        f"binary framing is not a measurable gain over NDJSON "
        f"({wire_gain:.2f}x)"
    )

    # ---- distributed tracing: traced vs untraced throughput ------------
    rows.append("")
    rows.append(
        "distributed tracing (full service, loadgen-originated context):"
    )
    rows.append(f"  {'tracing':>16}{'req/s':>10}{'p50 us':>9}{'p99 us':>9}")
    trace_records = {}
    trace_columns = [
        ("untraced", 0.0),
        (f"sampled@{DEFAULT_TRACE_SAMPLE_RATE:.0%}", DEFAULT_TRACE_SAMPLE_RATE),
        ("sampled@100%", 1.0),
    ]
    for label, rate in trace_columns:
        traced_config = LoadgenConfig(
            requests=UNIQUE_REQUESTS,
            concurrency=CONCURRENCY,
            seed=11,
            repeat=REPEAT,
            trace_sample_rate=rate,
        )
        result, _ = measure(
            policy, stream, expected, traced_config,
            max_batch=64, cache_size=4096,
        )
        rows.append(
            f"  {label:>16}{result.throughput_rps:>10,.0f}"
            f"{result.latency_us(0.5):>9.1f}{result.latency_us(0.99):>9.1f}"
        )
        trace_records[label] = {
            "trace_sample_rate": rate,
            "traced": result.traced,
            "throughput_rps": round(result.throughput_rps, 1),
            "latency_p50_us": round(result.latency_us(0.5), 1),
            "latency_p99_us": round(result.latency_us(0.99), 1),
        }
    untraced_rps = trace_records["untraced"]["throughput_rps"]
    default_label = f"sampled@{DEFAULT_TRACE_SAMPLE_RATE:.0%}"
    trace_overhead = 1.0 - (
        trace_records[default_label]["throughput_rps"] / untraced_rps
    )
    rows.append(
        f"  overhead at default sampling "
        f"({DEFAULT_TRACE_SAMPLE_RATE:.0%} of requests traced): "
        f"{trace_overhead:+.1%} (gate <= {TRACE_OVERHEAD_GATE:.0%})"
    )
    rows.append(
        "shape: untraced requests pay one sampler test and a None "
        "check; a sampled request additionally mints a context, rides "
        "it through the wire codec, and exports spans to the bounded "
        "collector — head sampling keeps that on a small fraction of "
        "traffic, which is what the overhead gate pins."
    )
    assert trace_overhead <= TRACE_OVERHEAD_GATE, (
        f"tracing at default sampling costs {trace_overhead:.1%} "
        f"throughput; the acceptance gate is {TRACE_OVERHEAD_GATE:.0%}"
    )

    report_dir = os.path.join(os.path.dirname(__file__), "reports")
    os.makedirs(report_dir, exist_ok=True)
    json_path = os.path.join(report_dir, "BENCH_service.json")
    # Trajectory accumulation: each run appends the full-service
    # headline numbers (client-side percentiles, shed/timeout counts)
    # so drift across commits is visible in one file, not just the
    # latest snapshot.
    trajectory: list = []
    if os.path.exists(json_path):
        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                trajectory = list(json.load(handle).get("trajectory", []))
        except (json.JSONDecodeError, OSError):
            trajectory = []
    trajectory.append(
        {
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "gate_speedup": round(speedup, 2),
            "throughput_rps": full["throughput_rps"],
            "latency_p50_us": full["latency_p50_us"],
            "latency_p95_us": full["latency_p95_us"],
            "latency_p99_us": full["latency_p99_us"],
            "cache_hit_rate": full["cache_hit_rate"],
            "shed": full["shed"],
            "timeouts": full["timeouts"],
            "wire_binary_gain": round(wire_gain, 2),
            "trace_overhead": round(trace_overhead, 4),
        }
    )
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E12-decision-service",
                "homes": HOMES,
                "permissions": permissions,
                "stream_requests": len(stream),
                "unique_requests": UNIQUE_REQUESTS,
                "concurrency": CONCURRENCY,
                "throughput_gate": THROUGHPUT_GATE,
                "gate_speedup": round(speedup, 2),
                "hit_rate_gate": HIT_RATE_GATE,
                "gate_hit_rate": full["cache_hit_rate"],
                "configurations": records,
                "wire_framing": wire_records,
                "wire_binary_gain": round(wire_gain, 2),
                "tracing": trace_records,
                "trace_overhead_gate": TRACE_OVERHEAD_GATE,
                "trace_overhead": round(trace_overhead, 4),
                "default_trace_sample_rate": DEFAULT_TRACE_SAMPLE_RATE,
                "trajectory": trajectory[-50:],
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    rows.append("")
    rows.append(f"machine-readable results written to {json_path}")

    # pytest-benchmark hook: one steady-state pass of the full service.
    bench_stream = stream[: UNIQUE_REQUESTS]

    def run():
        async def pass_once():
            engine = MediationEngine(policy)
            pdp = PolicyDecisionPoint(
                engine, PDPConfig(max_batch=64, max_wait_ms=0.5)
            )
            async with pdp:
                await run_loadgen(
                    PDPClient(pdp), bench_stream, loadgen_config
                )

        asyncio.run(pass_once())

    benchmark(run)
    report("E12-decision-service", rows)
