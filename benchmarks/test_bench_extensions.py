"""EX1 — extension subsystems: administration, delegation, context
injection, and serialization.

The paper defers the "prototype system" to future work (§7); these are
the pieces such a system needs beyond the model, and this bench
characterizes what each costs:

* a **delegation** lifecycle (grant → expire) including the clock-
  driven revocation;
* a mediated **administrative** operation vs. the unchecked policy
  mutation it wraps;
* **requester-relative environment roles** (the §4.2.2 videophone
  mechanism) vs. plain activator mediation;
* **serialization** round-trip throughput for a household-sized policy.
"""

from __future__ import annotations

import time
from datetime import datetime

from repro.core import AccessRequest, MediationEngine
from repro.core.admin import AdminAction, PolicyAdministrator
from repro.core.delegation import DelegationManager
from repro.env.clock import from_timestamp
from repro.home.devices import Videophone
from repro.home.registry import SecureHome
from repro.home.residents import standard_household
from repro.policy.serialize import from_json, to_json
from repro.policy.templates import install_figure2_household, install_figure2_roles
from repro.workload.generator import RandomPolicyConfig, generate_policy


def test_bench_extensions(benchmark, report):
    rows = ["EX1 Extension subsystems: administration, delegation, context"]

    # ---- delegation lifecycle -------------------------------------------
    from repro.core import GrbacPolicy
    from repro.env.clock import SimulatedClock

    policy = GrbacPolicy()
    install_figure2_household(policy)
    clock = SimulatedClock(datetime(2000, 1, 17, 8, 0))
    manager = DelegationManager(policy, clock)
    policy.add_subject("guest-0")
    iterations = 300
    start = time.perf_counter()
    for index in range(iterations):
        until = from_timestamp(clock.now() + 3600)
        delegation = manager.delegate("guest-0", "authorized-guest", until=until)
        clock.advance(hours=2)  # expire it
        assert delegation.state.value == "expired"
    lifecycle_us = (time.perf_counter() - start) / iterations * 1e6
    rows.append(
        f"delegation grant->expire lifecycle:      {lifecycle_us:8.1f} us"
    )

    # ---- admin-mediated vs direct mutation ------------------------------
    policy = GrbacPolicy()
    install_figure2_household(policy)
    policy.add_subject("sitter")
    admin = PolicyAdministrator(policy)
    admin.grant_admin("parent", AdminAction.ASSIGN_ROLE, "authorized-guest")
    admin.grant_admin("parent", AdminAction.REVOKE_ROLE, "authorized-guest")
    iterations = 2000
    start = time.perf_counter()
    for _ in range(iterations):
        policy.assign_subject("sitter", "authorized-guest")
        policy.revoke_subject("sitter", "authorized-guest")
    direct_us = (time.perf_counter() - start) / iterations * 1e6
    start = time.perf_counter()
    for _ in range(iterations):
        admin.assign_role("mom", "sitter", "authorized-guest")
        admin.revoke_role("mom", "sitter", "authorized-guest")
    admin_us = (time.perf_counter() - start) / iterations * 1e6
    rows.append(
        f"assign+revoke, unchecked:                {direct_us:8.1f} us"
    )
    rows.append(
        f"assign+revoke, admin-mediated:           {admin_us:8.1f} us "
        f"({admin_us / direct_us:.1f}x)"
    )

    # ---- requester-relative roles vs plain activator --------------------
    home = SecureHome(start=datetime(2000, 1, 17, 19, 0))
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    home.register_device(Videophone("videophone", "kitchen"))
    home.policy.add_environment_role("requester-in-kitchen")
    home.policy.grant(
        "child", "place_call", "communication", "requester-in-kitchen"
    )
    home.move("alice", "kitchen")
    request = AccessRequest(
        transaction="place_call", obj="kitchen/videophone", subject="alice"
    )
    plain_engine = MediationEngine(home.policy, home.runtime.activator)
    context_engine = home.engine
    iterations = 3000
    start = time.perf_counter()
    for _ in range(iterations):
        plain_engine.decide(request)
    plain_us = (time.perf_counter() - start) / iterations * 1e6
    start = time.perf_counter()
    for _ in range(iterations):
        context_engine.decide(request)
    context_us = (time.perf_counter() - start) / iterations * 1e6
    rows.append(
        f"mediation, global env roles only:        {plain_us:8.1f} us (denies)"
    )
    rows.append(
        f"mediation + requester-location roles:    {context_us:8.1f} us (grants)"
    )

    # ---- serialization throughput ----------------------------------------
    big = generate_policy(
        RandomPolicyConfig(
            subjects=50, objects=60, transactions=15, subject_roles=20,
            object_roles=12, environment_roles=8, permissions=400, seed=3,
        )
    )
    start = time.perf_counter()
    text = to_json(big)
    serialize_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    restored = from_json(text)
    deserialize_ms = (time.perf_counter() - start) * 1e3
    assert restored.stats() == big.stats()
    rows.append(
        f"serialize 400-rule policy to JSON:       {serialize_ms:8.1f} ms "
        f"({len(text) / 1024:.0f} KiB)"
    )
    rows.append(
        f"restore it:                              {deserialize_ms:8.1f} ms"
    )
    rows.append(
        "shape: administrative mediation costs microseconds over the "
        "raw mutation; requester-relative roles add a zone scan per "
        "decision; a household policy round-trips in milliseconds."
    )

    def run():
        context_engine.decide(request)

    benchmark(run)
    report("EX1-extensions", rows)
