"""E9 — §6 vs Bell–LaPadula: "GRBAC can implement multilevel access
control."

Exhaustively compares the GRBAC encoding of BLP (role chains +
grant-only rules, :mod:`repro.policy.mls`) against a direct reference
monitor, across lattice sizes and populations, then times both.

Expected shape: 100% agreement everywhere; the GRBAC encoding pays a
modest constant factor over the two-integer-compare reference.
"""

from __future__ import annotations

import time

from repro.policy.mls import agreement, build_pair


def population(levels, subjects: int, objects: int):
    subject_map = {
        f"subject-{i}": levels[i % len(levels)] for i in range(subjects)
    }
    object_map = {f"object-{i}": levels[(i * 7 + 3) % len(levels)] for i in range(objects)}
    return subject_map, object_map


def test_bench_rw_mls(benchmark, report):
    rows = [
        "E9  Bell-LaPadula encoded in GRBAC vs a direct reference monitor",
        f"  {'levels':>7}{'subjects':>9}{'objects':>8}{'checks':>8}"
        f"{'agree':>7}{'grbac us':>10}{'ref us':>8}",
    ]
    for level_count, subject_count, object_count in [
        (2, 6, 6),
        (4, 10, 10),
        (6, 12, 12),
        (8, 16, 16),
    ]:
        levels = [f"L{i}" for i in range(level_count)]
        subjects, objects = population(levels, subject_count, object_count)
        reference, encoding = build_pair(levels, subjects, objects)
        result = agreement(reference, encoding, list(subjects), list(objects))
        checks = result["agree"] + result["disagree"]

        start = time.perf_counter()
        for subject in subjects:
            for obj in objects:
                encoding.can_read(subject, obj)
                encoding.can_write(subject, obj)
        grbac_us = (time.perf_counter() - start) / checks * 1e6
        start = time.perf_counter()
        for subject in subjects:
            for obj in objects:
                reference.can_read(subject, obj)
                reference.can_write(subject, obj)
        ref_us = (time.perf_counter() - start) / checks * 1e6

        rows.append(
            f"  {level_count:>7}{subject_count:>9}{object_count:>8}{checks:>8}"
            f"{result['agree'] / checks:>7.0%}{grbac_us:>10.2f}{ref_us:>8.2f}"
        )
        assert result["disagree"] == 0
    rows.append(
        "shape: decision-for-decision agreement at every lattice size "
        "(simple security AND the strict *-property); the encoding uses "
        "only ordinary roles, hierarchies, and grants - no mediation "
        "special cases. The converse direction (BLP expressing GRBAC's "
        "environment roles) has no encoding, as the paper notes."
    )

    levels = [f"L{i}" for i in range(4)]
    subjects, objects = population(levels, 10, 10)
    _, encoding = build_pair(levels, subjects, objects)

    def run():
        encoding.can_read("subject-3", "object-4")
        encoding.can_write("subject-3", "object-4")

    benchmark(run)
    report("E9-rw-mls", rows)
