"""E7 — §6 vs GACL (Woo & Lam): system-load-based authorization.

A *low-load* environment role gates a heavy transaction ("certain
programs only can be executed when there is enough system capacity").
The bench replays a seeded load random walk, measures how the grant
rate tracks the configured threshold, and checks the gating is exact
(grant iff load below threshold at decision time).

Expected shape: grant rate rises monotonically with the threshold and
matches the fraction of time the walk spends below it.
"""

from __future__ import annotations

from datetime import datetime

from repro.core import GrbacPolicy, MediationEngine
from repro.env import (
    EnvironmentRoleActivator,
    EnvironmentState,
    SimulatedClock,
    SimulatedLoadProvider,
    state_below,
)


def build_system(threshold: float):
    clock = SimulatedClock(datetime(2000, 1, 1))
    state = EnvironmentState()
    activator = EnvironmentRoleActivator(state, clock)
    provider = SimulatedLoadProvider(state, initial=0.5, volatility=0.15, seed=42)
    policy = GrbacPolicy("gacl")
    policy.add_subject("batch-user")
    policy.add_subject_role("compute-user")
    policy.assign_subject("batch-user", "compute-user")
    policy.add_object("simulation-cluster")
    policy.add_environment_role("low-load")
    activator.bind("low-load", state_below("system.load", threshold))
    policy.grant("compute-user", "run_heavy_job", "any-object", "low-load")
    engine = MediationEngine(policy, activator)
    return engine, provider, clock


def test_bench_rw_load(benchmark, report):
    rows = [
        "E7  GACL-style load gating via a low-load environment role",
        f"  {'threshold':>10}{'time below':>12}{'grant rate':>12}{'exact':>7}",
    ]
    for threshold in (0.2, 0.4, 0.6, 0.8):
        engine, provider, clock = build_system(threshold)
        below = 0
        grants = 0
        exact = True
        steps = 600
        for _ in range(steps):
            load = provider.step()
            clock.advance(60)
            granted = engine.check(
                "batch-user", "run_heavy_job", "simulation-cluster"
            )
            if load < threshold:
                below += 1
            if granted:
                grants += 1
            if granted != (load < threshold):
                exact = False
        rows.append(
            f"  {threshold:>10.1f}{below / steps:>12.1%}{grants / steps:>12.1%}"
            f"{str(exact):>7}"
        )
        assert exact
    rows.append(
        "shape: grant rate equals the fraction of time the load walk "
        "spends under the threshold - the gate is exact and monotone."
    )

    engine, provider, clock = build_system(0.6)

    def run():
        provider.step()
        clock.advance(60)
        engine.check("batch-user", "run_heavy_job", "simulation-cluster")

    benchmark(run)
    report("E7-rw-load", rows)
