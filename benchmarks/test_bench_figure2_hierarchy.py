"""E2 — Figure 2: the household subject-role hierarchy.

Regenerates the figure (as an edge list + per-user effective role
sets) and characterizes hierarchy queries: possession-closure
(``expand``) cost as hierarchies get deeper and wider than the
household's.

Expected shape: expansion cost grows with the size of the reachable
ancestor set (depth), not with the total number of roles (width at
other branches), thanks to per-role closure caching.
"""

from __future__ import annotations

import time

from repro.core.hierarchy import RoleHierarchy
from repro.core.roles import RoleKind, subject_role
from repro.workload.scenarios import build_figure2_policy


def chain_hierarchy(depth: int) -> RoleHierarchy:
    hierarchy = RoleHierarchy(RoleKind.SUBJECT)
    names = [f"level-{i}" for i in range(depth)]
    for name in names:
        hierarchy.add_role(subject_role(name))
    for child, parent in zip(names, names[1:]):
        hierarchy.add_specialization(child, parent)
    return hierarchy


def star_hierarchy(width: int) -> RoleHierarchy:
    hierarchy = RoleHierarchy(RoleKind.SUBJECT)
    hierarchy.add_role(subject_role("root"))
    for index in range(width):
        leaf = subject_role(f"leaf-{index}")
        hierarchy.add_specialization(leaf, "root")
    return hierarchy


def mean_expand_us(hierarchy: RoleHierarchy, leaf: str, iterations: int = 2000) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        hierarchy.expand([leaf])
    return (time.perf_counter() - start) / iterations * 1e6


def test_bench_figure2_hierarchy(benchmark, report):
    policy = build_figure2_policy()
    hierarchy = policy.subject_roles

    def run():
        for subject in ("mom", "dad", "alice", "bobby", "dishwasher-repair-tech"):
            policy.effective_subject_roles(subject)

    benchmark(run)

    rows = ["E2  Figure 2: the example subject role hierarchy for the home", ""]
    rows.append("specialization edges (child -> parent):")
    for child, parent in sorted(
        (c.name, p.name) for c, p in hierarchy.edges()
    ):
        rows.append(f"  {child:<18} -> {parent}")
    rows.append("")
    rows.append("effective role sets (possession closure):")
    for subject in ("mom", "dad", "alice", "bobby", "dishwasher-repair-tech"):
        effective = sorted(
            r.name for r in policy.effective_subject_roles(subject)
        )
        rows.append(f"  {subject:<24} {', '.join(effective)}")
    rows.append("")
    rows.append("query scaling (expand a leaf role, cached closures):")
    rows.append(f"  {'shape':<22}{'roles':>7}{'us/expand':>11}")
    for depth in (4, 16, 64, 256):
        hierarchy = chain_hierarchy(depth)
        rows.append(
            f"  {'chain depth ' + str(depth):<22}{depth:>7}"
            f"{mean_expand_us(hierarchy, 'level-0'):>11.2f}"
        )
    for width in (16, 256, 1024):
        hierarchy = star_hierarchy(width)
        rows.append(
            f"  {'star width ' + str(width):<22}{width + 1:>7}"
            f"{mean_expand_us(hierarchy, 'leaf-0'):>11.2f}"
        )
    rows.append(
        "shape: chain cost grows with ancestor-set size; star cost is "
        "flat in width - expansion touches only reachable ancestors."
    )

    # Regenerate the figure itself as Graphviz DOT.
    import os

    policy = build_figure2_policy()
    members = {
        role.name: policy.subjects_in_role(role.name, transitive=False)
        for role in policy.subject_roles.roles()
    }
    dot = policy.subject_roles.to_dot("figure2", members=members)
    from conftest import REPORT_DIR

    os.makedirs(REPORT_DIR, exist_ok=True)
    dot_path = os.path.join(REPORT_DIR, "figure2.dot")
    with open(dot_path, "w", encoding="utf-8") as handle:
        handle.write(dot)
    rows.append("")
    rows.append(f"figure regenerated as Graphviz DOT: {dot_path}")
    report("E2-figure2-hierarchy", rows)
