"""E4 — §5.2: partial authentication through the Smart Floor.

Reproduces the paper's worked numbers (Alice: identity ≈75%, child
role ≈98%, threshold 90%) and sweeps the two knobs the argument turns
on: the sibling weight gap (identity ambiguity) and the confidence
threshold.  Ablates fusion strategies for the multi-sensor case.

Expected shape: identity-only authentication stops granting once the
threshold exceeds the identity posterior; role-level authentication
keeps granting until the threshold passes the floor's reliability.
"""

from __future__ import annotations

from repro.auth import AuthenticationService, FusionStrategy
from repro.sensors import SmartFloor, face_sensor, voice_sensor
from repro.workload.scenarios import build_s52_scenario


def test_bench_s52_partial_auth(benchmark, report):
    scenario = build_s52_scenario()
    home = scenario.home
    alice = home.resident("alice")
    presence = alice.presence()

    result = home.auth.authenticate(presence)
    identity = result.identity_confidence
    role = result.role_confidences["child"]

    def run():
        home.operate_with_presence(presence, "livingroom/tv", "power_on")

    benchmark(run)

    rows = [
        "E4  Section 5.2: Smart Floor partial authentication",
        f"paper: identity(alice) = 75%     measured: {identity:.1%}",
        f"paper: role(child)     = 98%     measured: {role:.1%}",
        f"paper: threshold       = 90%     engine:   "
        f"{home.engine.confidence_threshold:.0%}",
        "",
        "grant outcome vs threshold (identity-only vs role-level auth):",
        f"  {'threshold':>10}{'identity-only':>15}{'with role claims':>18}",
    ]
    from repro.core import AccessRequest

    for threshold in (0.5, 0.7, 0.76, 0.9, 0.99):
        home.engine.confidence_threshold = threshold
        identity_only = home.engine.decide(
            AccessRequest(
                transaction="power_on",
                obj="livingroom/tv",
                subject="alice",
                identity_confidence=identity,
            )
        ).granted
        with_roles = home.operate_with_presence(
            presence, "livingroom/tv", "power_on"
        ).granted
        rows.append(
            f"  {threshold:>10.0%}{'GRANT' if identity_only else 'deny':>15}"
            f"{'GRANT' if with_roles else 'deny':>18}"
        )
    home.engine.confidence_threshold = 0.9
    rows.append(
        "shape: the crossover sits between the 75% identity posterior "
        "and the 98% role confidence - exactly the paper's gap."
    )

    rows.append("")
    rows.append("sibling weight gap sweep (threshold 90%):")
    rows.append(f"  {'gap lb':>7}{'identity(alice)':>17}{'role(child)':>13}"
                f"{'identity grants?':>18}{'role grants?':>14}")
    for gap in (30, 12, 6, 3, 1):
        floor = SmartFloor(measurement_sigma=0.0, identity_sigma=4.0)
        floor.enroll("alice", 94.0)
        floor.enroll("bobby", 94.0 - gap)
        floor.enroll("mom", 135.0)
        floor.enroll("dad", 180.0)
        floor.define_weight_class("child", 40.0, 120.0)
        posterior = floor.identity_posterior(94.0)["alice"]
        confidence = floor.role_confidences(94.0)["child"]
        rows.append(
            f"  {gap:>7}{posterior:>17.2f}{confidence:>13.2f}"
            f"{str(posterior >= 0.9):>18}{str(confidence >= 0.9):>14}"
        )

    rows.append("")
    rows.append("fusion ablation: identity(alice) from floor+face+voice:")
    face = face_sensor()
    voice = voice_sensor()
    for resident in home.residents():
        face.enroll(resident.name, resident.face_signature)
        voice.enroll(resident.name, resident.voice_signature)
    for strategy in FusionStrategy:
        service = AuthenticationService(home.policy, strategy=strategy)
        service.register(scenario.extras["floor"])
        service.register(face)
        service.register(voice)
        fused = service.authenticate(presence).identity_confidence
        rows.append(f"  {strategy.value:<12} -> {fused:.3f}")
    rows.append(
        "shape: independent-error fusion crosses 90% with three "
        "agreeing sensors; max/min/mean do not."
    )

    # ---- realized error rates under stochastic sensing ------------------
    # The confidences above are *claims*; this section measures what
    # actually happens when the floor's measurement is noisy and the
    # face recognizer errs at its stated rate.
    rows.append("")
    rows.append("realized grant rates, stochastic sensors (noisy floor ±3 lb")
    rows.append("+ 90%-accurate face recognizer), 400 approaches each,")
    rows.append("threshold 90%:")
    rows.append(f"  {'person':>8}{'is child':>10}{'grant rate':>12}")

    noisy_floor = SmartFloor(
        measurement_sigma=3.0, identity_sigma=4.0, reliability=0.98, seed=17
    )
    stochastic_face = face_sensor(stochastic=True, seed=23)
    for resident in home.residents():
        noisy_floor.enroll(resident.name, resident.weight_lb)
        stochastic_face.enroll(resident.name, resident.face_signature)
    noisy_floor.define_weight_class("child", 40.0, 120.0)
    noisy_floor.define_weight_class("parent", 120.0, 260.0)
    service = AuthenticationService(home.policy, identity_threshold=0.5)
    service.register(noisy_floor)
    service.register(stochastic_face)

    trials = 400
    realized = {}
    for resident in home.residents():
        grants = 0
        for _ in range(trials):
            result = service.authenticate(resident.presence())
            try:
                req = service.build_request(result, "power_on", "livingroom/tv")
            except Exception:
                continue
            if home.engine.decide(req).granted:
                grants += 1
        realized[resident.name] = grants / trials
        rows.append(
            f"  {resident.name:>8}{str(resident.age < 18):>10}"
            f"{realized[resident.name]:>12.1%}"
        )
    rows.append(
        "shape: children are admitted at near-ceiling rates despite "
        "sensor noise (role evidence saturates); adults leak only "
        "through rare misidentifications - the residual risk the "
        "threshold knob prices."
    )
    assert realized["alice"] > 0.95 and realized["bobby"] > 0.95
    assert realized["mom"] < 0.15 and realized["dad"] < 0.15
    report("E4-s52-partial-auth", rows)
