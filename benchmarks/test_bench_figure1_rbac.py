"""E1 — Figure 1: the traditional RBAC definitions and mediation rule.

The paper's only formal figure.  This bench makes it executable and
characterizes it: ``exec(s, t)`` decision latency across model sizes,
reverse-index path vs the literal double loop, with a full-grid
equivalence check before any timing is trusted.

Expected shape: the indexed rule is O(|AR(s)|)-ish and flat in model
size; the naive loop grows with the authorized-role and transaction
sets.
"""

from __future__ import annotations

import random
import time


from repro.rbac.model import RbacModel


def build_model(subjects: int, roles: int, transactions: int, seed: int = 0) -> RbacModel:
    rng = random.Random(seed)
    model = RbacModel(f"bench-{subjects}x{roles}x{transactions}")
    subject_names = [f"s{i}" for i in range(subjects)]
    role_names = [f"r{i}" for i in range(roles)]
    transaction_names = [f"t{i}" for i in range(transactions)]
    for name in subject_names:
        model.add_subject(name)
    for name in role_names:
        model.add_role(name)
    for name in transaction_names:
        model.add_transaction(name)
    for subject in subject_names:
        for role in rng.sample(role_names, max(1, roles // 4)):
            model.authorize_role(subject, role)
    for role in role_names:
        for transaction in rng.sample(transaction_names, max(1, transactions // 4)):
            model.authorize_transaction(role, transaction)
    return model


def mean_exec_time(model: RbacModel, naive: bool, probes) -> float:
    start = time.perf_counter()
    for subject, transaction in probes:
        if naive:
            model.exec_naive(subject, transaction)
        else:
            model.exec_(subject, transaction)
    return (time.perf_counter() - start) / len(probes)


def test_bench_figure1_exec(benchmark, report):
    model = build_model(subjects=50, roles=20, transactions=30)
    rng = random.Random(1)
    subjects = model.subjects()
    transactions = model.transactions()
    probes = [
        (rng.choice(subjects), rng.choice(transactions)) for _ in range(200)
    ]

    # Equivalence of the indexed rule and the literal Figure 1 rule,
    # checked exhaustively before timing.
    for subject in subjects:
        for transaction in transactions:
            assert model.exec_(subject, transaction) == model.exec_naive(
                subject, transaction
            )

    def run():
        for subject, transaction in probes:
            model.exec_(subject, transaction)

    benchmark(run)

    rows = [
        "E1  Figure 1 RBAC mediation rule: exec(s,t) latency",
        f"{'model (S x R x T)':<22}{'indexed us/op':>14}{'naive us/op':>13}{'agree':>7}",
    ]
    for size in [(20, 10, 10), (50, 20, 30), (200, 50, 60), (500, 120, 100)]:
        model = build_model(*size)
        rng = random.Random(2)
        probes = [
            (rng.choice(model.subjects()), rng.choice(model.transactions()))
            for _ in range(300)
        ]
        agree = all(
            model.exec_(s, t) == model.exec_naive(s, t) for s, t in probes
        )
        indexed = mean_exec_time(model, naive=False, probes=probes) * 1e6
        naive = mean_exec_time(model, naive=True, probes=probes) * 1e6
        label = "x".join(str(v) for v in size)
        rows.append(f"{label:<22}{indexed:>14.2f}{naive:>13.2f}{str(agree):>7}")
    rows.append(
        "shape: indexed latency stays flat with model size; the naive "
        "double loop grows with |AR(s)| - Figure 1's rule is practical "
        "only with the reverse index."
    )
    report("E1-figure1-rbac", rows)
