"""E8 — §6 vs Gopal & Manber: content-based access via object roles.

Programs are catalogued into rating-based object roles (the MediaGuard
classifier); one rule per audience class governs arbitrarily many
programs.  The bench grows the catalogue and compares:

* rules needed: GRBAC stays at 2 (child + adult) while a per-object
  ACL grows linearly;
* decision latency vs catalogue size;
* correctness: every program decision matches the rating directly.
"""

from __future__ import annotations

import random
import time
from datetime import datetime

from repro.home.apps import MediaGuardApp
from repro.home.apps.mediaguard import KID_SAFE_RATINGS
from repro.home.devices import Television
from repro.home.registry import SecureHome
from repro.home.residents import standard_household
from repro.policy.templates import install_figure2_roles

RATINGS = ("G", "PG", "PG-13", "R")


def build_catalogue(size: int, seed: int = 0):
    home = SecureHome(start=datetime(2000, 1, 17, 19, 30))
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    tv = Television("tv", "livingroom")
    home.register_device(tv)
    app = MediaGuardApp(home, tv)
    MediaGuardApp.install_policy(home)
    rng = random.Random(seed)
    ratings = {}
    for channel in range(1, size + 1):
        rating = rng.choice(RATINGS)
        app.add_program(channel, f"program-{channel}", rating)
        ratings[channel] = rating
    return home, app, ratings


def test_bench_rw_content(benchmark, report):
    rows = [
        "E8  Content-based access control through object roles",
        f"  {'catalogue':>10}{'grbac rules':>12}{'acl entries':>12}"
        f"{'us/decision':>12}{'correct':>9}",
    ]
    for size in (10, 100, 500, 2000):
        home, app, ratings = build_catalogue(size)
        rule_count = len(
            [p for p in home.policy.permissions() if p.transaction.name == "view_program"]
        )
        # A per-object ACL system needs one entry per (program, class):
        acl_entries = size * 2
        sample = random.Random(1).sample(sorted(ratings), min(size, 100))
        start = time.perf_counter()
        correct = True
        for channel in sample:
            child_ok = app.can_watch("alice", channel)
            adult_ok = app.can_watch("mom", channel)
            expected_child = ratings[channel] in KID_SAFE_RATINGS
            if child_ok != expected_child or not adult_ok:
                correct = False
        per_decision = (time.perf_counter() - start) / (len(sample) * 2) * 1e6
        rows.append(
            f"  {size:>10}{rule_count:>12}{acl_entries:>12}"
            f"{per_decision:>12.2f}{str(correct):>9}"
        )
        assert correct
    rows.append(
        "shape: the GRBAC policy stays at 2 rules while ACL entries "
        "grow linearly with the catalogue; decision latency is flat in "
        "catalogue size (role lookup, not list scan)."
    )

    home, app, _ = build_catalogue(500)

    def run():
        app.can_watch("alice", 250)
        app.can_watch("mom", 250)

    benchmark(run)
    report("E8-rw-content", rows)
