"""E15 — continuous authorization: push-revocation latency at scale.

The §4.2.2 claim under measurement: when an environment role flips,
every standing grant it supported is *withdrawn by push* — the server
walks its session grant table and writes an unsolicited ``revoke`` to
each subscribed connection — fast enough that "children may use the
videophone only while in the kitchen" means what it says even with a
houseful of open sessions.

Two legs, both against real sockets:

* **In-process** — ``SESSIONS`` binary-wire connections subscribe one
  live-environment grant each; a simulated-clock advance crosses the
  22:00 free-time boundary and the flip-to-delivery latency of every
  push is measured end to end (server flip timestamp rides the revoke
  message; the client stamps receipt — one wall clock, no round
  trip).  Gates: >= ``MIN_SESSIONS`` concurrent subscribed sessions,
  sustained >= ``EVENTS_GATE`` delivered revocations/s, p99 <=
  ``P99_GATE_MS``.
* **Through the shard router** — the same flip relayed worker ->
  router -> client (the router forwards unsolicited worker messages
  byte-for-byte, no decode).  Gate: p99 <= ``ROUTER_P99_GATE_MS``.

Machine-readable results go to
``benchmarks/reports/BENCH_revocation.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from datetime import datetime

from repro.cluster import ShardRouter
from repro.core import AccessRequest, GrbacPolicy, MediationEngine
from repro.env.runtime import EnvironmentRuntime
from repro.env.temporal import time_window
from repro.service import (
    LoadgenResult,
    PDPServer,
    PolicyDecisionPoint,
    RemotePDPClient,
    SessionGrant,
    SessionGrantTable,
    attach_revocation_probe,
)

SESSIONS = 1000
ROUTER_SESSIONS = 400
ROUNDS = 3

MIN_SESSIONS = 1000
EVENTS_GATE = 5_000  # delivered revocations/s during a sweep
P99_GATE_MS = 50.0
ROUTER_P99_GATE_MS = 250.0

EVENING = datetime(2000, 1, 17, 20, 0)  # inside free-time 19:00-22:00


def build_pdp(subjects: int):
    runtime = EnvironmentRuntime(start=EVENING)
    policy = GrbacPolicy()
    policy.add_subject_role("child")
    policy.add_object("den/tv")
    policy.add_object_role("entertainment")
    policy.assign_object("den/tv", "entertainment")
    for i in range(subjects):
        policy.add_subject(f"kid-{i}")
        policy.assign_subject(f"kid-{i}", "child")
    runtime.define_time_role(policy, "free-time", time_window("19:00", "22:00"))
    policy.grant("child", "watch", "entertainment", "free-time")
    engine = MediationEngine(policy, runtime.activator)
    pdp = PolicyDecisionPoint(engine, env_revision=runtime)
    return runtime, pdp


async def run_rounds(runtime, pdp, port, sessions, rounds):
    """Subscribe ``sessions`` grants, flip, measure; repeat.

    Returns the merged probe result plus per-round sweep durations.
    Each round re-enters the free-time window (advance 21h: 23:00 ->
    20:00 next day), re-subscribes every session, then crosses 22:00.
    """
    clients = [
        await RemotePDPClient.connect("127.0.0.1", port, wire="binary")
        for _ in range(sessions)
    ]
    result = LoadgenResult()
    delivered = asyncio.Event()
    expected = {"count": 0}

    def on_any(revocation) -> None:
        if result.revocations >= expected["count"]:
            delivered.set()

    for client in clients:
        attach_revocation_probe(client, result)
        client.subscribe(on_any)

    sweep_times = []
    try:
        for round_index in range(rounds):
            if round_index:
                runtime.clock.advance(hours=21)  # back into the window
            await asyncio.gather(
                *(
                    client.decide(
                        AccessRequest("watch", "den/tv", subject=f"kid-{i}"),
                        subscribe=True,
                    )
                    for i, client in enumerate(clients)
                )
            )
            assert pdp.grants.grants == sessions, (
                f"round {round_index}: {pdp.grants.grants} grants "
                f"registered, expected {sessions}"
            )
            expected["count"] = result.revocations + sessions
            delivered.clear()
            started = time.perf_counter()
            runtime.clock.advance(hours=3)  # cross 22:00
            await asyncio.wait_for(delivered.wait(), timeout=30.0)
            sweep_times.append(time.perf_counter() - started)
            assert pdp.grants.grants == 0
    finally:
        for client in clients:
            await client.close()
    return result, sweep_times


def run_in_process():
    async def scenario():
        runtime, pdp = build_pdp(SESSIONS)
        server = PDPServer(pdp, environment=runtime)
        async with server:
            result, sweeps = await run_rounds(
                runtime, pdp, server.port, SESSIONS, ROUNDS
            )
            metrics = pdp.metrics.snapshot()
        return result, sweeps, metrics

    return asyncio.run(scenario())


def run_through_router():
    async def scenario():
        runtime, pdp = build_pdp(ROUTER_SESSIONS)
        worker = PDPServer(pdp, environment=runtime)
        await worker.start()
        router = ShardRouter({"w0": ("127.0.0.1", worker.port)})
        await router.start()
        try:
            result, sweeps = await run_rounds(
                runtime, pdp, router.port, ROUTER_SESSIONS, ROUNDS
            )
        finally:
            await router.stop()
            await worker.stop()
        return result, sweeps

    return asyncio.run(scenario())


def test_bench_revocation(benchmark, report):
    # ---- leg 1: in-process ------------------------------------------
    result, sweeps, metrics = run_in_process()
    total_events = result.revocations
    assert total_events == SESSIONS * ROUNDS
    assert SESSIONS >= MIN_SESSIONS
    events_per_s = min(
        SESSIONS / sweep for sweep in sweeps
    )  # worst round still has to clear the gate
    p50_ms = result.revocation_latency_ms(0.5)
    p99_ms = result.revocation_latency_ms(0.99)
    assert events_per_s >= EVENTS_GATE, (
        f"worst sweep delivered only {events_per_s:,.0f} revocations/s "
        f"to {SESSIONS} sessions; the gate is {EVENTS_GATE:,}/s"
    )
    assert p99_ms <= P99_GATE_MS, (
        f"in-process flip-to-delivery p99 {p99_ms:.1f} ms exceeds "
        f"{P99_GATE_MS} ms across {total_events} pushes"
    )
    # The server-side histogram saw every push it wrote.
    assert (
        metrics["histograms"]["pdp.revocation_latency"]["count"]
        == total_events
    )
    assert metrics["counters"]["pdp.revocations"] == total_events

    # ---- leg 2: through the shard router ----------------------------
    router_result, router_sweeps = run_through_router()
    router_events = router_result.revocations
    assert router_events == ROUTER_SESSIONS * ROUNDS
    router_p50_ms = router_result.revocation_latency_ms(0.5)
    router_p99_ms = router_result.revocation_latency_ms(0.99)
    assert router_p99_ms <= ROUTER_P99_GATE_MS, (
        f"routed flip-to-delivery p99 {router_p99_ms:.1f} ms exceeds "
        f"{ROUTER_P99_GATE_MS} ms across {router_events} pushes"
    )

    cpus = len(os.sched_getaffinity(0))
    rows = [
        "E15 Push revocation: flip-to-delivery latency at scale",
        f"  host: {cpus} usable CPU(s); binary wire; one subscribed "
        f"grant per connection; {ROUNDS} window re-entries per leg",
        "",
        f"  {'leg':>12}{'sessions':>10}{'events':>8}{'events/s':>11}"
        f"{'p50 ms':>8}{'p99 ms':>8}{'gate ms':>9}",
        f"  {'in-process':>12}{SESSIONS:>10}{total_events:>8}"
        f"{events_per_s:>11,.0f}{p50_ms:>8.1f}{p99_ms:>8.1f}"
        f"{P99_GATE_MS:>9.0f}",
        f"  {'via router':>12}{ROUTER_SESSIONS:>10}{router_events:>8}"
        f"{ROUTER_SESSIONS / min(router_sweeps):>11,.0f}"
        f"{router_p50_ms:>8.1f}{router_p99_ms:>8.1f}"
        f"{ROUTER_P99_GATE_MS:>9.0f}",
        "",
        "shape: the grant-table sweep runs synchronously at the flip "
        "(eager revision bump -> role.deactivated -> table walk) and "
        "each push is one inline buffer append on the grant's own "
        "connection — no per-push task, no request in flight anywhere; "
        "the router leg adds one byte-for-byte relay hop.",
    ]

    json_path = os.path.join(
        os.path.dirname(__file__), "reports", "BENCH_revocation.json"
    )
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E15-revocation",
                "cpus": cpus,
                "rounds": ROUNDS,
                "in_process": {
                    "sessions": SESSIONS,
                    "events": total_events,
                    "events_per_s": round(events_per_s, 1),
                    "events_per_s_gate": EVENTS_GATE,
                    "p50_ms": round(p50_ms, 3),
                    "p99_ms": round(p99_ms, 3),
                    "p99_gate_ms": P99_GATE_MS,
                    "server_histogram_count": metrics["histograms"][
                        "pdp.revocation_latency"
                    ]["count"],
                },
                "via_router": {
                    "sessions": ROUTER_SESSIONS,
                    "events": router_events,
                    "events_per_s": round(
                        ROUTER_SESSIONS / min(router_sweeps), 1
                    ),
                    "p50_ms": round(router_p50_ms, 3),
                    "p99_ms": round(router_p99_ms, 3),
                    "p99_gate_ms": ROUTER_P99_GATE_MS,
                },
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    rows.append(f"machine-readable results written to {json_path}")

    # pytest-benchmark hook: the pure table sweep (register + revoke),
    # the server-side cost a flip pays before any bytes move.
    table = SessionGrantTable()
    keys = [object() for _ in range(1000)]
    for key in keys:
        table.attach_session(key, lambda *args: None)

    def sweep_1000():
        for i, key in enumerate(keys):
            table.register(
                SessionGrant(
                    session_id=key,
                    grant_id=i,
                    subject="kid",
                    transaction="watch",
                    obj="den/tv",
                    roles=frozenset({"free-time"}),
                )
            )
        table.revoke_role("free-time", reason="bench flip", ts=0.0)

    benchmark(sweep_1000)
    report("E15-revocation", rows)
