"""Shared helpers for the benchmark harness.

Every experiment (E1–E12, see DESIGN.md §5) produces a human-readable
report: rows printed to stdout *and* appended to
``benchmarks/reports/<experiment>.txt`` so `pytest benchmarks/
--benchmark-only | tee bench_output.txt` plus the reports directory
together capture everything EXPERIMENTS.md references.
"""

from __future__ import annotations

import os
from typing import Iterable

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def write_report(experiment: str, lines: Iterable[str]) -> None:
    """Print report lines and persist them under benchmarks/reports/."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    text = "\n".join(lines)
    print(f"\n[{experiment}]")
    print(text)
    path = os.path.join(REPORT_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture
def report():
    """Fixture handing benches the report writer."""
    return write_report
