"""E12 — end to end: a full day of household life through the whole
stack.

The complete Aware Home (all devices, all four applications, the
Figure 2 household) runs a 24-hour schedule-driven trace: residents
move room to room, use whatever is around them, the utility agent
ticks hourly, and every attempt is mediated and audited.

Expected shape: thousands of decisions per second of wall time;
grants/denials split along role lines (children denied the oven and
R-rated channels, the agent denied actuation when the house empties).
"""

from __future__ import annotations

import time
from datetime import datetime

from repro.home.apps import CyberfridgeApp, MediaGuardApp, UtilityApp
from repro.home.devices import (
    Oven,
    Refrigerator,
    Television,
    Thermostat,
    Vcr,
    WaterHeater,
)
from repro.home.registry import SecureHome
from repro.home.residents import standard_household
from repro.policy.templates import install_figure2_roles
from repro.sensors.motion import OccupancyProvider
from repro.workload.traces import DayTraceSimulator


def build_full_home() -> SecureHome:
    home = SecureHome(start=datetime(2000, 1, 17, 0, 0))  # Monday
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    devices = [
        Television("tv", "livingroom"),
        Vcr("vcr", "livingroom"),
        Refrigerator("fridge", "kitchen"),
        Oven("oven", "kitchen"),
        Thermostat("thermostat", "foyer"),
        WaterHeater("heater", "garage"),
    ]
    for device in devices:
        home.register_device(device)
    home.runtime.providers.register(
        OccupancyProvider(home.runtime.location, ["home"])
    )
    CyberfridgeApp.install_policy(home)
    UtilityApp.install_policy(home)
    UtilityApp(home, devices[4], devices[5])
    MediaGuardApp.install_policy(home)

    policy = home.policy
    policy.grant("family-member", "power_on", "entertainment")
    policy.grant("family-member", "watch", "entertainment")
    policy.grant("family-member", "power_off", "entertainment")
    policy.grant("family-member", "play_tape", "entertainment")
    policy.grant("parent", "power_on", "safety-critical")
    policy.grant("parent", "set_temperature", "safety-critical")
    policy.deny("child", "power_on", "safety-critical")
    policy.deny("child", "set_temperature", "safety-critical")
    policy.grant("parent", "set_temperature", "hvac")
    return home


def test_bench_home_day(benchmark, report):
    home = build_full_home()
    simulator = DayTraceSimulator(home, step_minutes=10, seed=13)
    wall_start = time.perf_counter()
    result = simulator.run(hours=24)
    wall = time.perf_counter() - wall_start

    decisions = home.audit.total
    per_subject = result.by_subject()
    rows = [
        "E12 A day in the life: full household through the whole stack",
        f"simulated span:       24 hours in 10-minute steps",
        f"movements:            {result.moves}",
        f"device attempts:      {len(result.events)}",
        f"mediated decisions:   {decisions} "
        f"({home.audit.grant_count} granted / {home.audit.deny_count} denied, "
        f"{home.audit.grant_rate():.0%} grant rate)",
        f"wall time:            {wall * 1000:.1f} ms "
        f"({decisions / wall:,.0f} decisions/s)",
        "",
        "per resident (granted / denied):",
    ]
    for subject, (grants, denials) in sorted(per_subject.items()):
        rows.append(f"  {subject:>8}: {grants:>3} / {denials}")

    # Role-line spot checks: the children's denials are the oven.
    child_oven_denials = [
        record
        for record in home.audit.denials()
        if record.subject in ("alice", "bobby") and record.obj == "kitchen/oven"
    ]
    rows.append("")
    rows.append(
        f"children denied at the oven: {len(child_oven_denials)} time(s); "
        f"parents denied there: "
        f"{len([r for r in home.audit.denials() if r.subject in ('mom', 'dad') and r.obj == 'kitchen/oven'])}"
    )
    rows.append(
        "shape: grants/denials split on role lines; the whole day "
        "(clock, sensors, activation, mediation, devices, audit) runs "
        "in well under a second."
    )
    assert result.grants > 0 and result.denials > 0

    fresh = build_full_home()
    fresh_simulator = DayTraceSimulator(fresh, step_minutes=30, seed=13)

    def run():
        fresh_simulator.run(hours=2)

    benchmark(run)
    report("E12-home-day", rows)
