"""E6 — §6 vs Bertino et al.: temporal authorizations as environment
roles.

The paper argues environment roles give periodic authorizations
human-understandable names and simpler policies.  This bench compares
the GRBAC encoding ("one named role bound to one periodic expression")
against the enumeration a window-list system needs ("one absolute
interval per occurrence"), over a full simulated year:

* policy size: 1 expression vs hundreds of enumerated windows;
* evaluation cost: O(1)-ish calendar math vs scanning the window list;
* semantic agreement between the two, checked hourly for the year.
"""

from __future__ import annotations

import time
from datetime import datetime, timedelta

from repro.env.temporal import (
    DateTimeRange,
    months,
    nth_weekday,
    time_window,
    union,
    weekdays,
)

YEAR_START = datetime(2000, 1, 1)
YEAR_END = datetime(2001, 1, 1)


def enumerate_windows(expression, start: datetime, end: datetime):
    """Compile a periodic expression into explicit absolute windows —
    what a Bertino-style interval system stores."""
    windows = []
    cursor = start
    step = timedelta(minutes=30)
    open_start = None
    while cursor < end:
        inside = expression.contains(cursor)
        if inside and open_start is None:
            open_start = cursor
        elif not inside and open_start is not None:
            windows.append(DateTimeRange(open_start, cursor))
            open_start = None
        cursor += step
    if open_start is not None:
        windows.append(DateTimeRange(open_start, end))
    return windows


def scan_windows(windows, moment: datetime) -> bool:
    return any(window.contains(moment) for window in windows)


def test_bench_rw_temporal(benchmark, report):
    cases = [
        (
            "weekday free time (S5.1)",
            weekdays() & time_window("19:00", "22:00"),
        ),
        (
            "weekday mornings in July (S6)",
            weekdays() & time_window("06:00", "12:00") & months("july"),
        ),
        (
            "first Monday, 09:00-17:00 (S4.2.2)",
            nth_weekday(1, "monday") & time_window("09:00", "17:00"),
        ),
        (
            "weekends or weekday evenings",
            union(
                [
                    weekdays() & time_window("18:00", "23:00"),
                    ~weekdays(),
                ]
            ),
        ),
    ]
    probes = [YEAR_START + timedelta(hours=h) for h in range(0, 366 * 24, 1)]

    rows = [
        "E6  Temporal authorizations: named expression vs enumerated windows",
        f"  {'policy':<34}{'expr size':>10}{'windows':>9}"
        f"{'expr us':>9}{'scan us':>9}{'agree':>7}",
    ]
    headline = cases[0][1]

    def run():
        for probe in probes[:500]:
            headline.contains(probe)

    benchmark(run)

    for label, expression in cases:
        windows = enumerate_windows(expression, YEAR_START, YEAR_END)
        agree = all(
            expression.contains(p) == scan_windows(windows, p) for p in probes[::7]
        )
        start = time.perf_counter()
        for probe in probes[::4]:
            expression.contains(probe)
        expr_us = (time.perf_counter() - start) / len(probes[::4]) * 1e6
        start = time.perf_counter()
        for probe in probes[::4]:
            scan_windows(windows, probe)
        scan_us = (time.perf_counter() - start) / len(probes[::4]) * 1e6
        rows.append(
            f"  {label:<34}{1:>10}{len(windows):>9}"
            f"{expr_us:>9.2f}{scan_us:>9.2f}{str(agree):>7}"
        )
        assert agree
    rows.append(
        "shape: one named expression replaces 50-260 enumerated windows "
        "per year and evaluates 1-2 orders of magnitude faster than the "
        "window scan; decisions agree everywhere."
    )
    report("E6-rw-temporal", rows)
