"""E13 — policy-store scale: 1,000 tenants under a bounded compiled LRU.

The deployment the paper sketches (§6: "hundreds of millions of
homes") shards into many per-home policies served from one cluster.
This experiment builds that shape at bench scale: **1,000 tenants**,
each with a ~4,000-permission entertainment policy, sharing **12
distinct policy texts** (homes deploy from templates) in one
append-only :class:`~repro.store.PolicyStore` whose compiled-engine
LRU is capped far below the tenant count.

Acceptance gates (asserted, not just reported):

* **Memory bounding** — after serving a tenant sample that cycles
  through every distinct text, the compiled LRU holds at most its
  ``capacity`` engines and has evicted under pressure (> 0
  evictions).  Memory scales with the cache capacity, never the
  tenant count.
* **Dedup** — 1,000 tenants cost exactly 12 stored blobs; the
  content-hash lint memo means 1,000 activations parse and lint each
  text once, not per tenant.
* **Warm-tenant throughput** — closed-loop loadgen against a
  store-backed tenant whose engine is LRU-resident must sustain at
  least ``RATIO_GATE`` (90%) of the single-tenant baseline (the same
  policy compiled into the PDP's constructor engine).  Multi-tenancy
  must not tax the hot path.

Machine-readable results go to ``benchmarks/reports/BENCH_store.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.core import GrbacPolicy
from repro.core.mediation import MediationEngine
from repro.policy.dsl.printer import print_policy
from repro.service import (
    LoadgenConfig,
    PDPClient,
    PDPConfig,
    PolicyDecisionPoint,
    build_stream,
    compute_expected,
    run_loadgen,
)
from repro.store import PolicyStore

TENANTS = 1_000
DISTINCT_TEXTS = 12  # template policies the tenant fleet deploys from
LRU_CAPACITY = 8  # < DISTINCT_TEXTS, so the sweep must evict
HOMES = 500  # 8 rules per home -> ~4000 permissions per policy
RATIO_GATE = 0.90  # warm store tenant vs single-tenant baseline

UNIQUE_REQUESTS = 300
REPEAT = 3  # replays warm the revision-keyed decision cache
CONCURRENCY = 32
REPEATS = 3  # best-of-N timing runs per lane


def build_variant_policy(homes: int, variant: int) -> GrbacPolicy:
    """The E12 entertainment policy, salted into a distinct template.

    Same shape as ``test_bench_service.build_entertainment_policy``
    (shared family hierarchy, per-home role families and devices,
    eight rules per home), but every home-scoped name carries the
    variant tag, so each variant prints to a distinct policy text
    with a distinct content hash — 12 templates, not 12 copies.
    """
    policy = GrbacPolicy(f"entertainment-v{variant}")
    policy.add_subject_role("family-member")
    policy.add_subject_role("parent")
    policy.add_subject_role("child")
    policy.subject_roles.add_specialization("parent", "family-member")
    policy.subject_roles.add_specialization("child", "family-member")
    for name in ("weekday-free-time", "weekend", "kitchen-occupied"):
        policy.add_environment_role(name)
    for i in range(homes):
        tag = f"v{variant}h{i}"
        parent_role = policy.add_subject_role(f"parent-{tag}").name
        child_role = policy.add_subject_role(f"child-{tag}").name
        policy.subject_roles.add_specialization(parent_role, "parent")
        policy.subject_roles.add_specialization(child_role, "child")
        policy.add_subject(f"mom-{tag}")
        policy.assign_subject(f"mom-{tag}", parent_role)
        policy.add_subject(f"alice-{tag}")
        policy.assign_subject(f"alice-{tag}", child_role)

        ent = policy.add_object_role(f"entertainment-{tag}").name
        tv = policy.add_object_role(f"television-{tag}").name
        games = policy.add_object_role(f"game-devices-{tag}").name
        safety = policy.add_object_role(f"safety-critical-{tag}").name
        policy.object_roles.add_specialization(tv, ent)
        policy.object_roles.add_specialization(games, ent)
        for obj, role in [
            (f"{tag}/tv", tv),
            (f"{tag}/stereo", ent),
            (f"{tag}/console", games),
            (f"{tag}/oven", safety),
        ]:
            policy.add_object(obj)
            policy.assign_object(obj, role)

        policy.grant(child_role, "watch", ent, "weekday-free-time")
        policy.grant(child_role, "power_on", games, "weekend")
        policy.grant(parent_role, "watch", ent)
        policy.grant(parent_role, "power_on", ent)
        policy.grant(parent_role, "power_on", safety, "kitchen-occupied")
        policy.deny(child_role, "power_on", safety)
        policy.grant(child_role, "query_status", ent)
        policy.grant(parent_role, "query_status", safety)
    return policy


def tenant_name(index: int) -> str:
    return f"home-{index:04d}"


def measure(policy, stream, expected, loadgen_config, *, store):
    """Best-of-N verified loadgen runs against one PDP lane.

    Without a ``loadgen_config.tenant`` this is the single-tenant
    baseline (the policy IS the constructor engine); with one, every
    request routes through the store's compiled LRU.  Both lanes
    share the PDP configuration, and a warming pass precedes the
    timed passes so each lane is measured at its steady state (engine
    resident, decision cache warm).
    """

    async def one_run(pdp, verify):
        return await run_loadgen(
            PDPClient(pdp), stream, loadgen_config,
            expected=expected if verify else None,
        )

    async def scenario():
        engine = MediationEngine(policy)
        pdp = PolicyDecisionPoint(
            engine,
            PDPConfig(
                max_batch=64, max_wait_ms=0.5, max_queue=4096,
                cache_size=4096,
            ),
            store=store,
        )
        async with pdp:
            warm = await one_run(pdp, verify=True)
            assert warm.ok, "verification failed during warmup"
            best = None
            for _ in range(REPEATS):
                result = await one_run(pdp, verify=True)
                assert result.ok, "stale answer or silent drop while timing"
                if best is None or result.throughput_rps > best.throughput_rps:
                    best = result
        return best, pdp.stats()

    return asyncio.run(scenario())


def test_bench_store_scale(benchmark, report):
    texts = [
        print_policy(build_variant_policy(HOMES, variant))
        for variant in range(DISTINCT_TEXTS)
    ]
    assert len(set(texts)) == DISTINCT_TEXTS
    baseline_policy = build_variant_policy(HOMES, 0)
    permissions = baseline_policy.stats()["permissions"]
    assert permissions >= 4000

    # ---- populate: 1,000 tenants over 12 template texts ---------------
    store = PolicyStore(compiled_cache_size=LRU_CAPACITY)
    t0 = time.perf_counter()
    for index in range(TENANTS):
        name = tenant_name(index)
        store.create_tenant(name, actor="bench")
        store.put(name, texts[index % DISTINCT_TEXTS], actor="bench")
        store.activate(name, actor="bench")
    populate_s = time.perf_counter() - t0
    stats = store.stats()
    assert stats["tenants"] == TENANTS
    assert stats["blobs"] == DISTINCT_TEXTS, (
        "content-hash dedup failed: %d blobs for %d distinct texts"
        % (stats["blobs"], DISTINCT_TEXTS)
    )

    # ---- memory bounding: sweep a sample that cycles every text -------
    # Sequential access to 12 distinct hashes through an 8-entry LRU is
    # the adversarial pattern (nothing stays resident across a cycle),
    # so this sweep proves the bound under pressure, not under luck.
    sweep = [tenant_name(i) for i in range(DISTINCT_TEXTS + 4)]
    t0 = time.perf_counter()
    for name in sweep:
        _, version = store.engine(name)
        assert version == 1
    sweep_s = time.perf_counter() - t0
    compiled = store.stats()["compiled"]
    assert compiled["entries"] <= LRU_CAPACITY, (
        "compiled LRU exceeded its bound: %r" % (compiled,)
    )
    assert compiled["evictions"] > 0, (
        "sweep over %d distinct texts never evicted from a %d-entry "
        "LRU: %r" % (DISTINCT_TEXTS, LRU_CAPACITY, compiled)
    )

    # ---- throughput: warm store tenant vs single-tenant baseline ------
    loadgen_config = LoadgenConfig(
        requests=UNIQUE_REQUESTS,
        concurrency=CONCURRENCY,
        seed=13,
        repeat=REPEAT,
    )
    stream = build_stream(baseline_policy, loadgen_config)
    expected = compute_expected(baseline_policy, stream)

    baseline_result, _ = measure(
        baseline_policy, stream, expected, loadgen_config, store=None,
    )
    # Route the identical stream at a store-backed tenant serving the
    # same template (variant 0); the warming pass inside measure()
    # makes its engine LRU-resident before timing.
    warm_tenant = tenant_name(0)
    tenant_config = LoadgenConfig(
        requests=UNIQUE_REQUESTS,
        concurrency=CONCURRENCY,
        seed=13,
        repeat=REPEAT,
        tenant=warm_tenant,
    )
    tenant_result, tenant_stats = measure(
        baseline_policy, stream, expected, tenant_config, store=store,
    )
    ratio = tenant_result.throughput_rps / baseline_result.throughput_rps

    rows = [
        "E13 Policy-store scale: 1k tenants, bounded compiled LRU",
        f"  fleet: {TENANTS} tenants x {permissions} permissions, "
        f"{DISTINCT_TEXTS} template texts, LRU capacity {LRU_CAPACITY}",
        f"  populate: {TENANTS} create+put+activate in {populate_s:.1f}s "
        f"({TENANTS / populate_s:,.0f} activations/s) — "
        f"{stats['blobs']} blobs stored (content-hash dedup), lint/parse "
        f"amortized to one per distinct text by the content-hash memo",
        f"  LRU sweep: {len(sweep)} tenants cycling all "
        f"{DISTINCT_TEXTS} texts in {sweep_s:.1f}s -> "
        f"entries {compiled['entries']}/{compiled['capacity']}, "
        f"evictions {compiled['evictions']}, "
        f"hits {compiled['hits']}, misses {compiled['misses']}",
        f"  {'lane':>22}{'req/s':>10}{'p50 us':>9}{'p99 us':>9}",
        f"  {'single-tenant':>22}{baseline_result.throughput_rps:>10,.0f}"
        f"{baseline_result.latency_us(0.5):>9.1f}"
        f"{baseline_result.latency_us(0.99):>9.1f}",
        f"  {'warm store tenant':>22}{tenant_result.throughput_rps:>10,.0f}"
        f"{tenant_result.latency_us(0.5):>9.1f}"
        f"{tenant_result.latency_us(0.99):>9.1f}",
        f"  warm store tenant at {ratio:.1%} of the single-tenant "
        f"baseline (gate {RATIO_GATE:.0%})",
        "shape: a resident store tenant pays one lock-free "
        "active-pointer probe and a weakref deref per request (the "
        "PDP re-enters the store's locked LRU path only when the "
        "pointer moves or the engine was evicted).  The tenant "
        "dimension lives in the decision-cache key, so isolation "
        "costs a tuple slot, not a second cache.",
    ]

    assert ratio >= RATIO_GATE, (
        f"warm store-backed tenant sustains only {ratio:.1%} of the "
        f"single-tenant baseline ({tenant_result.throughput_rps:,.0f} "
        f"vs {baseline_result.throughput_rps:,.0f} req/s); the "
        f"acceptance gate is {RATIO_GATE:.0%}"
    )

    tenant_rows = {
        row["tenant"]: row for row in tenant_stats["tenants"]
    }
    assert tenant_rows[warm_tenant]["requests"] > 0

    report_dir = os.path.join(os.path.dirname(__file__), "reports")
    os.makedirs(report_dir, exist_ok=True)
    json_path = os.path.join(report_dir, "BENCH_store.json")
    trajectory: list = []
    if os.path.exists(json_path):
        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                trajectory = list(json.load(handle).get("trajectory", []))
        except (json.JSONDecodeError, OSError):
            trajectory = []
    trajectory.append(
        {
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "gate_ratio": round(ratio, 4),
            "baseline_rps": round(baseline_result.throughput_rps, 1),
            "warm_tenant_rps": round(tenant_result.throughput_rps, 1),
            "populate_s": round(populate_s, 2),
            "lru_entries": compiled["entries"],
            "lru_evictions": compiled["evictions"],
        }
    )
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E13-store-scale",
                "tenants": TENANTS,
                "distinct_texts": DISTINCT_TEXTS,
                "permissions": permissions,
                "lru_capacity": LRU_CAPACITY,
                "populate_s": round(populate_s, 2),
                "activations_per_s": round(TENANTS / populate_s, 1),
                "blobs": stats["blobs"],
                "sweep_tenants": len(sweep),
                "sweep_s": round(sweep_s, 2),
                "compiled_lru": compiled,
                "ratio_gate": RATIO_GATE,
                "gate_ratio": round(ratio, 4),
                "baseline": {
                    "throughput_rps": round(
                        baseline_result.throughput_rps, 1
                    ),
                    "latency_p50_us": round(
                        baseline_result.latency_us(0.5), 1
                    ),
                    "latency_p99_us": round(
                        baseline_result.latency_us(0.99), 1
                    ),
                    "completed": baseline_result.completed,
                    "mismatches": baseline_result.mismatches,
                },
                "warm_tenant": {
                    "tenant": warm_tenant,
                    "throughput_rps": round(
                        tenant_result.throughput_rps, 1
                    ),
                    "latency_p50_us": round(
                        tenant_result.latency_us(0.5), 1
                    ),
                    "latency_p99_us": round(
                        tenant_result.latency_us(0.99), 1
                    ),
                    "completed": tenant_result.completed,
                    "mismatches": tenant_result.mismatches,
                },
                "trajectory": trajectory[-50:],
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    rows.append("")
    rows.append(f"machine-readable results written to {json_path}")

    # pytest-benchmark hook: one adversarial LRU sweep (parse-on-miss
    # against an already-populated store, the steady-state cost of an
    # over-subscribed cache).
    def run():
        for name in sweep[:4]:
            store.engine(name)

    benchmark(run)
    report("E13-store-scale", rows)
