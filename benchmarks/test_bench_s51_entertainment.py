"""E3 — §5.1: "any child can use entertainment devices on weekdays
during free time."

Drives the full stack (clock → temporal role activation → mediation →
device) over a simulated week and scores every decision against the
paper's English, then times the hot path (one mediated operation).

Expected shape: 100% agreement with the oracle; per-decision cost in
the tens of microseconds.
"""

from __future__ import annotations

from datetime import datetime, timedelta

from repro.workload.scenarios import build_s51_scenario


def test_bench_s51_week(benchmark, report):
    scenario = build_s51_scenario(start=datetime(2000, 1, 16, 0, 0))  # Sunday
    home = scenario.home
    devices = [
        "livingroom/tv",
        "livingroom/vcr",
        "livingroom/stereo",
        "kids-bedroom/console",
    ]
    subjects = {"alice": "child", "bobby": "child", "mom": "parent", "dad": "parent"}

    total = 0
    correct = 0
    grants = {"child": 0, "parent": 0}
    step = timedelta(minutes=30)
    end = home.runtime.clock.now_datetime() + timedelta(days=7)
    while home.runtime.clock.now_datetime() + step <= end:
        moment = home.runtime.clock.advance(step.total_seconds())
        for subject, role in subjects.items():
            for device in devices:
                outcome = home.try_operate(subject, device, "power_on")
                expected = scenario.oracle(role, moment)
                total += 1
                if outcome.granted == expected:
                    correct += 1
                if outcome.granted:
                    grants[role] += 1

    # Timing: the steady-state mediated operation during free time.
    home.runtime.clock.advance_to(datetime(2000, 1, 24, 19, 30))  # Monday 19:30

    def run():
        home.try_operate("alice", "livingroom/tv", "power_on")

    benchmark(run)

    free_time_slots = 7 * 6  # 19:00-22:00 in 30-min steps, - weekend
    rows = [
        "E3  Section 5.1: one rule, a simulated week, every 30 minutes",
        f"decisions scored:        {total}",
        f"agreement with paper:    {correct}/{total} "
        f"({correct / total:.1%})",
        f"grants to children:      {grants['child']} "
        f"(= 4 devices x 2 children x {free_time_slots - 12} weekday "
        f"free-time slots)",
        f"grants to parents:       {grants['parent']} "
        f"(the Section 5.1 rule authorizes only children)",
        f"policy size:             "
        f"{len(home.policy.permissions())} rules "
        f"(vs {len(devices)} devices x 2 children x 5 days if written "
        f"per-user/per-device)",
        "shape: 100% oracle agreement; the single role-based rule covers "
        "the whole device fleet and calendar.",
    ]
    assert correct == total
    report("E3-s51-entertainment", rows)
