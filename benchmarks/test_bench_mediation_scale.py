"""E11 — mediation scalability: vectorized vs compiled vs indexed vs naive.

Sweeps policy size (permission count, role counts, hierarchy edges)
over synthetic policies and measures per-decision latency for all
four decision paths, plus the compiled and vectorized paths driven
through ``decide_batch``.  Equivalence of every path is asserted on
every swept point before any timing happens.

Expected shape: naive latency grows linearly with the permission
count; indexed latency is governed by the (small) effective role sets
of the request; the compiled path tests precomputed closure bitsets
against per-(transaction, subject-role) rule buckets, so it stays
near-flat and well below indexed; the vectorized batch lane adds
environment-pre-pruned struct-of-arrays buckets and revision-scoped
decision templates on top, taking warm repeats out of the pipeline
entirely.  Two acceptance gates are asserted, not just reported:
compiled batch at least 3x faster than indexed, and vectorized batch
at least 3x faster than compiled batch, both on the 4000-permission
point.

Besides the human-readable report, the sweep is persisted
machine-readably to ``benchmarks/reports/BENCH_mediation.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro.core import MediationEngine
from repro.obs import Observer
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)

SPEEDUP_GATE = 3.0  # compiled+batch vs indexed at the largest sweep point
VECTORIZED_GATE = 3.0  # vectorized batch vs compiled+batch at the same point

# Instrumentation guard: the staged pipeline with a subscribed no-op
# observer (the full observability surface active, doing nothing) must
# stay within 5% of the bare compiled path at the largest sweep point.
# Untraced decisions take no timestamps and publish one emit per
# decision, so the delta is a single hub fan-out.
OVERHEAD_GATE = 0.05


REPEATS = 3  # best-of-N to damp scheduler noise in single-shot sweeps


def mean_decide_us(engine: MediationEngine, pairs) -> float:
    """Per-decision latency over prebuilt (request, env-set) pairs."""
    decide = engine.decide
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for request, env in pairs:
            decide(request, environment_roles=env)
        best = min(best, time.perf_counter() - start)
    return best / len(pairs) * 1e6


def mean_batch_us(engine: MediationEngine, requests, envs) -> float:
    """Per-decision latency through decide_batch (lists prebuilt)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        engine.decide_batch(requests, environment_roles=envs)
        best = min(best, time.perf_counter() - start)
    return best / len(requests) * 1e6


def assert_paths_equivalent(engines, pairs) -> None:
    """Every decision path must agree on grant/deny, matched rules,
    and specificity before any of them is timed."""
    for request, env in pairs:
        decisions = [
            engine.decide(request, environment_roles=env)
            for engine in engines
        ]
        reference = decisions[0]
        ref_matches = sorted(
            (repr(m.permission.key), m.specificity) for m in reference.matches
        )
        for other in decisions[1:]:
            assert other.granted == reference.granted
            assert (
                sorted(
                    (repr(m.permission.key), m.specificity)
                    for m in other.matches
                )
                == ref_matches
            )


def test_bench_mediation_scale(benchmark, report):
    rows = [
        "E11 Mediation scalability: vectorized vs compiled vs indexed vs naive",
        f"  {'permissions':>12}{'roles':>7}{'edges':>7}"
        f"{'naive us':>10}{'indexed us':>11}{'compiled us':>12}"
        f"{'batch us':>10}{'vector us':>11}{'observed us':>12}{'ovh%':>7}"
        f"{'cmp/idx':>9}{'batch/idx':>10}{'vec/batch':>10}",
    ]
    sweep_records = []
    gate_speedup = None
    gate_vectorized = None
    gate_overhead = None
    for permissions, roles, edges in [
        (50, 10, 5),
        (200, 20, 10),
        (1000, 40, 20),
        (4000, 80, 40),
    ]:
        config = RandomPolicyConfig(
            subjects=30,
            objects=40,
            transactions=12,
            subject_roles=roles,
            object_roles=max(4, roles // 2),
            environment_roles=max(3, roles // 3),
            hierarchy_edges=edges,
            permissions=permissions,
            deny_fraction=0.15,
            seed=permissions,
        )
        policy = generate_policy(config)
        naive = MediationEngine(policy, mode="naive")
        indexed = MediationEngine(policy, mode="indexed")
        compiled = MediationEngine(policy, mode="compiled")
        batch_engine = MediationEngine(policy, mode="compiled")
        vectorized = MediationEngine(policy, mode="vectorized")
        # The same compiled pipeline with the full observer surface
        # switched on but subscribed to a no-op observer: measures the
        # cost of instrumentation, not of any particular consumer.
        observed = MediationEngine(policy, mode="compiled")
        observed.observers.subscribe(Observer())
        generated = generate_requests(policy, 150, seed=7)
        # Prebuild request/env pairs so set construction stays outside
        # every timed window.
        pairs = [
            (item.request, set(item.active_environment_roles))
            for item in generated
        ]
        requests = [request for request, _ in pairs]
        envs = [env for _, env in pairs]

        # Equivalence first (also warms compiles and expansion memos).
        assert_paths_equivalent(
            [compiled, indexed, naive, observed, vectorized], pairs[:40]
        )
        batch_decisions = batch_engine.decide_batch(
            requests[:40], environment_roles=envs[:40]
        )
        singles = [
            compiled.decide(request, environment_roles=env)
            for request, env in pairs[:40]
        ]
        assert [d.granted for d in batch_decisions] == [
            d.granted for d in singles
        ]
        vector_decisions = vectorized.decide_batch(
            requests[:40], environment_roles=envs[:40]
        )
        assert [d.granted for d in vector_decisions] == [
            d.granted for d in singles
        ]

        naive_us = mean_decide_us(naive, pairs)
        indexed_us = mean_decide_us(indexed, pairs)
        compiled_us = mean_decide_us(compiled, pairs)
        batch_us = mean_batch_us(batch_engine, requests, envs)
        vectorized_us = mean_batch_us(vectorized, requests, envs)
        observed_us = mean_decide_us(observed, pairs)
        overhead = observed_us / compiled_us - 1.0
        cmp_speedup = indexed_us / compiled_us
        batch_speedup = indexed_us / batch_us
        vector_speedup = batch_us / vectorized_us
        rows.append(
            f"  {permissions:>12}{roles:>7}{edges:>7}"
            f"{naive_us:>10.2f}{indexed_us:>11.2f}{compiled_us:>12.2f}"
            f"{batch_us:>10.2f}{vectorized_us:>11.2f}"
            f"{observed_us:>12.2f}{overhead:>7.1%}"
            f"{cmp_speedup:>8.1f}x{batch_speedup:>9.1f}x"
            f"{vector_speedup:>9.1f}x"
        )
        sweep_records.append(
            {
                "permissions": permissions,
                "subject_roles": roles,
                "hierarchy_edges": edges,
                "requests": len(pairs),
                "naive_us": round(naive_us, 3),
                "indexed_us": round(indexed_us, 3),
                "compiled_us": round(compiled_us, 3),
                "compiled_batch_us": round(batch_us, 3),
                "observed_us": round(observed_us, 3),
                "instrumentation_overhead": round(overhead, 4),
                "vectorized_batch_us": round(vectorized_us, 3),
                "compiled_vs_indexed_speedup": round(cmp_speedup, 2),
                "batch_vs_indexed_speedup": round(batch_speedup, 2),
                "vectorized_vs_compiled_batch_speedup": round(
                    vector_speedup, 2
                ),
                "decision_templates": vectorized.stats().get(
                    "decision_templates", 0
                ),
                "vector_buckets": vectorized.stats().get("vector_buckets", 0),
                "compile_time_s": round(
                    compiled.stats()["compile_time_s"], 6
                ),
                "compiled_rules": compiled.stats()["compiled_rules"],
            }
        )
        if permissions == 4000:
            gate_speedup = batch_speedup
            gate_vectorized = vector_speedup
            gate_overhead = overhead
    rows.append(
        "shape: naive cost scales with the rule count (it visits every "
        "permission); indexed probes the requester's effective "
        "(subject-role x object-role) pairs; compiled tests interned "
        "closure bitsets against per-(transaction, subject-role) rule "
        "buckets, so per-decision work tracks the handful of rules "
        "that name roles the requester can actually reach.  'vector' "
        "is the struct-of-arrays batch kernel: environment pruning is "
        "hoisted to one pass per flush and warm (request-shape, "
        "revision) repeats resolve from decision templates without "
        "re-entering the pipeline.  'observed' is the same compiled "
        "pipeline with a subscribed no-op observer; its overhead "
        "('ovh%') is the cost of the instrumentation layer itself."
    )
    assert gate_speedup is not None
    assert gate_speedup >= SPEEDUP_GATE, (
        f"compiled batch path is only {gate_speedup:.1f}x faster than the "
        f"indexed path at 4000 permissions; the acceptance gate is "
        f"{SPEEDUP_GATE:.0f}x"
    )
    assert gate_vectorized is not None
    assert gate_vectorized >= VECTORIZED_GATE, (
        f"vectorized batch path is only {gate_vectorized:.1f}x faster than "
        f"the compiled batch path at 4000 permissions; the acceptance gate "
        f"is {VECTORIZED_GATE:.0f}x"
    )
    assert gate_overhead is not None
    assert gate_overhead <= OVERHEAD_GATE, (
        f"no-op-observer pipeline costs {gate_overhead:.1%} over the bare "
        f"compiled path at 4000 permissions; the instrumentation gate is "
        f"{OVERHEAD_GATE:.0%}"
    )

    # ---- decision-cache ablation ---------------------------------------
    rows.append("")
    rows.append("decision-cache ablation (1000-rule policy, zipf request mix):")
    rows.append(f"  {'cache':>8}{'us/decision':>12}{'hit rate':>10}")
    config = RandomPolicyConfig(
        subjects=30, objects=40, transactions=12, subject_roles=40,
        object_roles=20, environment_roles=13, hierarchy_edges=20,
        permissions=1000, deny_fraction=0.15, seed=1000,
    )
    policy = generate_policy(config)
    # A fixed environment context so repeats actually repeat.
    env_context = {"erole-0"}
    stream = generate_requests(policy, 120, seed=21) * 5
    cache_records = []
    for cache_size in (0, 256, 4096):
        engine = MediationEngine(policy, cache_size=cache_size)
        start = time.perf_counter()
        for item in stream:
            engine.decide(item.request, environment_roles=env_context)
        per_decision = (time.perf_counter() - start) / len(stream) * 1e6
        total = engine.cache_hits + engine.cache_misses
        hit_rate = engine.cache_hits / total if total else 0.0
        label = "off" if cache_size == 0 else str(cache_size)
        rows.append(f"  {label:>8}{per_decision:>12.2f}{hit_rate:>10.1%}")
        cache_records.append(
            {
                "cache_size": cache_size,
                "us_per_decision": round(per_decision, 3),
                "hit_rate": round(hit_rate, 4),
            }
        )
    rows.append(
        "shape: with a repeating request mix the cache converts "
        "mediation into a dict lookup; correctness is guaranteed by "
        "keying on the policy decision revision (property-tested)."
    )

    # Machine-readable sweep for tooling/CI trend tracking.
    report_dir = os.path.join(os.path.dirname(__file__), "reports")
    os.makedirs(report_dir, exist_ok=True)
    json_path = os.path.join(report_dir, "BENCH_mediation.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "experiment": "E11-mediation-scale",
                "speedup_gate": SPEEDUP_GATE,
                "gate_speedup_at_4000": round(gate_speedup, 2),
                "vectorized_gate": VECTORIZED_GATE,
                "gate_vectorized_speedup_at_4000": round(gate_vectorized, 2),
                "instrumentation_overhead_gate": OVERHEAD_GATE,
                "instrumentation_overhead_at_4000": round(gate_overhead, 4),
                "sweep": sweep_records,
                "cache_ablation": cache_records,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    rows.append("")
    rows.append(f"machine-readable sweep written to {json_path}")

    config = RandomPolicyConfig(permissions=1000, subject_roles=40, seed=1000,
                                subjects=30, objects=40, transactions=12,
                                object_roles=20, environment_roles=13,
                                hierarchy_edges=20, deny_fraction=0.15)
    policy = generate_policy(config)
    engine = MediationEngine(policy)
    generated = generate_requests(policy, 50, seed=9)
    requests = [item.request for item in generated]
    envs = [set(item.active_environment_roles) for item in generated]

    def run():
        engine.decide_batch(requests, environment_roles=envs)

    benchmark(run)
    report("E11-mediation-scale", rows)
