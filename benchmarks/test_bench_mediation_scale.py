"""E11 — mediation scalability and the indexed-vs-naive ablation.

Sweeps policy size (permission count, role counts, hierarchy edges)
over synthetic policies and measures per-decision latency for the
indexed engine against the literal §4.2.4 quantifier transcription.
Equivalence is asserted on every swept point before timing.

Expected shape: naive latency grows linearly with the permission
count; indexed latency is governed by the (small) effective role sets
of the request and stays near-flat.
"""

from __future__ import annotations

import time

from repro.core import MediationEngine
from repro.workload.generator import (
    RandomPolicyConfig,
    generate_policy,
    generate_requests,
)


def mean_decide_us(engine: MediationEngine, generated) -> float:
    start = time.perf_counter()
    for item in generated:
        engine.decide(
            item.request, environment_roles=set(item.active_environment_roles)
        )
    return (time.perf_counter() - start) / len(generated) * 1e6


def test_bench_mediation_scale(benchmark, report):
    rows = [
        "E11 Mediation scalability: indexed engine vs naive quantifier loop",
        f"  {'permissions':>12}{'roles':>7}{'edges':>7}"
        f"{'indexed us':>11}{'naive us':>10}{'speedup':>9}",
    ]
    for permissions, roles, edges in [
        (50, 10, 5),
        (200, 20, 10),
        (1000, 40, 20),
        (4000, 80, 40),
    ]:
        config = RandomPolicyConfig(
            subjects=30,
            objects=40,
            transactions=12,
            subject_roles=roles,
            object_roles=max(4, roles // 2),
            environment_roles=max(3, roles // 3),
            hierarchy_edges=edges,
            permissions=permissions,
            deny_fraction=0.15,
            seed=permissions,
        )
        policy = generate_policy(config)
        indexed = MediationEngine(policy, use_index=True)
        naive = MediationEngine(policy, use_index=False)
        generated = generate_requests(policy, 150, seed=7)
        for item in generated[:40]:
            env = set(item.active_environment_roles)
            assert (
                indexed.decide(item.request, environment_roles=env).granted
                == naive.decide(item.request, environment_roles=env).granted
            )
        indexed_us = mean_decide_us(indexed, generated)
        naive_us = mean_decide_us(naive, generated)
        rows.append(
            f"  {permissions:>12}{roles:>7}{edges:>7}"
            f"{indexed_us:>11.2f}{naive_us:>10.2f}"
            f"{naive_us / indexed_us:>8.1f}x"
        )
    rows.append(
        "shape: naive cost scales with the rule count (it visits every "
        "permission); the indexed engine looks up only the requester's "
        "effective (subject-role x object-role) pairs, so its cost "
        "tracks role-set sizes, not policy size."
    )

    # ---- decision-cache ablation ---------------------------------------
    rows.append("")
    rows.append("decision-cache ablation (1000-rule policy, zipf request mix):")
    rows.append(f"  {'cache':>8}{'us/decision':>12}{'hit rate':>10}")
    config = RandomPolicyConfig(
        subjects=30, objects=40, transactions=12, subject_roles=40,
        object_roles=20, environment_roles=13, hierarchy_edges=20,
        permissions=1000, deny_fraction=0.15, seed=1000,
    )
    policy = generate_policy(config)
    # A fixed environment context so repeats actually repeat.
    env_context = {"erole-0"}
    stream = generate_requests(policy, 120, seed=21) * 5
    for cache_size in (0, 256, 4096):
        engine = MediationEngine(policy, cache_size=cache_size)
        start = time.perf_counter()
        for item in stream:
            engine.decide(item.request, environment_roles=env_context)
        per_decision = (time.perf_counter() - start) / len(stream) * 1e6
        total = engine.cache_hits + engine.cache_misses
        hit_rate = engine.cache_hits / total if total else 0.0
        label = "off" if cache_size == 0 else str(cache_size)
        rows.append(f"  {label:>8}{per_decision:>12.2f}{hit_rate:>10.1%}")
    rows.append(
        "shape: with a repeating request mix the cache converts "
        "mediation into a dict lookup; correctness is guaranteed by "
        "keying on the policy decision revision (property-tested)."
    )

    config = RandomPolicyConfig(permissions=1000, subject_roles=40, seed=1000,
                                subjects=30, objects=40, transactions=12,
                                object_roles=20, environment_roles=13,
                                hierarchy_edges=20, deny_fraction=0.15)
    policy = generate_policy(config)
    engine = MediationEngine(policy)
    generated = generate_requests(policy, 50, seed=9)

    def run():
        for item in generated:
            engine.decide(
                item.request,
                environment_roles=set(item.active_environment_roles),
            )

    benchmark(run)
    report("E11-mediation-scale", rows)
