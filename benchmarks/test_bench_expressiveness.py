"""E10 — the model thesis: GRBAC policies stay small where flat RBAC
multiplies out.

Sweeps the environment- and object-role dimensions of a household-
shaped policy and mechanically flattens each point into plain RBAC
(:class:`repro.rbac.bridge.FlattenedGrbac`): every (subject role ×
environment role) becomes a flat role, every (transaction × object) a
flat transaction.  Decision agreement is verified before sizes are
reported.

Expected shape: GRBAC rule count grows ~linearly in the number of
*policies* you mean; the flat emulation's roles/AR entries grow with
the product of dimensions.
"""

from __future__ import annotations

from repro.core import GrbacPolicy
from repro.rbac.bridge import FlattenedGrbac, agreement_check


def household_policy(env_roles: int, objects_per_role: int) -> GrbacPolicy:
    policy = GrbacPolicy(f"sweep-{env_roles}-{objects_per_role}")
    for role in ("parent", "child", "guest"):
        policy.add_subject_role(role)
    for subject, role in [
        ("mom", "parent"),
        ("dad", "parent"),
        ("alice", "child"),
        ("bobby", "child"),
        ("visitor", "guest"),
    ]:
        policy.add_subject(subject)
        policy.assign_subject(subject, role)
    for object_role in ("entertainment", "kitchen"):
        policy.add_object_role(object_role)
        for index in range(objects_per_role):
            name = f"{object_role}-device-{index}"
            policy.add_object(name)
            policy.assign_object(name, object_role)
    for index in range(env_roles):
        policy.add_environment_role(f"period-{index}")
    # One conceptual policy per environment period: children use
    # entertainment during it; parents run the kitchen during it.
    for index in range(env_roles):
        policy.grant("child", "use", "entertainment", f"period-{index}")
        policy.grant("parent", "operate", "kitchen", f"period-{index}")
    return policy


def test_bench_expressiveness(benchmark, report):
    rows = [
        "E10 Expressiveness: GRBAC vs flattened plain RBAC",
        f"  {'env roles':>10}{'objects':>8}{'grbac rules':>12}"
        f"{'flat roles':>11}{'flat txns':>10}{'flat AR':>8}{'agree':>7}",
    ]
    for env_roles, objects_per_role in [
        (1, 2),
        (2, 4),
        (4, 8),
        (8, 16),
        (12, 24),
    ]:
        policy = household_policy(env_roles, objects_per_role)
        flattened = FlattenedGrbac(policy)
        metrics = flattened.size_metrics()
        agree = agreement_check(policy, flattened, "period-0")
        rows.append(
            f"  {env_roles:>10}{objects_per_role * 2:>8}"
            f"{len(policy.permissions()):>12}"
            f"{metrics['flat_roles']:>11}{metrics['flat_transactions']:>10}"
            f"{metrics['flat_role_authorizations']:>8}{str(agree):>7}"
        )
        assert agree
    rows.append(
        "shape: GRBAC rules grow linearly with the number of periods "
        "(2 per period, independent of fleet size); the flat emulation "
        "multiplies roles by periods and transactions by objects, and "
        "every subject drags one AR entry per (role x period)."
    )

    policy = household_policy(8, 16)
    flattened = FlattenedGrbac(policy)

    def run():
        FlattenedGrbac(policy)

    benchmark(run)
    assert flattened.exec_in_env("alice", "use", "entertainment-device-0", "period-3")
    report("E10-expressiveness", rows)
