"""E5 — §3's motivating policies: the repairman, negative rights, and
the precedence-strategy ablation.

Scores the repairman's time-boxed/location-gated access and the
children-vs-dangerous-appliances rules against the paper's English,
then ablates the four precedence strategies on the same conflicting
rule set (DESIGN.md §6).

Expected shape: 100% oracle agreement under deny-overrides; the
ablation shows exactly which strategies would let the child at the
oven (allow-overrides would — which is why the library defaults to
deny-overrides).
"""

from __future__ import annotations

from datetime import datetime

from repro.core import PrecedenceStrategy
from repro.workload.scenarios import (
    build_negative_rights_scenario,
    build_repairman_scenario,
)


def test_bench_s3_policies(benchmark, report):
    rows = ["E5  Section 3: repairman window + negative rights"]

    # ---- repairman grid ------------------------------------------------
    rows.append("")
    rows.append("repairman: access iff (Jan 17 2000, 08:00-13:00) AND inside:")
    rows.append(f"  {'time':<8}{'location':<10}{'expected':>9}{'measured':>10}")
    grid = [
        (datetime(2000, 1, 17, 7, 30), False),
        (datetime(2000, 1, 17, 8, 30), False),
        (datetime(2000, 1, 17, 9, 0), True),
        (datetime(2000, 1, 17, 10, 30), False),
        (datetime(2000, 1, 17, 11, 0), True),
        (datetime(2000, 1, 17, 12, 59), True),
        (datetime(2000, 1, 17, 13, 30), True),
        (datetime(2000, 1, 17, 14, 0), False),
    ]
    scenario = build_repairman_scenario()
    home = scenario.home
    agreement = 0
    for moment, inside in grid:
        home.runtime.clock.advance_to(moment)
        if inside:
            home.move("repair-tech", "kitchen")
        else:
            home.runtime.location.leave("repair-tech")
        expected = scenario.oracle(moment, inside)
        measured = home.try_operate(
            "repair-tech", "kitchen/dishwasher", "diagnose"
        ).granted
        agreement += measured == expected
        rows.append(
            f"  {moment.strftime('%H:%M'):<8}"
            f"{'inside' if inside else 'outside':<10}"
            f"{'GRANT' if expected else 'deny':>9}"
            f"{'GRANT' if measured else 'deny':>10}"
        )
    rows.append(f"  agreement: {agreement}/{len(grid)}")
    assert agreement == len(grid)

    # ---- negative rights + precedence ablation -------------------------
    rows.append("")
    rows.append("negative rights: family grant vs child deny on the oven,")
    rows.append("under each precedence strategy (ablation):")
    rows.append(
        f"  {'strategy':<18}{'alice/oven':>11}{'alice/tv':>10}{'mom/oven':>10}"
    )
    expected_by_strategy = {
        PrecedenceStrategy.DENY_OVERRIDES: ("deny", "GRANT", "GRANT"),
        PrecedenceStrategy.ALLOW_OVERRIDES: ("GRANT", "GRANT", "GRANT"),
        PrecedenceStrategy.PRIORITY: ("deny", "GRANT", "GRANT"),
        PrecedenceStrategy.MOST_SPECIFIC: ("deny", "GRANT", "GRANT"),
    }
    for strategy in PrecedenceStrategy:
        scenario = build_negative_rights_scenario()
        home = scenario.home
        home.policy.precedence = strategy
        cells = [
            home.try_operate("alice", "kitchen/oven", "power_on").granted,
            home.try_operate("alice", "livingroom/tv", "power_on").granted,
            home.try_operate("mom", "kitchen/oven", "power_on").granted,
        ]
        rendered = tuple("GRANT" if c else "deny" for c in cells)
        rows.append(
            f"  {strategy.value:<18}{rendered[0]:>11}{rendered[1]:>10}"
            f"{rendered[2]:>10}"
        )
        assert rendered == expected_by_strategy[strategy], strategy
    rows.append(
        "shape: only allow-overrides lets the child at the oven; the "
        "paper's deny-the-dangerous policy needs deny-overrides (the "
        "default), priority, or most-specific."
    )

    # ---- §4.1.2's own precedence example: Bobby vs the records ----------
    from repro.workload.scenarios import build_medical_records_scenario

    rows.append("")
    rows.append("S4.1.2: Bobby (family-member grant vs child deny) reads the")
    rows.append("family medical records, per strategy:")
    for strategy in PrecedenceStrategy:
        scenario = build_medical_records_scenario()
        home = scenario.home
        home.policy.precedence = strategy
        outcome = home.try_operate(
            "bobby", "study/medical-records", "read_document",
            document="family-history",
        )
        expected = scenario.oracle(strategy.value)
        assert outcome.granted == expected, strategy
        rows.append(
            f"  {strategy.value:<18} -> "
            f"{'GRANT' if outcome.granted else 'deny'}"
        )
    rows.append(
        "shape: the inconsistency resolves exactly along the design "
        "space the paper enumerates; the child deny wins under every "
        "strategy except always-allow."
    )

    # ---- timing ---------------------------------------------------------
    scenario = build_negative_rights_scenario()
    home = scenario.home

    def run():
        home.try_operate("alice", "kitchen/oven", "power_on")
        home.try_operate("mom", "kitchen/oven", "power_on")

    benchmark(run)
    report("E5-s3-policies", rows)
