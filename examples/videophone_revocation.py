#!/usr/bin/env python3
"""The §4.2.2 videophone, hung up live: continuous authorization.

The paper's motivating scenario for *continuous* authorization: a
child may use the videophone only while a parent-approved environment
holds — in-kitchen, during free time.  Granting the call once is not
enough; when the supporting environment roles deactivate mid-call,
the authorization itself must be withdrawn, not merely re-deniable on
the next request.

This example serves a PDP with a live simulated environment and shows
both halves of the mechanism, end to end over real sockets:

1. **Subscribe** — the client asks for the call with
   ``decide(request, subscribe=True)``; the granted decision is
   registered in the server's session grant table along with the
   exact environment roles it rests on.
2. **Push revocation** — bobby leaves the kitchen (a location event),
   and later the 22:00 free-time boundary passes (a pure clock
   transition, zero requests in flight: the server's boundary driver
   observes it).  Each flip sweeps the grant table and pushes an
   unsolicited ``revoke`` to the affected connection; the client's
   handler fires with the withdrawn grant, the roles that caused it,
   and the measured flip-to-delivery latency.

Run:  python examples/videophone_revocation.py
"""

import asyncio
import time
from datetime import datetime

from repro.core import AccessRequest, GrbacPolicy, MediationEngine
from repro.env.conditions import during
from repro.env.runtime import EnvironmentRuntime
from repro.env.temporal import time_window
from repro.service import PDPServer, PolicyDecisionPoint, RemotePDPClient

MONDAY_EVENING = datetime(2000, 1, 17, 20, 0)  # inside free-time


def build_home():
    """The §4.2.2 household: a videophone behind a composite env role."""
    runtime = EnvironmentRuntime(start=MONDAY_EVENING)
    policy = GrbacPolicy()
    policy.add_subject("bobby")
    policy.add_subject_role("child")
    policy.assign_subject("bobby", "child")
    policy.add_object("kitchen/videophone")
    policy.add_object_role("comms-devices")
    policy.assign_object("kitchen/videophone", "comms-devices")

    # Children may call only during free time AND while in the
    # kitchen — one composite environment role, the conjunction of a
    # temporal condition and a location condition (§4.2.2's composite
    # environment roles).
    call_window = during(time_window("19:00", "22:00")) & (
        runtime.location.in_zone_condition("bobby", "kitchen")
    )
    runtime.define_role(
        policy,
        "call-window",
        call_window,
        "free time AND bobby in the kitchen",
    )
    policy.grant("child", "call", "comms-devices", "call-window")

    engine = MediationEngine(policy, runtime.activator)
    pdp = PolicyDecisionPoint(engine, env_revision=runtime)
    return runtime, PDPServer(pdp, environment=runtime)


async def main() -> None:
    runtime, server = build_home()
    async with server:
        client = await RemotePDPClient.connect("127.0.0.1", server.port)

        hangups = []

        def on_revoke(revocation):
            latency_ms = (time.time() - revocation.ts) * 1e3
            hangups.append(revocation)
            print(
                f"  << REVOKED grant {revocation.id}: "
                f"{revocation.subject} {revocation.transaction} "
                f"{revocation.obj}"
            )
            print(
                f"     roles withdrawn: {', '.join(revocation.roles)}  "
                f"({revocation.reason}; flip-to-delivery "
                f"{latency_ms:.1f} ms)"
            )

        client.subscribe(on_revoke)

        print("=" * 64)
        print("Scene 1: bobby calls grandma from the kitchen at 20:00")
        print("=" * 64)
        await client.env_move("bobby", "kitchen")
        call = AccessRequest("call", "kitchen/videophone", subject="bobby")
        response = await client.decide(call, subscribe=True)
        print(
            f"  decision: {response.outcome.name} "
            f"(subscribed for continuous authorization)"
        )
        assert response.granted

        print()
        print("Scene 2: bobby wanders to the den mid-call")
        print("  (a location event deactivates 'in-kitchen' — the call")
        print("   must drop NOW, not at the next request)")
        out = await client.env_move("bobby", "den")
        await asyncio.sleep(0.1)  # let the push arrive
        print(f"  active environment roles now: {sorted(out['active'])}")
        assert len(hangups) == 1
        assert hangups[0].roles == ("call-window",)

        print()
        print("Scene 3: back in the kitchen, a new call is granted...")
        await client.env_move("bobby", "kitchen")
        response = await client.decide(call, subscribe=True)
        print(f"  decision: {response.outcome.name}")
        assert response.granted

        print()
        print("Scene 4: ...until 22:00 passes with ZERO requests in flight")
        print("  (a pure clock transition: the free-time window closes)")
        out = await client.env("advance", seconds=3 * 3600)  # 20:xx -> 23:xx
        await asyncio.sleep(0.1)
        print(f"  active environment roles now: {sorted(out['active'])}")
        assert len(hangups) == 2
        assert hangups[1].roles == ("call-window",)

        print()
        print("Scene 5: asking again after the flip is a plain deny")
        response = await client.decide(call)
        print(f"  decision: {response.outcome.name}")
        assert not response.granted

        await client.close()

    print()
    print(
        "the videophone hung up twice — once on a location flip, once "
        "on a time\nboundary nobody was watching — because the grant "
        "was *subscribed*, not\nmerely cached.  See 'Continuous "
        "authorization' in docs/SERVICE.md."
    )


if __name__ == "__main__":
    asyncio.run(main())
