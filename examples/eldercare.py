#!/usr/bin/env python3
"""Elder care with emergency escalation — the paper's §2 application.

An elderly resident lives alone.  A caregiver reads vitals remotely; a
relative can only see degraded camera snapshots.  When the vitals
monitor raises an alert, a *medical-emergency* environment role
activates through the trusted event system and temporarily widens
access: live video for the family, and door-unlock rights for the
responding caregiver.  When the alert clears, everything snaps back.

Run:  python examples/eldercare.py
"""

from datetime import datetime

from repro.exceptions import AccessDeniedError
from repro.home.apps import ElderCareApp
from repro.home.devices import Camera, DoorLock, MedicalMonitor
from repro.home.registry import SecureHome
from repro.home.residents import Resident
from repro.policy.templates import install_figure2_roles


def attempt(home: SecureHome, subject: str, device: str, operation: str) -> str:
    try:
        home.operate(subject, device, operation)
        return "GRANT"
    except AccessDeniedError:
        return "deny"


def main() -> None:
    home = SecureHome(start=datetime(2000, 3, 1, 9, 0))
    install_figure2_roles(home.policy)
    home.policy.add_subject_role("caregiver", "visiting care professionals")
    home.policy.add_subject_role("relative", "family living elsewhere")

    grandma = Resident("grandma", age=82, weight_lb=120.0, roles=("parent",))
    home.register_resident(grandma)
    home.policy.add_subject("nurse-joy")
    home.policy.assign_subject("nurse-joy", "caregiver")
    home.policy.add_subject("nephew-ned")
    home.policy.assign_subject("nephew-ned", "relative")

    monitor = MedicalMonitor("vitals", "master-bedroom")
    camera = Camera("camera", "master-bedroom")
    door = DoorLock("front-door", "foyer")
    for device in (monitor, camera, door):
        home.register_device(device)

    app = ElderCareApp(home, monitor, camera, door)
    ElderCareApp.install_policy(home)
    home.policy.grant("caregiver", "clear_alert", "information")

    probes = [
        ("nurse-joy", "master-bedroom/vitals", "read_vitals"),
        ("nephew-ned", "master-bedroom/vitals", "read_vitals"),
        ("nephew-ned", "master-bedroom/camera", "view_snapshot"),
        ("nephew-ned", "master-bedroom/camera", "view_stream"),
        ("nurse-joy", "foyer/front-door", "unlock"),
    ]

    def report(title: str) -> None:
        print(f"\n--- {title} "
              f"(emergency role active: {app.alert_active}) ---")
        for subject, device, operation in probes:
            print(f"  {subject:>11} {operation:<14} -> "
                  f"{attempt(home, subject, device, operation)}")

    # Morning: all quiet.
    app.record_vitals(heart_rate=74, systolic=122)
    report("09:00 - normal morning vitals (74 bpm, 122 systolic)")

    # Midday: the monitor sees trouble.
    home.runtime.clock.advance(hours=3)
    app.record_vitals(heart_rate=148, systolic=192)
    report("12:00 - abnormal vitals (148 bpm, 192 systolic)")

    # The nurse responds, checks the stream, lets herself in.
    stream = app.view_camera("nurse-joy", stream=True)
    print(f"\n  nurse-joy views the live stream: frame {stream['frame']}")
    app.unlock_door("nurse-joy")
    print("  nurse-joy unlocks the front door and responds.")

    # Crisis handled; the nurse stands the system down.
    home.runtime.clock.advance(minutes=40)
    app.clear_alert("nurse-joy")
    report("12:40 - alert cleared by the caregiver")

    print(f"\nAudit: {home.audit.summary()}")
    print("Every escalated access above is on the record:")
    for record in home.audit.records(granted=True):
        if record.transaction in ("view_stream", "unlock"):
            print(f"  {record.describe()}")


if __name__ == "__main__":
    main()
