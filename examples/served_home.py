#!/usr/bin/env python3
"""The §5.1 week, replayed through the decision *service*.

``aware_home.py`` walks the paper's entertainment scenario by calling
the mediation engine directly.  This example runs the same week
through the asyncio Policy Decision Point — the shipped
``examples/policies/entertainment.grbac`` policy served behind a
bounded queue, micro-batching, and the revision-keyed decision cache
— and checks, request by request, that the served answers are the
*identical grant/deny sequence* the direct engine produces.  It ends
with the service's own accounting: batches, cache hits, and what an
overloaded PDP does instead of waiting (an explicit shed).

Run:  python examples/served_home.py
"""

import asyncio
import os

from repro.core import AccessRequest, MediationEngine
from repro.policy.dsl import compile_policy
from repro.service import PDPClient, PDPConfig, PDPOutcome, PolicyDecisionPoint

POLICY_PATH = os.path.join(
    os.path.dirname(__file__), "policies", "entertainment.grbac"
)

#: (label, active environment roles) — the §5.1 week at checkpoints.
WEEK = [
    ("Sunday    19:30", {"weekend"}),
    ("Monday    16:00", {"weekday-free-time"}),
    ("Monday    19:30", {"weekday-free-time"}),
    ("Monday    22:15", set()),
    ("Friday    20:00", {"weekday-free-time"}),
    ("Saturday  20:00", {"weekend"}),
]

#: Who tries what at every checkpoint.
ATTEMPTS = [
    ("alice", "watch", "livingroom/tv"),
    ("bobby", "power_on", "kids-bedroom/console"),
    ("mom", "watch", "livingroom/tv"),
    ("alice", "power_on", "kitchen/oven"),
]


async def replay_week(client: PDPClient) -> list:
    served = []
    for label, env in WEEK:
        # The whole checkpoint goes in concurrently — the PDP batches it.
        responses = await asyncio.gather(
            *(
                client.decide(
                    AccessRequest(transaction, obj, subject=subject),
                    environment_roles=env,
                )
                for subject, transaction, obj in ATTEMPTS
            )
        )
        served.append((label, env, responses))
    return served


async def main() -> None:
    with open(POLICY_PATH, "r", encoding="utf-8") as handle:
        policy = compile_policy(handle.read(), name="entertainment")
    engine = MediationEngine(policy)
    reference = MediationEngine(policy)  # direct path, for comparison

    print("=" * 64)
    print("Section 5.1 through the decision service")
    print("=" * 64)
    pdp = PolicyDecisionPoint(engine, PDPConfig(max_batch=16))
    async with pdp:
        served = await replay_week(PDPClient(pdp))

        mismatches = 0
        header = "".join(f"{s + '/' + o.split('/')[1]:<16}"
                         for s, _, o in ATTEMPTS)
        print(f"{'when':<18}{header}")
        for label, env, responses in served:
            cells = []
            for (subject, transaction, obj), response in zip(
                ATTEMPTS, responses
            ):
                direct = reference.decide(
                    AccessRequest(transaction, obj, subject=subject),
                    environment_roles=env,
                ).granted
                if direct != response.granted:
                    mismatches += 1
                mark = "GRANT" if response.granted else "deny"
                if response.cached:
                    mark += "*"
                cells.append(f"{mark:<16}")
            print(f"{label:<18}{''.join(cells)}")
        print("(* = served from the revision-keyed cache; Friday and the "
              "second Monday evening repeat earlier checkpoints.)")

        verdict = ("identical grant/deny sequence"
                   if mismatches == 0
                   else f"{mismatches} DIVERGENT ANSWERS")
        print(f"\nServed vs direct mediation: {verdict}.")

        stats = pdp.stats()
        print(f"service accounting: {stats['requests']} requests, "
              f"{stats['batches']} batches, "
              f"{stats['cache_hits']} cache hits, "
              f"{stats['shed']} shed")

    # ------------------------------------------------------------------
    # Overload: a tiny queue under a burst sheds explicitly.
    # ------------------------------------------------------------------
    print()
    print("=" * 64)
    print("Backpressure: a burst against an undersized queue")
    print("=" * 64)
    tiny = PolicyDecisionPoint(
        MediationEngine(policy),
        PDPConfig(max_queue=4, max_batch=2, cache_size=0),
    )
    async with tiny:
        burst = await asyncio.gather(
            *(
                tiny.submit(
                    AccessRequest("watch", "livingroom/tv", subject="alice"),
                    environment_roles={"weekday-free-time"},
                )
                for _ in range(50)
            )
        )
    answered = sum(r.outcome is PDPOutcome.GRANT for r in burst)
    shed = sum(r.outcome is PDPOutcome.DENY_OVERLOAD for r in burst)
    print(f"burst of {len(burst)}: {answered} mediated grants, "
          f"{shed} shed with explicit DENY_OVERLOAD")
    print("every response is either a real mediated answer or an explicit "
          "refusal — overload never waits unboundedly and never grants.")


if __name__ == "__main__":
    asyncio.run(main())
