#!/usr/bin/env python3
"""Quickstart: GRBAC in ~40 lines.

Builds the smallest interesting policy — one subject role, one object
role, one environment role, one rule — and shows the §4.2.4 mediation
rule deciding requests as the environment changes.

Run:  python examples/quickstart.py
"""

from datetime import datetime

from repro import GrbacPolicy, MediationEngine
from repro.env import EnvironmentRuntime, time_window, weekdays


def main() -> None:
    # -- The policy: roles for subjects, objects, and the environment.
    policy = GrbacPolicy("quickstart")
    policy.add_subject("alice", age=11)
    policy.add_subject_role("child")
    policy.assign_subject("alice", "child")

    policy.add_object("livingroom/tv", kind="television")
    policy.add_object_role("entertainment-devices")
    policy.assign_object("livingroom/tv", "entertainment-devices")

    # -- The environment: a live clock drives the 'free-time' role.
    runtime = EnvironmentRuntime(start=datetime(2000, 1, 17, 18, 30))  # Monday
    runtime.define_time_role(
        policy, "weekday-free-time", weekdays() & time_window("19:00", "22:00")
    )

    # -- One rule (§5.1): children may watch entertainment devices
    #    on weekdays during free time.
    policy.grant("child", "watch", "entertainment-devices", "weekday-free-time")

    # -- Mediation.
    engine = MediationEngine(policy, runtime.activator)

    for label, advance_hours in [("18:30 Mon", 0), ("19:30 Mon", 1), ("22:30 Mon", 3)]:
        if advance_hours:
            runtime.clock.advance(hours=advance_hours)
        granted = engine.check("alice", "watch", "livingroom/tv")
        active = ", ".join(sorted(runtime.active_roles())) or "(none)"
        print(f"{label}: alice watches TV -> {'GRANT' if granted else 'DENY':5}  "
              f"active env roles: {active}")

    # -- Explanations come for free.
    from repro import AccessRequest

    decision = engine.decide(
        AccessRequest(transaction="watch", obj="livingroom/tv", subject="alice")
    )
    print("\nWhy was the last request denied?")
    print(decision.explain())


if __name__ == "__main__":
    main()
