#!/usr/bin/env python3
"""The Aware Home, end to end — the paper's §5.1 scenario plus the
negative-rights and repairman examples of §3, over a simulated week.

What it shows:

* the Figure 2 subject-role hierarchy governing a real device fleet;
* a single rule covering every entertainment device, present and future;
* positive AND negative rights (children vs. the oven);
* a time-boxed, location-gated guest (the dishwasher repairman);
* the audit trail answering "who was denied what, and when?".

Run:  python examples/aware_home.py
"""

from datetime import datetime

from repro.home.devices import Oven, Stereo
from repro.workload.scenarios import (
    build_repairman_scenario,
    build_s51_scenario,
)
from repro.workload.traces import DayTraceSimulator


def entertainment_week() -> None:
    print("=" * 64)
    print("Section 5.1: children, entertainment devices, weekday free time")
    print("=" * 64)
    scenario = build_s51_scenario(start=datetime(2000, 1, 16, 12, 0))  # Sunday noon
    home = scenario.home

    checkpoints = [
        ("Sunday    19:30", datetime(2000, 1, 16, 19, 30)),
        ("Monday    16:00", datetime(2000, 1, 17, 16, 0)),
        ("Monday    19:30", datetime(2000, 1, 17, 19, 30)),
        ("Monday    22:15", datetime(2000, 1, 17, 22, 15)),
        ("Friday    20:00", datetime(2000, 1, 21, 20, 0)),
        ("Saturday  20:00", datetime(2000, 1, 22, 20, 0)),
    ]
    print(f"{'when':<18}{'alice/tv':<10}{'bobby/console':<15}{'mom/tv':<8}")
    for label, moment in checkpoints:
        home.runtime.clock.advance_to(moment)
        row = [
            home.try_operate("alice", "livingroom/tv", "power_on").granted,
            home.try_operate("bobby", "kids-bedroom/console", "power_on").granted,
            home.try_operate("mom", "livingroom/tv", "power_on").granted,
        ]
        cells = ["GRANT" if g else "deny" for g in row]
        print(f"{label:<18}{cells[0]:<10}{cells[1]:<15}{cells[2]:<8}")
    print("(mom is denied by *this* rule — the §5.1 policy text only "
          "authorizes children; a real household adds parent rules.)")

    # A new toy arrives and is covered with zero new rules.
    new_toy = Stereo("boombox", "kids-bedroom")
    home.register_device(new_toy)
    home.runtime.clock.advance_to(datetime(2000, 1, 24, 19, 30))  # Monday
    granted = home.try_operate("alice", "kids-bedroom/boombox", "power_on").granted
    print(f"\nNew boombox, Monday 19:30, no new rules written: "
          f"{'GRANT' if granted else 'deny'}")


def negative_rights() -> None:
    print()
    print("=" * 64)
    print("Section 3: positive and negative rights (the oven)")
    print("=" * 64)
    scenario = build_s51_scenario(start=datetime(2000, 1, 17, 19, 30))
    home = scenario.home
    oven = Oven("oven", "kitchen")
    home.register_device(oven)
    policy = home.policy
    policy.grant("family-member", "power_on", name="family-appliances")
    policy.deny("child", "power_on", "safety-critical", name="child-danger")

    for subject in ("mom", "alice"):
        outcome = home.try_operate(subject, "kitchen/oven", "power_on")
        print(f"{subject:>6} power_on oven -> "
              f"{'GRANT' if outcome.granted else 'deny'}  "
              f"({outcome.decision.rationale})")


def repairman_visit() -> None:
    print()
    print("=" * 64)
    print("Section 3: the repairman (Jan 17 2000, 08:00-13:00, inside only)")
    print("=" * 64)
    scenario = build_repairman_scenario()
    home = scenario.home

    script = [
        ("07:30  rings the doorbell (outside)", datetime(2000, 1, 17, 7, 30), None),
        ("09:00  let into the kitchen", datetime(2000, 1, 17, 9, 0), "kitchen"),
        ("10:30  steps out for parts", datetime(2000, 1, 17, 10, 30), "outside"),
        ("11:00  back at the dishwasher", datetime(2000, 1, 17, 11, 0), "kitchen"),
        ("14:00  lingers after the window", datetime(2000, 1, 17, 14, 0), "kitchen"),
    ]
    for label, moment, move_to in script:
        home.runtime.clock.advance_to(moment)
        if move_to == "outside":
            home.runtime.location.leave("repair-tech")
        elif move_to:
            home.move("repair-tech", move_to)
        outcome = home.try_operate("repair-tech", "kitchen/dishwasher", "diagnose")
        print(f"{label:<38} diagnose -> {'GRANT' if outcome.granted else 'deny'}")

    print(f"\nAudit summary: {home.audit.summary()}")
    denials = home.audit.denials("repair-tech")
    print(f"Repair-tech denials on record: {len(denials)}")


def day_in_the_life() -> None:
    print()
    print("=" * 64)
    print("A simulated day of household traffic through the monitor")
    print("=" * 64)
    scenario = build_s51_scenario(start=datetime(2000, 1, 17, 0, 0))
    simulator = DayTraceSimulator(scenario.home, step_minutes=15, seed=7)
    result = simulator.run(hours=24)
    print(f"trace: {result.summary()}")
    for subject, (grants, denials) in sorted(result.by_subject().items()):
        print(f"  {subject:>6}: {grants} granted, {denials} denied")
    print(f"audit: {scenario.home.audit.summary()}")


if __name__ == "__main__":
    entertainment_week()
    negative_rights()
    repairman_visit()
    day_in_the_life()
