#!/usr/bin/env python3
"""One model, four literatures — the paper's §6 unification claim.

"GRBAC allows us to express policies supported by these other models,
and it also provides an elegant means of unifying all of their major
concepts."  This example builds ONE policy that simultaneously
expresses:

* a Bertino-style periodic authorization (temporal),
* a GACL-style system-load condition (Woo & Lam),
* content-based access control (Gopal & Manber), and
* a Bell–LaPadula multilevel compartment (MITRE),

using nothing but the three role kinds and grant rules — and then
exercises all four in one mediation loop.

Run:  python examples/unified_models.py
"""

from datetime import datetime

from repro.core import GrbacPolicy, MediationEngine
from repro.env import (
    EnvironmentRoleActivator,
    EnvironmentState,
    SimulatedClock,
    SimulatedLoadProvider,
    during,
    state_below,
    time_window,
    weekdays,
)
from repro.policy.mls import MlsEncoding


def outcome(granted: bool) -> str:
    return "GRANT" if granted else "deny"


def main() -> None:
    clock = SimulatedClock(datetime(2000, 7, 3, 9, 0))  # a July Monday, 09:00
    state = EnvironmentState()
    activator = EnvironmentRoleActivator(state, clock)
    load = SimulatedLoadProvider(state, initial=0.25, seed=3)

    policy = GrbacPolicy("unified")
    engine = MediationEngine(policy, activator)

    # ---- subjects -------------------------------------------------------
    for subject, role in [("dad", "parent"), ("alice", "child"),
                          ("batch-agent", "automation-agent")]:
        policy.add_subject(subject)
        policy.add_subject_role(role)
        policy.assign_subject(subject, role)

    # ---- 1. temporal (Bertino): weekday mornings in July ----------------
    policy.add_environment_role("july-weekday-mornings")
    from repro.env import months

    activator.bind(
        "july-weekday-mornings",
        during(weekdays() & time_window("06:00", "12:00") & months("july")),
    )
    policy.add_object("study/work-files")
    policy.grant(
        "parent", "edit", "any-object", "july-weekday-mornings",
        name="temporal-rule",
    )

    # ---- 2. system load (GACL): heavy jobs only under low load ----------
    policy.add_environment_role("low-load")
    activator.bind("low-load", state_below("system.load", 0.5))
    policy.add_object("home-server")
    policy.grant(
        "automation-agent", "run_backup", "any-object", "low-load",
        name="load-rule",
    )

    # ---- 3. content-based (Gopal & Manber): ratings as object roles -----
    policy.add_object_role("kid-safe-media")
    for name, rating in [("cartoons", "G"), ("slasher", "R")]:
        policy.add_object(f"media/{name}", rating=rating)
        if rating in ("G", "PG"):
            policy.assign_object(f"media/{name}", "kid-safe-media")
    policy.grant("child", "view", "kid-safe-media", name="content-rule")

    # ---- 4. MLS (Bell–LaPadula): a two-level compartment -----------------
    # The standalone encoding lives in repro.policy.mls; embed the same
    # scheme inline for the family's sensitive documents.
    mls = MlsEncoding(["household", "parents-only"])
    mls.add_subject("dad", "parents-only")
    mls.add_subject("alice", "household")
    mls.add_object("docs/shopping-list", "household")
    mls.add_object("docs/tax-return", "parents-only")

    # ---- exercise everything ---------------------------------------------
    print("One GRBAC policy, four access-control literatures:\n")

    print("1) periodic authorization — 'weekday mornings in July':")
    print(f"   July Mon 09:00: dad edits work files  -> "
          f"{outcome(engine.check('dad', 'edit', 'study/work-files'))}")
    clock.advance(hours=5)  # 14:00
    print(f"   July Mon 14:00: dad edits work files  -> "
          f"{outcome(engine.check('dad', 'edit', 'study/work-files'))}")

    print("\n2) system-load authorization (GACL):")
    print(f"   load={load.load:.2f}: agent runs backup        -> "
          f"{outcome(engine.check('batch-agent', 'run_backup', 'home-server'))}")
    load.set_load(0.85)
    print(f"   load={load.load:.2f}: agent runs backup        -> "
          f"{outcome(engine.check('batch-agent', 'run_backup', 'home-server'))}")

    print("\n3) content-based access (ratings as object roles):")
    print(f"   alice views cartoons (G)              -> "
          f"{outcome(engine.check('alice', 'view', 'media/cartoons'))}")
    print(f"   alice views slasher (R)               -> "
          f"{outcome(engine.check('alice', 'view', 'media/slasher'))}")

    print("\n4) multilevel security (no read up / no write down):")
    print(f"   alice reads the shopping list         -> "
          f"{outcome(mls.can_read('alice', 'docs/shopping-list'))}")
    print(f"   alice reads the tax return            -> "
          f"{outcome(mls.can_read('alice', 'docs/tax-return'))}")
    print(f"   dad writes DOWN to the shopping list  -> "
          f"{outcome(mls.can_write('dad', 'docs/shopping-list'))}")
    print(f"   alice writes UP into the tax return   -> "
          f"{outcome(mls.can_write('alice', 'docs/tax-return'))}")

    print("\nEvery mechanism above is the same machinery: three role "
          "kinds, grant rules, one mediation rule (§4.2.4).")


if __name__ == "__main__":
    main()
