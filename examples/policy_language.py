#!/usr/bin/env python3
"""Authoring a household policy in the GRBAC policy language.

The paper's usability thesis: residents without security training must
be able to define and manage policies.  This example writes the whole
household policy as plain text, compiles it, lints it for conflicts
and dead rules, and exercises it.

Run:  python examples/policy_language.py
"""

from repro.core import AccessRequest, MediationEngine, StaticEnvironment
from repro.policy import PolicyAnalyzer, compile_policy

HOUSEHOLD_POLICY = """
# ---- Who lives here (Figure 2) --------------------------------------
subject role home-user
subject role family-member extends home-user
subject role parent extends family-member
subject role child extends family-member
subject role authorized-guest extends home-user
subject role service-agent extends authorized-guest

subject mom is parent
subject dad is parent
subject alice is child
subject bobby is child
subject repair-tech is service-agent

# ---- What the house contains ----------------------------------------
object role entertainment-devices
object role television extends entertainment-devices
object role dangerous-appliances
object role sensitive-documents

object livingroom/tv is television
object kids-bedroom/console is entertainment-devices
object kitchen/oven is dangerous-appliances
object study/tax-returns is sensitive-documents
object study/medical-records is sensitive-documents

# ---- When things are allowed -----------------------------------------
environment role weekday-free-time
environment role repair-window

# ---- The rules --------------------------------------------------------
# Section 5.1: one rule for all entertainment, forever.
allow child to power_on, watch on entertainment-devices when weekday-free-time
allow parent to power_on, watch on entertainment-devices

# Section 3: adults everywhere, children off the dangerous stuff.
allow family-member to power_on
deny child to power_on on dangerous-appliances

# Sensitive documents: parents only, and only with strong authentication.
allow parent to read_document on sensitive-documents if confidence >= 90%
deny child to read_document on sensitive-documents

# The repairman: scoped to his visit window (bound to time+location
# by the environment runtime in a live deployment).
allow service-agent to diagnose, repair when repair-window

# Bank-style hygiene: nobody both approves and places grocery orders.
constraint dsd purchasing between order-placer and order-approver
subject role order-placer
subject role order-approver

precedence deny-overrides
default deny
"""


def main() -> None:
    policy = compile_policy(HOUSEHOLD_POLICY, name="household")
    stats = policy.stats()
    print(f"Compiled: {stats['permissions']} rules, "
          f"{stats['subject_roles']} subject roles, "
          f"{stats['object_roles']} object roles, "
          f"{stats['environment_roles']} environment roles, "
          f"{stats['constraints']} constraint(s)")

    # ---- Lint before deploying ----------------------------------------
    print("\nPolicy lint:")
    findings = PolicyAnalyzer(policy).lint()
    if not findings:
        print("  clean.")
    for finding in findings:
        print(f"  {finding.describe()}")

    # ---- Exercise it ----------------------------------------------------
    environment = StaticEnvironment({"weekday-free-time"})
    engine = MediationEngine(policy, environment)
    print("\nDecisions with weekday-free-time active:")
    probes = [
        ("alice", "watch", "livingroom/tv"),
        ("alice", "power_on", "kitchen/oven"),
        ("mom", "power_on", "kitchen/oven"),
        ("alice", "read_document", "study/tax-returns"),
        ("repair-tech", "diagnose", "kitchen/oven"),
    ]
    for subject, transaction, obj in probes:
        granted = engine.check(subject, transaction, obj)
        print(f"  {subject:>12} {transaction:<14} {obj:<22} "
              f"-> {'GRANT' if granted else 'deny'}")

    # Strong-auth rule: mom at 95% vs 70%.
    print("\nConfidence-gated documents:")
    for confidence in (0.95, 0.70):
        request = AccessRequest(
            transaction="read_document",
            obj="study/medical-records",
            subject="mom",
            identity_confidence=confidence,
        )
        decision = engine.decide(request)
        print(f"  mom at {confidence:.0%}: "
              f"{'GRANT' if decision.granted else 'deny'}")

    # The DSL catches typos at compile time:
    print("\nWhat a typo looks like:")
    try:
        compile_policy("allow chid to watch on entertainment-devices")
    except Exception as error:
        print(f"  {type(error).__name__}: {error}")


if __name__ == "__main__":
    main()
