#!/usr/bin/env python3
"""The connected home: remote access, guest passes, and administration.

The paper's threat model is the *electronic intruder* — "unlike a
physical burglar, an electronic intruder can attack the home at any
time, from any location" (§1).  This example wires the defenses:

* a remote gateway with channel-aware environment roles — the fridge
  inventory is readable from the office, the bedroom camera stream is
  not, and remote requests must present credentials;
* time-boxed delegation — the babysitter gets guest rights for one
  evening and loses them automatically at 23:00;
* scoped administration — parents can issue guest passes but cannot
  promote anyone to Parent, and children can administer nothing.

Run:  python examples/connected_home.py
"""

from datetime import datetime

from repro.auth import AuthenticationService, PasswordAuthenticator, Presence
from repro.core.admin import AdminAction, PolicyAdministrator
from repro.core.delegation import DelegationManager
from repro.exceptions import AccessDeniedError, AuthenticationError
from repro.home.devices import Camera, Refrigerator, Television
from repro.home.registry import SecureHome
from repro.home.remote import INSIDE_ROLE, REMOTE_ROLE, RemoteGateway
from repro.home.residents import Resident, standard_household
from repro.policy.templates import install_figure2_roles


def outcome_str(granted: bool) -> str:
    return "GRANT" if granted else "deny"


def main() -> None:
    home = SecureHome(start=datetime(2000, 1, 21, 9, 0))  # Friday morning
    install_figure2_roles(home.policy)
    for resident in standard_household():
        home.register_resident(resident)
    home.register_resident(Resident("babysitter", age=19, weight_lb=128.0))
    home.register_device(Refrigerator("fridge", "kitchen"))
    home.register_device(Camera("camera", "kids-bedroom"))
    home.register_device(Television("tv", "livingroom"))

    gateway = RemoteGateway(home)
    policy = home.policy
    policy.grant("family-member", "read_inventory", "kitchen", name="fridge-anywhere")
    policy.grant("parent", "view_stream", "security", INSIDE_ROLE, name="cam-inside")
    policy.grant("parent", "view_snapshot", "security", REMOTE_ROLE, name="cam-remote")
    policy.grant("authorized-guest", "power_on", "entertainment", name="guest-tv")
    policy.grant("authorized-guest", "watch", "entertainment", name="guest-tv2")

    # Remote access requires credentials once an auth service exists.
    passwords = PasswordAuthenticator()
    passwords.enroll("mom", "correct-horse")
    service = AuthenticationService(policy)
    service.register(passwords)
    home.auth = service

    print("=" * 64)
    print("Remote access: mom at the office, Friday 09:00")
    print("=" * 64)
    credentials = Presence("mom", {"password": "correct-horse"})
    fridge = gateway.operate_remote(
        "mom", "kitchen/fridge", "read_inventory", credentials=credentials
    )
    print(f"  read fridge inventory remotely     -> {outcome_str(fridge.granted)}")
    stream = gateway.operate_remote(
        "mom", "kids-bedroom/camera", "view_stream", credentials=credentials
    )
    print(f"  stream the kids' camera remotely   -> {outcome_str(stream.granted)}")
    snap = gateway.operate_remote(
        "mom", "kids-bedroom/camera", "view_snapshot", credentials=credentials
    )
    print(f"  degraded snapshot remotely         -> {outcome_str(snap.granted)}")
    try:
        gateway.operate_remote("mom", "kitchen/fridge", "read_inventory")
    except AuthenticationError as error:
        print(f"  without credentials                -> refused ({error})")
    try:
        gateway.operate_remote(
            "mom",
            "kitchen/fridge",
            "read_inventory",
            credentials=Presence("mom", {"password": "wrong"}),
        )
    except AuthenticationError:
        print("  with a wrong password              -> refused")

    print()
    print("Back home, mom streams the camera from the living room:")
    home.move("mom", "livingroom")
    local = gateway.operate_local("mom", "kids-bedroom/camera", "view_stream")
    print(f"  stream the kids' camera locally    -> {outcome_str(local.granted)}")

    print()
    print("=" * 64)
    print("The babysitter's evening pass (delegation + administration)")
    print("=" * 64)
    delegations = DelegationManager(policy, home.runtime.clock, bus=home.runtime.bus)
    admin = PolicyAdministrator(policy, delegations=delegations, bus=home.runtime.bus)
    admin.grant_admin("parent", AdminAction.DELEGATE_ROLE, "authorized-guest")

    print("  17:00 before the pass:")
    home.runtime.clock.advance(hours=8)
    tv = home.try_operate("babysitter", "livingroom/tv", "power_on")
    print(f"    babysitter powers on the TV      -> {outcome_str(tv.granted)}")

    print("  17:05 mom issues a pass until 23:00:")
    admin.delegate_role(
        "mom", "babysitter", "authorized-guest",
        until=datetime(2000, 1, 21, 23, 0),
    )
    tv = home.try_operate("babysitter", "livingroom/tv", "power_on")
    print(f"    babysitter powers on the TV      -> {outcome_str(tv.granted)}")
    cam = home.try_operate("babysitter", "kids-bedroom/camera", "view_stream")
    print(f"    babysitter tries the camera      -> {outcome_str(cam.granted)}")

    print("  23:30 the pass has lapsed on its own:")
    home.runtime.clock.advance(hours=6, minutes=30)
    tv = home.try_operate("babysitter", "livingroom/tv", "power_on")
    print(f"    babysitter powers on the TV      -> {outcome_str(tv.granted)}")

    try:
        admin.delegate_role(
            "alice", "babysitter", "authorized-guest",
            until=datetime(2000, 1, 22, 23, 0),
        )
    except AccessDeniedError:
        print("    (alice tried to issue a pass herself -> denied)")

    print()
    print("The event record of the evening:")
    for event in home.runtime.bus.history():
        if event.type.startswith(("admin.", "delegation.")):
            payload = {k: v for k, v in event.payload.items() if k != "delegation"}
            print(f"  {event.type:<24} {payload}")
    print(f"\nAudit: {home.audit.summary()}")


if __name__ == "__main__":
    main()
