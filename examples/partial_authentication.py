#!/usr/bin/env python3
"""Partial authentication — the paper's §5.2 Smart Floor story.

Alice (11 years old, 94 pounds) wants to watch television.  The Smart
Floor can identify *her* with only ~75% confidence (her brother weighs
almost the same) — below the household's 90% policy threshold.  But it
can authenticate her into the *Child* role with ~98% confidence,
because the children's weight class is unmistakable.  The policy says
children may use entertainment devices during free time, so the TV
turns on anyway.

The example then sweeps the weight gap between the two children to
show when identity-level authentication starts failing while
role-level authentication keeps working — the design space §5.2 hints
at — and shows multi-sensor fusion (floor + face + voice) pushing
identity back over the threshold.

Run:  python examples/partial_authentication.py
"""

from repro.auth import AuthenticationService, FusionStrategy
from repro.sensors import SmartFloor, face_sensor, voice_sensor
from repro.workload.scenarios import build_s52_scenario


def the_paper_story() -> None:
    print("=" * 66)
    print("Section 5.2, verbatim: Alice vs. the 90% threshold")
    print("=" * 66)
    scenario = build_s52_scenario()
    home = scenario.home
    alice = home.resident("alice")

    result = home.auth.authenticate(alice.presence())
    print(f"Smart Floor evidence: {result.describe()}")
    print(f"Policy threshold:     {scenario.extras['threshold']:.0%}")
    print(f"Identity sufficient?  {result.identity_confidence >= 0.9}")
    print(f"Child role sufficient? {result.role_confidences['child'] >= 0.9}")

    outcome = home.operate_with_presence(
        alice.presence(), "livingroom/tv", "power_on"
    )
    print(f"\nAlice pushes the TV power button -> "
          f"{'the TV turns on' if outcome.granted else 'nothing happens'}")
    print(f"Rationale: {outcome.decision.rationale}")


def weight_gap_sweep() -> None:
    print()
    print("=" * 66)
    print("Sweep: how close can the siblings' weights get?")
    print("=" * 66)
    print(f"{'gap (lb)':>9} {'identity(alice)':>16} {'role(child)':>12} "
          f"{'identity>=90%':>14} {'role>=90%':>10}")
    for gap in (30, 20, 12, 6, 3, 1):
        floor = SmartFloor(measurement_sigma=0.0, identity_sigma=4.0)
        floor.enroll("alice", 94.0)
        floor.enroll("bobby", 94.0 - gap)
        floor.enroll("mom", 135.0)
        floor.enroll("dad", 180.0)
        floor.define_weight_class("child", 40.0, 120.0)
        identity = floor.identity_posterior(94.0)["alice"]
        role = floor.role_confidences(94.0)["child"]
        print(f"{gap:>9} {identity:>16.2f} {role:>12.2f} "
              f"{str(identity >= 0.9):>14} {str(role >= 0.9):>10}")
    print("\nIdentity confidence collapses as the siblings converge; "
          "role confidence is untouched.")


def sensor_fusion() -> None:
    print()
    print("=" * 66)
    print("Fusion: floor + face (90%) + voice (70%) evidence combined")
    print("=" * 66)
    scenario = build_s52_scenario()
    home = scenario.home
    alice = home.resident("alice")

    face = face_sensor()   # the paper's 90%-accurate face recognizer
    voice = voice_sensor()  # and the 70%-accurate voice recognizer
    for resident in home.residents():
        face.enroll(resident.name, resident.face_signature)
        voice.enroll(resident.name, resident.voice_signature)

    for label, sensors in [
        ("floor only", []),
        ("floor + voice", [voice]),
        ("floor + face", [face]),
        ("floor + face + voice", [face, voice]),
    ]:
        service = AuthenticationService(
            home.policy,
            strategy=FusionStrategy.INDEPENDENT,
            identity_threshold=0.5,
        )
        service.register(scenario.extras["floor"])
        for sensor in sensors:
            service.register(sensor)
        result = service.authenticate(alice.presence())
        over = "YES" if result.identity_confidence >= 0.9 else "no"
        print(f"{label:<24} identity(alice) = "
              f"{result.identity_confidence:.3f}   >= 90%? {over}")
    print("\nAgreeing independent sensors push identity past the "
          "threshold the floor alone cannot reach.")


def degraded_access_tiers() -> None:
    print()
    print("=" * 66)
    print("Quality-tiered access (§3): stream needs 90%, snapshot 60%")
    print("=" * 66)
    scenario = build_s52_scenario()
    home = scenario.home
    policy = home.policy
    from repro.home.devices import Camera

    camera = Camera("camera", "kids-bedroom")
    home.register_device(camera)
    policy.grant("parent", "view_stream", "security", min_confidence=0.90)
    policy.grant("parent", "view_snapshot", "security", min_confidence=0.60)

    mom = home.resident("mom")
    # Mom's weight is far from everyone else's: the floor identifies
    # her strongly. Simulate a weaker observation by claiming directly.
    from repro.core import AccessRequest

    for confidence in (0.95, 0.75, 0.50):
        row = []
        for operation in ("view_stream", "view_snapshot"):
            request = AccessRequest(
                transaction=operation,
                obj="kids-bedroom/camera",
                subject="mom",
                identity_confidence=confidence,
            )
            row.append(home.engine.decide(request).granted)
        print(f"mom identified at {confidence:.0%}: "
              f"stream={'GRANT' if row[0] else 'deny':<6} "
              f"snapshot={'GRANT' if row[1] else 'deny'}")
    print("\nWeak evidence degrades gracefully to the low-risk tier "
          "instead of failing outright — the paper's streaming-vs-"
          "still example.")


if __name__ == "__main__":
    the_paper_story()
    weight_gap_sweep()
    sensor_fusion()
    degraded_access_tiers()
