"""The flight recorder: always-on ring of recent decision summaries.

Traces are sampled and metrics are aggregates; neither answers the
live-debugging question *"what were the last N things the PDP actually
did, and why was Bobby just denied?"*.  The :class:`FlightRecorder`
does: a fixed-size ring buffer of small plain-dict summaries, one per
served response, cheap enough to leave on in production (one dict
build and one deque append per decision — no serialization, no I/O).

The ring is queryable via the PDP's ``dump`` wire op and the CLI's
``repro tail`` (follow mode) / ``repro status``.  Entries carry a
monotonic ``seq`` so a follower can poll with ``since_seq`` and only
ever see each entry once, even across ring wrap-around.

Entry schema (see ``docs/OBSERVABILITY.md``)::

    {"seq": 1041, "request_id": 7, "trace_id": "9f86d081884c7d65",
     "subject": "bobby",
     "transaction": "watch", "object": "livingroom/tv",
     "outcome": "deny", "granted": false, "cached": false,
     "matched_rule": "DENY child watch ...", "rationale": "...",
     "environment_roles": ["weekday-free-time"], "latency_us": 95.0}
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional


class FlightRecorder:
    """Fixed-capacity ring buffer of decision summaries."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self.recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        *,
        subject: Optional[str],
        transaction: str,
        obj: str,
        outcome: str,
        granted: bool,
        cached: bool = False,
        request_id: Optional[object] = None,
        trace_id: str = "",
        matched_rule: Optional[str] = None,
        rationale: str = "",
        environment_roles: Optional[List[str]] = None,
        latency_us: float = 0.0,
    ) -> Dict[str, object]:
        """Append one decision summary; returns the stored entry.

        ``trace_id`` links the entry to the distributed trace of the
        same request when one was sampled (``""`` otherwise), so a
        ``repro tail`` line can point straight at ``/trace/<id>``.
        """
        entry: Dict[str, object] = {
            "seq": next(self._seq),
            "request_id": request_id,
            "trace_id": trace_id,
            "subject": subject,
            "transaction": transaction,
            "object": obj,
            "outcome": outcome,
            "granted": granted,
            "cached": cached,
            "matched_rule": matched_rule,
            "rationale": rationale,
            "environment_roles": sorted(environment_roles or ()),
            "latency_us": round(latency_us, 1),
        }
        self._entries.append(entry)
        self.recorded += 1
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_seq(self) -> int:
        return self._entries[-1]["seq"] if self._entries else 0  # type: ignore[return-value]

    def dump(
        self,
        limit: Optional[int] = None,
        since_seq: int = 0,
        subject: Optional[str] = None,
        outcome: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Retained entries, oldest first, after conjunctive filters.

        :param limit: keep only the *newest* ``limit`` matches.
        :param since_seq: only entries with ``seq > since_seq`` — the
            follow-mode cursor.
        :param subject: exact subject filter.
        :param outcome: exact outcome filter (``grant``, ``deny``,
            ``deny-overload``, ``deny-timeout``, ``error``).
        """
        matches = [
            dict(entry)
            for entry in self._entries
            if entry["seq"] > since_seq  # type: ignore[operator]
            and (subject is None or entry["subject"] == subject)
            and (outcome is None or entry["outcome"] == outcome)
        ]
        if limit is not None and limit >= 0:
            matches = matches[-limit:] if limit else []
        return matches

    def stats(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "retained": len(self._entries),
            "recorded": self.recorded,
            "last_seq": self.last_seq,
        }
