"""SLO tracking: rolling service-level objectives with burn rates.

The PDP's counters say what happened since the process started; an
operator needs to know whether the service is meeting its objectives
*right now*.  This module tracks two objectives the serving layer
cares about:

* **availability** — the fraction of requests answered by mediation
  (not shed, not timed out, not errored).  The PDP's explicit
  fail-closed refusals are exactly the "error budget" spend.
* **latency** — the fraction of requests answered within a latency
  threshold.

Each objective keeps a rolling window (bucketed ring — O(1) memory,
O(buckets) reads) plus lifetime totals, and derives the standard
**burn rate**: observed error fraction divided by the error budget
``1 - target``.  Burn rate 1.0 means the budget is being spent
exactly as fast as it accrues; a sustained burn rate above ~14 on a
small window is the classic page-now signal.

Time is injectable (``clock``) and defaults to ``time.monotonic`` —
tests drive the window with a fake clock, nothing here sleeps.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry


class RollingRatio:
    """good/total ratio over a rolling time window, bucketed ring."""

    def __init__(
        self,
        window_s: float = 300.0,
        buckets: int = 30,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be > 0")
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        self.window_s = window_s
        self.bucket_s = window_s / buckets
        self._clock = clock if clock is not None else time.monotonic
        self._good: List[int] = [0] * buckets
        self._total: List[int] = [0] * buckets
        #: Absolute bucket index (monotonic) each slot currently holds.
        self._stamp: List[int] = [-1] * buckets
        self.lifetime_good = 0
        self.lifetime_total = 0

    def _slot(self, now: float) -> int:
        epoch = int(now / self.bucket_s)
        index = epoch % len(self._total)
        if self._stamp[index] != epoch:
            self._stamp[index] = epoch
            self._good[index] = 0
            self._total[index] = 0
        return index

    def record(self, good: bool) -> None:
        index = self._slot(self._clock())
        self._total[index] += 1
        if good:
            self._good[index] += 1
        self.lifetime_total += 1
        if good:
            self.lifetime_good += 1

    def window_counts(self) -> Dict[str, int]:
        """(good, total) summed over buckets still inside the window."""
        now = self._clock()
        current_epoch = int(now / self.bucket_s)
        oldest_live = current_epoch - len(self._total) + 1
        good = total = 0
        for index in range(len(self._total)):
            if self._stamp[index] >= oldest_live:
                good += self._good[index]
                total += self._total[index]
        return {"good": good, "total": total}

    def ratio(self, default: float = 1.0) -> float:
        """Rolling good fraction; ``default`` when the window is empty."""
        counts = self.window_counts()
        if counts["total"] == 0:
            return default
        return counts["good"] / counts["total"]


class SloObjective:
    """One named objective: a target ratio over a rolling window."""

    def __init__(
        self,
        name: str,
        target: float,
        window_s: float = 300.0,
        buckets: int = 30,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError("SLO target must be in (0, 1)")
        self.name = name
        self.target = target
        self.rolling = RollingRatio(window_s, buckets, clock)

    def record(self, good: bool) -> None:
        self.rolling.record(good)

    @property
    def ratio(self) -> float:
        return self.rolling.ratio()

    @property
    def met(self) -> bool:
        return self.ratio >= self.target

    @property
    def burn_rate(self) -> float:
        """Error fraction over error budget (1.0 = spending at accrual)."""
        budget = 1.0 - self.target
        return (1.0 - self.ratio) / budget

    def snapshot(self) -> Dict[str, object]:
        counts = self.rolling.window_counts()
        return {
            "target": self.target,
            "window_s": self.rolling.window_s,
            "window_good": counts["good"],
            "window_total": counts["total"],
            "ratio": round(self.ratio, 6),
            "burn_rate": round(self.burn_rate, 4),
            "met": self.met,
            "lifetime_good": self.rolling.lifetime_good,
            "lifetime_total": self.rolling.lifetime_total,
        }


class SloTracker:
    """The PDP's two serving objectives, plus metric exposition.

    :param availability_target: minimum fraction of requests that must
        be mediated (neither shed nor timed out nor errored).
    :param latency_threshold_s: a request is "fast" when its
        end-to-end service latency is at or under this.
    :param latency_target: minimum fraction of fast requests.
    :param window_s: rolling window both objectives evaluate over.
    :param clock: injectable monotonic clock (tests).
    :param metrics: when given, live gauges are registered
        (``slo.availability.ratio``, ``slo.availability.burn_rate``,
        ``slo.latency.ratio``, ``slo.latency.burn_rate``, targets and
        the latency threshold) so every exposition surface shows SLO
        state without a sync step.
    """

    def __init__(
        self,
        availability_target: float = 0.999,
        latency_threshold_s: float = 0.050,
        latency_target: float = 0.99,
        window_s: float = 300.0,
        buckets: int = 30,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be > 0")
        self.latency_threshold_s = latency_threshold_s
        self.availability = SloObjective(
            "availability", availability_target, window_s, buckets, clock
        )
        self.latency = SloObjective(
            "latency", latency_target, window_s, buckets, clock
        )
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        availability, latency = self.availability, self.latency
        metrics.gauge("slo.availability.target").set(availability.target)
        metrics.gauge("slo.availability.ratio", lambda: availability.ratio)
        metrics.gauge(
            "slo.availability.burn_rate", lambda: availability.burn_rate
        )
        metrics.gauge("slo.latency.target").set(latency.target)
        metrics.gauge(
            "slo.latency.threshold_seconds"
        ).set(self.latency_threshold_s)
        metrics.gauge("slo.latency.ratio", lambda: latency.ratio)
        metrics.gauge("slo.latency.burn_rate", lambda: latency.burn_rate)

    def record_response(self, mediated: bool, latency_s: float) -> None:
        """Record one served response against both objectives.

        :param mediated: the request got a real grant/deny (service
            refusals — shed, timeout, error — spend availability
            budget).
        :param latency_s: end-to-end service latency.
        """
        self.availability.record(mediated)
        self.latency.record(latency_s <= self.latency_threshold_s)

    @property
    def healthy(self) -> bool:
        """Both objectives currently met."""
        return self.availability.met and self.latency.met

    def snapshot(self) -> Dict[str, object]:
        return {
            "availability": self.availability.snapshot(),
            "latency": {
                "threshold_ms": round(self.latency_threshold_s * 1e3, 3),
                **self.latency.snapshot(),
            },
            "healthy": self.healthy,
        }
