"""Observability for the GRBAC engine.

The ROADMAP's north star is an engine serving millions of requests;
operating one requires answering three questions without a debugger:

* **how much** — :mod:`repro.obs.metrics`: a registry of counters and
  latency histograms that the mediation pipeline, sessions, audit log,
  and CLI publish into;
* **why** — :mod:`repro.obs.trace`: span-style decision traces, one
  :class:`StageSpan` per pipeline stage, from which
  ``Decision.explain()`` and audit records are rendered;
* **who is watching** — :mod:`repro.obs.observers`: a subscription hub
  that components publish structured events into.  With no observers
  subscribed the hooks cost one truthiness check, which is what keeps
  the instrumented pipeline within the E11 overhead budget.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.observers import CollectingObserver, Observer, ObserverHub
from repro.obs.trace import DecisionTrace, StageSpan

__all__ = [
    "CollectingObserver",
    "Counter",
    "DecisionTrace",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "ObserverHub",
    "StageSpan",
]
