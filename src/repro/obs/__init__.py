"""Observability for the GRBAC engine.

The ROADMAP's north star is an engine serving millions of requests;
operating one requires answering three questions without a debugger:

* **how much** — :mod:`repro.obs.metrics`: a registry of counters,
  gauges and latency histograms that the mediation pipeline, sessions,
  audit log, PDP, and CLI publish into;
* **why** — :mod:`repro.obs.trace`: span-style decision traces, one
  :class:`StageSpan` per pipeline stage, from which
  ``Decision.explain()`` and audit records are rendered;
* **who is watching** — :mod:`repro.obs.observers`: a subscription hub
  that components publish structured events into.  With no observers
  subscribed the hooks cost one truthiness check, which is what keeps
  the instrumented pipeline within the E11 overhead budget.

PR 4 adds the export boundary that makes the signals *operable*:

* :mod:`repro.obs.export` — Prometheus/JSON metrics exposition (plus
  a validating parser), head-based trace sampling, and bounded
  drop-counting trace sinks (JSONL with rotation, in-memory);
* :mod:`repro.obs.flight` — the always-on flight recorder: a ring of
  recent decision summaries behind the ``dump`` op / ``repro tail``;
* :mod:`repro.obs.slo` — rolling availability and latency objectives
  with burn rates, surfaced through ``metrics`` and ``repro status``.
"""

from repro.obs.export import (
    InMemoryTraceSink,
    JsonlTraceSink,
    PrometheusParseError,
    TraceSampler,
    TraceSink,
    escape_label_value,
    parse_prometheus,
    prometheus_name,
    render_json,
    render_label_set,
    render_prometheus,
    trace_to_dict,
    unescape_label_value,
)
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observers import CollectingObserver, Observer, ObserverHub
from repro.obs.slo import RollingRatio, SloObjective, SloTracker
from repro.obs.trace import (
    DecisionTrace,
    Span,
    SpanCollector,
    StageSpan,
    TraceContext,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "CollectingObserver",
    "Counter",
    "DecisionTrace",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InMemoryTraceSink",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Observer",
    "ObserverHub",
    "PrometheusParseError",
    "RollingRatio",
    "SloObjective",
    "SloTracker",
    "Span",
    "SpanCollector",
    "StageSpan",
    "TraceContext",
    "TraceSampler",
    "TraceSink",
    "escape_label_value",
    "new_span_id",
    "new_trace_id",
    "parse_prometheus",
    "prometheus_name",
    "render_json",
    "render_label_set",
    "render_prometheus",
    "trace_to_dict",
    "unescape_label_value",
]
