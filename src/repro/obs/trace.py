"""Span-style decision traces.

One :class:`DecisionTrace` records the passage of a single access
request through the staged decision pipeline
(:mod:`repro.core.pipeline`): a :class:`StageSpan` per stage with its
duration and a small annotation dict of that stage's outputs, plus the
structured facts of the final decision (effective role sets, matched
rules, rationale).

Two producers build traces:

* the pipeline itself, when a decision is made with ``trace=True`` —
  spans carry real timings;
* ``Decision.explain()``, which *reconstructs* a timing-less trace
  from a decision's recorded fields so that every human-readable
  explanation — live, cached, or rebuilt from an audit record — is
  rendered by the same code path.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional


class StageSpan:
    """One pipeline stage's execution inside a trace."""

    __slots__ = ("name", "duration_s", "annotations")

    def __init__(
        self,
        name: str,
        duration_s: Optional[float] = None,
        annotations: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = name
        #: Wall time the stage took, or ``None`` on reconstructed traces.
        self.duration_s = duration_s
        #: Stage-output summary (small, already-rendered values only).
        self.annotations: Dict[str, object] = dict(annotations or {})

    def describe(self) -> str:
        timing = (
            f"{self.duration_s * 1e6:>9.2f}us"
            if self.duration_s is not None
            else " " * 11
        )
        details = "  ".join(
            f"{key}={value}" for key, value in self.annotations.items()
        )
        return f"{self.name:<24}{timing}  {details}".rstrip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageSpan({self.name!r}, {self.duration_s})"


class DecisionTrace:
    """The full record of one mediated request.

    Mutable by design: the pipeline appends spans as stages complete,
    and the frozen ``Decision`` holds a reference to the same trace —
    the final (emit) span lands after the decision object exists.
    """

    __slots__ = (
        "subject",
        "transaction",
        "obj",
        "mode",
        "request_id",
        "granted",
        "rationale",
        "subject_roles",
        "object_roles",
        "environment_roles",
        "matched_rules",
        "spans",
    )

    def __init__(
        self,
        subject: Optional[str],
        transaction: str,
        obj: str,
        mode: str = "",
        request_id: Optional[object] = None,
    ) -> None:
        self.subject = subject
        self.transaction = transaction
        self.obj = obj
        #: Which expansion/match strategy served the decision.
        self.mode = mode
        #: Wire-protocol correlation id, set by the serving layer when
        #: the request arrived over a protocol that carries one — what
        #: joins an exported span to the client's request and to the
        #: audit record of the same decision.
        self.request_id = request_id
        self.granted: Optional[bool] = None
        self.rationale: str = ""
        #: Effective subject-role name -> confidence.
        self.subject_roles: Dict[str, float] = {}
        self.object_roles: List[str] = []
        self.environment_roles: List[str] = []
        #: ``describe()`` strings of the matched permissions, in order.
        self.matched_rules: List[str] = []
        self.spans: List[StageSpan] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        duration_s: Optional[float] = None,
        annotations: Optional[Mapping[str, object]] = None,
    ) -> StageSpan:
        span = StageSpan(name, duration_s, annotations)
        self.spans.append(span)
        return span

    def span(self, name: str) -> Optional[StageSpan]:
        """The first span with ``name``, or ``None``."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    @property
    def total_s(self) -> Optional[float]:
        """Sum of timed span durations, or ``None`` if none are timed."""
        timed = [s.duration_s for s in self.spans if s.duration_s is not None]
        return sum(timed) if timed else None

    def stage_timings_us(self) -> Dict[str, float]:
        """stage name -> microseconds, for timed spans only."""
        return {
            span.name: round(span.duration_s * 1e6, 3)
            for span in self.spans
            if span.duration_s is not None
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable rendering.

        This is the single formatting path behind ``Decision.explain()``
        and the CLI's ``check --trace`` / ``trace`` output.
        """
        outcome = (
            "GRANT" if self.granted else "DENY"
        ) if self.granted is not None else "?"
        lines = [
            f"request: {self.subject or '<unidentified>'} -> "
            f"{self.transaction} on {self.obj}",
            f"decision: {outcome}",
            f"rationale: {self.rationale}",
        ]
        if self.spans:
            total = self.total_s
            header = "pipeline:"
            if self.mode:
                header = f"pipeline ({self.mode} strategy):"
            if total is not None:
                header += f"  [total {total * 1e6:.2f}us]"
            lines.append(header)
            lines.extend(f"  {span.describe()}" for span in self.spans)
        lines.append(
            "subject roles: "
            + ", ".join(
                f"{name}@{confidence:.2f}"
                for name, confidence in sorted(self.subject_roles.items())
            )
        )
        lines.append("object roles: " + ", ".join(sorted(self.object_roles)))
        lines.append(
            "environment roles: " + ", ".join(sorted(self.environment_roles))
        )
        if self.matched_rules:
            lines.append("matched rules:")
            lines.extend(f"  - {rule}" for rule in self.matched_rules)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionTrace({self.subject!r} -> {self.transaction!r} "
            f"on {self.obj!r}, spans={len(self.spans)})"
        )
