"""Span-style decision traces and distributed trace context.

One :class:`DecisionTrace` records the passage of a single access
request through the staged decision pipeline
(:mod:`repro.core.pipeline`): a :class:`StageSpan` per stage with its
duration and a small annotation dict of that stage's outputs, plus the
structured facts of the final decision (effective role sets, matched
rules, rationale).

Two producers build traces:

* the pipeline itself, when a decision is made with ``trace=True`` —
  spans carry real timings;
* ``Decision.explain()``, which *reconstructs* a timing-less trace
  from a decision's recorded fields so that every human-readable
  explanation — live, cached, or rebuilt from an audit record — is
  rendered by the same code path.

Across processes, a decision is identified by a :class:`TraceContext`
(``trace_id`` / ``span_id`` / head-sampled flag) that rides both wire
formats: the shard router originates or propagates context, each hop
emits a :class:`Span` naming its parent, and a :class:`SpanCollector`
joins router and worker spans into one waterfall after the fact.  The
compact wire form is ``"<trace_id>-<span_id>-<01|00>"`` — 16 lowercase
hex chars for each id, a two-digit sampled flag, nothing else.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional


def new_trace_id() -> str:
    """A fresh 64-bit trace id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


def _is_hex_id(value: str) -> bool:
    if len(value) != 16:
        return False
    return all(ch in "0123456789abcdef" for ch in value)


class TraceContext:
    """Propagated trace identity for one in-flight request.

    ``span_id`` is the *caller's* span — the hop that serialized this
    context — so the receiver records it as its own parent.  The
    ``sampled`` flag is the head-sampling decision made once at the
    origin: every downstream hop obeys it instead of re-rolling, which
    is what makes a cross-process trace either complete or absent,
    never partial.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    @classmethod
    def origin(cls, sampled: bool = True) -> "TraceContext":
        """A fresh root context (new trace id, new origin span id)."""
        return cls(new_trace_id(), new_span_id(), sampled)

    def child(self) -> "TraceContext":
        """The context a downstream hop should forward: same trace,
        a fresh span id standing for *this* hop."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)

    def to_wire(self) -> str:
        return f"{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    @classmethod
    def parse(cls, wire: str) -> "TraceContext":
        """Parse the compact wire form.

        :raises ValueError: on anything that is not exactly
            ``<16 hex>-<16 hex>-<00|01>``.
        """
        parts = wire.split("-")
        if len(parts) != 3:
            raise ValueError(f"malformed trace context {wire!r}")
        trace_id, span_id, flag = parts
        if not (_is_hex_id(trace_id) and _is_hex_id(span_id)):
            raise ValueError(f"malformed trace context ids in {wire!r}")
        if flag not in ("00", "01"):
            raise ValueError(f"malformed trace context flag in {wire!r}")
        return cls(trace_id, span_id, flag == "01")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.sampled == other.sampled
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.to_wire()!r})"


class Span:
    """One hop's contribution to a distributed trace.

    Unlike :class:`StageSpan` (an intra-process pipeline stage), a
    :class:`Span` carries the cross-process identity triple and the
    name of the service that emitted it, so a collector can join spans
    from different processes into one tree.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_span_id",
        "name",
        "service",
        "start_s",
        "duration_s",
        "annotations",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        name: str,
        service: str,
        parent_span_id: str = "",
        start_s: Optional[float] = None,
        duration_s: Optional[float] = None,
        annotations: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.name = name
        self.service = service
        self.start_s = start_s
        self.duration_s = duration_s
        self.annotations: Dict[str, object] = dict(annotations or {})

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "service": self.service,
            "start_s": self.start_s,
            "duration_us": (
                round(self.duration_s * 1e6, 3)
                if self.duration_s is not None
                else None
            ),
            "annotations": dict(self.annotations),
        }


class SpanCollector:
    """A bounded in-memory store of span dicts, grouped by trace id.

    The cluster admin's trace endpoint and the router's span buffer
    both sit on this: :meth:`add` is one dict append, eviction drops
    whole *traces* oldest-first (a partially evicted trace would look
    like a propagation bug), and :meth:`get` hands back copies.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("span collector capacity must be >= 1")
        self.capacity = capacity
        self._traces: "OrderedDict[str, List[Dict[str, object]]]" = OrderedDict()
        self.added = 0
        self.evicted_traces = 0

    def add(self, span: Dict[str, object]) -> None:
        trace_id = span.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return
        bucket = self._traces.get(trace_id)
        if bucket is None:
            while len(self._traces) >= self.capacity:
                self._traces.popitem(last=False)
                self.evicted_traces += 1
            bucket = self._traces[trace_id] = []
        bucket.append(dict(span))
        self.added += 1

    def get(self, trace_id: str) -> List[Dict[str, object]]:
        return [dict(span) for span in self._traces.get(trace_id, ())]

    def trace_ids(self, limit: Optional[int] = None) -> List[str]:
        """Retained trace ids, newest first."""
        ids = list(reversed(self._traces.keys()))
        return ids[:limit] if limit is not None else ids

    def __len__(self) -> int:
        return len(self._traces)

    def stats(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "traces": len(self._traces),
            "spans": self.added,
            "evicted_traces": self.evicted_traces,
        }


class StageSpan:
    """One pipeline stage's execution inside a trace."""

    __slots__ = ("name", "duration_s", "annotations")

    def __init__(
        self,
        name: str,
        duration_s: Optional[float] = None,
        annotations: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.name = name
        #: Wall time the stage took, or ``None`` on reconstructed traces.
        self.duration_s = duration_s
        #: Stage-output summary (small, already-rendered values only).
        self.annotations: Dict[str, object] = dict(annotations or {})

    def describe(self) -> str:
        timing = (
            f"{self.duration_s * 1e6:>9.2f}us"
            if self.duration_s is not None
            else " " * 11
        )
        details = "  ".join(
            f"{key}={value}" for key, value in self.annotations.items()
        )
        return f"{self.name:<24}{timing}  {details}".rstrip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageSpan({self.name!r}, {self.duration_s})"


class DecisionTrace:
    """The full record of one mediated request.

    Mutable by design: the pipeline appends spans as stages complete,
    and the frozen ``Decision`` holds a reference to the same trace —
    the final (emit) span lands after the decision object exists.
    """

    __slots__ = (
        "subject",
        "transaction",
        "obj",
        "mode",
        "request_id",
        "trace_id",
        "span_id",
        "parent_span_id",
        "granted",
        "rationale",
        "subject_roles",
        "object_roles",
        "environment_roles",
        "matched_rules",
        "spans",
    )

    def __init__(
        self,
        subject: Optional[str],
        transaction: str,
        obj: str,
        mode: str = "",
        request_id: Optional[object] = None,
    ) -> None:
        self.subject = subject
        self.transaction = transaction
        self.obj = obj
        #: Which expansion/match strategy served the decision.
        self.mode = mode
        #: Wire-protocol correlation id, set by the serving layer when
        #: the request arrived over a protocol that carries one — what
        #: joins an exported span to the client's request and to the
        #: audit record of the same decision.
        self.request_id = request_id
        #: Distributed-trace identity, set by the serving layer when
        #: the request carried (or the PDP originated) a
        #: :class:`TraceContext`.  Empty strings on purely local
        #: traces — ``check --trace`` output stays unchanged.
        self.trace_id: str = ""
        self.span_id: str = ""
        self.parent_span_id: str = ""
        self.granted: Optional[bool] = None
        self.rationale: str = ""
        #: Effective subject-role name -> confidence.
        self.subject_roles: Dict[str, float] = {}
        self.object_roles: List[str] = []
        self.environment_roles: List[str] = []
        #: ``describe()`` strings of the matched permissions, in order.
        self.matched_rules: List[str] = []
        self.spans: List[StageSpan] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add_span(
        self,
        name: str,
        duration_s: Optional[float] = None,
        annotations: Optional[Mapping[str, object]] = None,
    ) -> StageSpan:
        span = StageSpan(name, duration_s, annotations)
        self.spans.append(span)
        return span

    def span(self, name: str) -> Optional[StageSpan]:
        """The first span with ``name``, or ``None``."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    @property
    def total_s(self) -> Optional[float]:
        """Sum of timed span durations, or ``None`` if none are timed."""
        timed = [s.duration_s for s in self.spans if s.duration_s is not None]
        return sum(timed) if timed else None

    def stage_timings_us(self) -> Dict[str, float]:
        """stage name -> microseconds, for timed spans only."""
        return {
            span.name: round(span.duration_s * 1e6, 3)
            for span in self.spans
            if span.duration_s is not None
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Multi-line human-readable rendering.

        This is the single formatting path behind ``Decision.explain()``
        and the CLI's ``check --trace`` / ``trace`` output.
        """
        outcome = (
            "GRANT" if self.granted else "DENY"
        ) if self.granted is not None else "?"
        lines = [
            f"request: {self.subject or '<unidentified>'} -> "
            f"{self.transaction} on {self.obj}",
            f"decision: {outcome}",
            f"rationale: {self.rationale}",
        ]
        if self.trace_id:
            line = f"trace: {self.trace_id} span={self.span_id}"
            if self.parent_span_id:
                line += f" parent={self.parent_span_id}"
            lines.insert(1, line)
        if self.spans:
            total = self.total_s
            header = "pipeline:"
            if self.mode:
                header = f"pipeline ({self.mode} strategy):"
            if total is not None:
                header += f"  [total {total * 1e6:.2f}us]"
            lines.append(header)
            lines.extend(f"  {span.describe()}" for span in self.spans)
        lines.append(
            "subject roles: "
            + ", ".join(
                f"{name}@{confidence:.2f}"
                for name, confidence in sorted(self.subject_roles.items())
            )
        )
        lines.append("object roles: " + ", ".join(sorted(self.object_roles)))
        lines.append(
            "environment roles: " + ", ".join(sorted(self.environment_roles))
        )
        if self.matched_rules:
            lines.append("matched rules:")
            lines.extend(f"  - {rule}" for rule in self.matched_rules)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionTrace({self.subject!r} -> {self.transaction!r} "
            f"on {self.obj!r}, spans={len(self.spans)})"
        )
