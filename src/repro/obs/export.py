"""Telemetry export: metrics exposition and trace sinks.

Everything PR 2/PR 3 instrumented is in-process plain data —
:class:`~repro.obs.metrics.MetricsRegistry` snapshots and
:class:`~repro.obs.trace.DecisionTrace` objects.  This module is the
boundary that turns those into *operable* signals:

* :func:`render_prometheus` / :func:`render_json` — one registry,
  two expositions.  Prometheus text is what a scraper pulls from the
  ``metrics`` wire op or the ``--admin-port`` HTTP sidecar; the JSON
  form is the same numbers for scripts and the CLI.
* :func:`parse_prometheus` — a deliberately small parser for the text
  format, used by tests and the CI smoke job to *validate* what we
  expose (an exposition bug should fail CI, not a dashboard at 3am).
* :class:`TraceSampler` — head-based sampling: the keep/drop choice
  is made once at admission, so a sampled request pays for tracing
  and an unsampled one pays nothing.
* :class:`TraceSink` + :class:`InMemoryTraceSink` /
  :class:`JsonlTraceSink` — where sampled spans go.  The JSONL sink
  is bounded and drop-counting: when its queue is full the span is
  dropped and counted, never blocking the decision path; a background
  writer thread owns the file and rotates it at a size threshold.

Span schema (one JSON object per line; see ``docs/OBSERVABILITY.md``)::

    {"request_id": 7, "trace_id": "9f86d081884c7d65", "span_id": "...",
     "parent_span_id": "...", "subject": "alice", "transaction": "watch",
     "object": "livingroom/tv", "granted": true, "mode": "compiled",
     "rationale": "...", "environment_roles": [...],
     "subject_roles": {...}, "matched_rules": [...],
     "total_us": 101.2,
     "stages": [{"name": "resolve-subject-roles", "duration_us": 8.1,
                 "annotations": {...}}, ...]}
"""

from __future__ import annotations

import json
import os
import queue
import threading
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DecisionTrace

#: Prefix every exposed metric carries, so a shared Prometheus has an
#: unambiguous namespace to scrape/alert on.
PROMETHEUS_PREFIX = "grbac"


# ----------------------------------------------------------------------
# Metric-name mangling
# ----------------------------------------------------------------------
def prometheus_name(name: str, suffix: str = "") -> str:
    """Registry name -> Prometheus metric name.

    Registry names are dotted (``pdp.cache_hits``,
    ``pipeline.match-permissions``); Prometheus names must match
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``.  Dots and dashes become underscores
    and the ``grbac_`` namespace prefix is applied.
    """
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return f"{PROMETHEUS_PREFIX}_{safe}{suffix}"


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN never equals itself
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format.

    Backslash, double-quote, and newline are the three characters the
    format escapes inside quoted label values; anything else passes
    through.  Every labelled sample this package emits (tenant labels,
    the cluster merger's ``shard`` labels) goes through here.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Invert :func:`escape_label_value` (used by the parser)."""
    out: List[str] = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep both characters verbatim
                out.append(ch)
                out.append(nxt)
            index += 2
            continue
        out.append(ch)
        index += 1
    return "".join(out)


def render_label_set(labels: Dict[str, str]) -> str:
    """``{a="x",b="y"}`` with proper value escaping; ``""`` if empty."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------
def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in Prometheus text exposition format (0.0.4).

    Counters expose as ``counter``, gauges as ``gauge``, histograms as
    native Prometheus histograms: cumulative ``_bucket{le="..."}``
    series (including the mandatory ``le="+Inf"``), ``_sum`` and
    ``_count``.  Histogram values are seconds, so bucket bounds are
    directly usable in ``histogram_quantile()``.
    """
    lines: List[str] = []
    for name, value in registry.counters().items():
        metric = prometheus_name(name, "_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in registry.gauges().items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, histogram in registry.histogram_objects().items():
        metric = prometheus_name(name, "_seconds")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, bucket in zip(histogram.bounds, histogram.buckets):
            cumulative += bucket
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry) -> Dict[str, object]:
    """The registry snapshot, as exposed by the ``metrics`` op."""
    return registry.snapshot()


# ----------------------------------------------------------------------
# Validation parser
# ----------------------------------------------------------------------
class PrometheusParseError(ValueError):
    """The exposition text violates the Prometheus text format."""


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text exposition into ``{name: [(labels, value)]}``.

    A *validating* parser for the subset this package emits (and any
    well-formed unlabelled/simple-labelled exposition): it rejects
    malformed sample lines, bad label syntax, non-numeric values, and
    samples whose metric family was ``# TYPE``-declared under a
    different name than used.  Used by tests and the CI smoke job —
    this is the "small parser" the service-smoke gate runs the scraped
    body through.

    :raises PrometheusParseError: on any malformed line.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                raise PrometheusParseError(
                    f"line {line_number}: unknown comment form {line!r}"
                )
            if parts[1:2] == ["TYPE"] and len(parts) != 4:
                raise PrometheusParseError(
                    f"line {line_number}: malformed TYPE line {line!r}"
                )
            continue
        name, labels, value_text = _split_sample(line, line_number)
        if not name or not _valid_metric_name(name):
            raise PrometheusParseError(
                f"line {line_number}: invalid metric name {name!r}"
            )
        try:
            value = float(value_text)
        except ValueError:
            raise PrometheusParseError(
                f"line {line_number}: non-numeric value {value_text!r}"
            ) from None
        samples.setdefault(name, []).append((labels, value))
    return samples


def _valid_metric_name(name: str) -> bool:
    head, tail = name[0], name[1:]
    if not (head.isalpha() or head in "_:"):
        return False
    return all(ch.isalnum() or ch in "_:" for ch in tail)


def _split_sample(
    line: str, line_number: int
) -> Tuple[str, Dict[str, str], str]:
    """``name{label="v"} value`` -> (name, labels, value-text).

    Label values are scanned character-by-character so escaped quotes,
    backslashes, newlines (``\\n``), and literal ``}`` / ``,`` inside a
    quoted value all parse correctly — the merger's ``shard`` labels
    and tenant labels may contain any of these.
    """
    labels: Dict[str, str] = {}
    if "{" in line:
        name, _, rest = line.partition("{")
        index = 0
        while True:
            # Skip separators / whitespace before a key or the close.
            while index < len(rest) and rest[index] in ", \t":
                index += 1
            if index >= len(rest):
                raise PrometheusParseError(
                    f"line {line_number}: unterminated label set {line!r}"
                )
            if rest[index] == "}":
                index += 1
                break
            eq = rest.find("=", index)
            if eq < 0:
                raise PrometheusParseError(
                    f"line {line_number}: malformed label pair in {line!r}"
                )
            key = rest[index:eq].strip()
            index = eq + 1
            while index < len(rest) and rest[index] in " \t":
                index += 1
            if not key or index >= len(rest) or rest[index] != '"':
                raise PrometheusParseError(
                    f"line {line_number}: malformed label pair in {line!r}"
                )
            index += 1
            raw: List[str] = []
            while index < len(rest):
                ch = rest[index]
                if ch == "\\" and index + 1 < len(rest):
                    raw.append(ch)
                    raw.append(rest[index + 1])
                    index += 2
                    continue
                if ch == '"':
                    break
                raw.append(ch)
                index += 1
            if index >= len(rest) or rest[index] != '"':
                raise PrometheusParseError(
                    f"line {line_number}: unterminated label value in {line!r}"
                )
            index += 1
            labels[key] = unescape_label_value("".join(raw))
        value_part = rest[index:].strip()
        if not value_part:
            raise PrometheusParseError(
                f"line {line_number}: malformed labelled sample {line!r}"
            )
        return name.strip(), labels, value_part.split()[0]
    parts = line.split()
    if len(parts) < 2:
        raise PrometheusParseError(
            f"line {line_number}: sample needs a name and a value: {line!r}"
        )
    return parts[0], labels, parts[1]


# ----------------------------------------------------------------------
# Trace serialization
# ----------------------------------------------------------------------
def trace_to_dict(
    trace: DecisionTrace, request_id: Optional[object] = None
) -> Dict[str, object]:
    """One exported span record for a recorded decision trace."""
    total = trace.total_s
    payload: Dict[str, object] = {
        "request_id": request_id if request_id is not None else trace.request_id,
        "trace_id": trace.trace_id,
        "span_id": trace.span_id,
        "parent_span_id": trace.parent_span_id,
        "subject": trace.subject,
        "transaction": trace.transaction,
        "object": trace.obj,
        "mode": trace.mode,
        "granted": trace.granted,
        "rationale": trace.rationale,
        "subject_roles": {
            name: round(confidence, 6)
            for name, confidence in sorted(trace.subject_roles.items())
        },
        "environment_roles": sorted(trace.environment_roles),
        "matched_rules": list(trace.matched_rules),
        "total_us": round(total * 1e6, 3) if total is not None else None,
        "stages": [
            {
                "name": span.name,
                "duration_us": (
                    round(span.duration_s * 1e6, 3)
                    if span.duration_s is not None
                    else None
                ),
                "annotations": {
                    key: _plain(value)
                    for key, value in span.annotations.items()
                },
            }
            for span in trace.spans
        ],
    }
    return payload


def _plain(value: object) -> object:
    """Annotation values as JSON-safe plain data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    return repr(value)


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
class TraceSampler:
    """Deterministic head-based sampler.

    ``rate`` is the target sampled fraction in ``[0, 1]``.  The
    sampler is a credit accumulator, not a coin flip: every admission
    adds ``rate`` credit and a sample spends one unit, so exactly
    ``ceil(n * rate)`` of the first ``n`` requests are sampled — load
    tests and benchmarks see the same overhead every run.
    """

    __slots__ = ("rate", "_credit", "sampled", "seen")

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("trace sample rate must be in [0, 1]")
        self.rate = rate
        self._credit = 0.0
        self.sampled = 0
        self.seen = 0

    def should_sample(self) -> bool:
        self.seen += 1
        if self.rate == 0.0:
            return False
        self._credit += self.rate
        if self._credit >= 1.0 - 1e-12:
            self._credit -= 1.0
            self.sampled += 1
            return True
        return False


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TraceSink:
    """Where sampled decision spans go.

    The contract producers rely on: :meth:`offer` never blocks and
    never raises — a full or broken sink drops the span and counts it
    in :attr:`dropped`.
    """

    def __init__(self) -> None:
        self.accepted = 0
        self.dropped = 0

    def offer(self, span: Dict[str, object]) -> bool:
        """Accept ``span`` (a plain dict) for export; True if kept."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; idempotent."""

    def stats(self) -> Dict[str, object]:
        return {"accepted": self.accepted, "dropped": self.dropped}


class InMemoryTraceSink(TraceSink):
    """Buffers spans in memory — tests and the in-process live-ops path."""

    def __init__(self, capacity: int = 1024) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("sink capacity must be >= 1")
        self.capacity = capacity
        self.spans: List[Dict[str, object]] = []

    def offer(self, span: Dict[str, object]) -> bool:
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return False
        self.spans.append(span)
        self.accepted += 1
        return True


class JsonlTraceSink(TraceSink):
    """Bounded async JSONL file sink with size-based rotation.

    ``offer`` puts the span on a bounded queue and returns; a daemon
    writer thread serializes, writes, and rotates.  When the queue is
    full the span is dropped and counted — exporting telemetry must
    never add latency to (let alone fail) a decision.

    Rotation: when the active file exceeds ``max_bytes`` it is renamed
    to ``<path>.1`` (shifting older generations up to ``backups``) and
    a fresh file is started.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 16 * 1024 * 1024,
        backups: int = 2,
        queue_size: int = 2048,
    ) -> None:
        super().__init__()
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self.rotations = 0
        self._queue: "queue.Queue[Optional[Dict[str, object]]]" = queue.Queue(
            maxsize=queue_size
        )
        self._closed = False
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._writer = threading.Thread(
            target=self._drain, name="grbac-trace-sink", daemon=True
        )
        self._writer.start()

    # -- producer side -------------------------------------------------
    def offer(self, span: Dict[str, object]) -> bool:
        if self._closed:
            self.dropped += 1
            return False
        try:
            self._queue.put_nowait(span)
        except queue.Full:
            self.dropped += 1
            return False
        self.accepted += 1
        return True

    def close(self) -> None:
        """Stop the writer after it drains everything already queued."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)  # wake the writer; blocks only if full,
        # in which case the writer is actively draining ahead of us.
        self._writer.join(timeout=5.0)

    # -- writer side ---------------------------------------------------
    def _drain(self) -> None:
        handle = open(self.path, "a", encoding="utf-8")
        size = handle.tell()
        try:
            while True:
                span = self._queue.get()
                if span is None:
                    break
                line = json.dumps(span, sort_keys=True) + "\n"
                handle.write(line)
                handle.flush()
                size += len(line.encode("utf-8"))
                if size > self.max_bytes:
                    handle.close()
                    self._rotate()
                    handle = open(self.path, "a", encoding="utf-8")
                    size = 0
        finally:
            handle.close()

    def _rotate(self) -> None:
        self.rotations += 1
        if self.backups == 0:
            os.remove(self.path)
            return
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for generation in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{generation}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{generation + 1}")
        os.replace(self.path, f"{self.path}.1")

    def stats(self) -> Dict[str, object]:
        data = super().stats()
        data["path"] = self.path
        data["rotations"] = self.rotations
        return data
