"""Observer hooks: who gets told what the engine is doing.

An :class:`ObserverHub` is a subscription point that producers —
:class:`~repro.core.mediation.MediationEngine`,
:class:`~repro.core.activation.SessionManager`,
:class:`~repro.env.runtime.EnvironmentRuntime`,
:class:`~repro.core.audit.AuditLog`, the CLI, and the workload
replayers — publish structured events into.

The contract that keeps this safe on the mediation hot path:

* producers guard every publication with ``if hub:`` — an empty (or
  absent) hub costs one truthiness check per event site;
* observers must not raise; a raising observer is unsubscribed and the
  error recorded, so a broken dashboard can never turn into a denied
  (or granted!) access;
* payloads are small plain values, already rendered — no live policy
  objects that an observer could mutate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.trace import DecisionTrace


class Observer:
    """Base observer: override the callbacks you care about."""

    def on_event(self, name: str, payload: Dict[str, object]) -> None:
        """A structured event (``session.open``, ``audit.record``, ...)."""

    def on_decision(
        self, decision: object, trace: Optional[DecisionTrace] = None
    ) -> None:
        """A mediation decision was emitted.

        ``decision`` is a :class:`~repro.core.decision.Decision`;
        ``trace`` is its pipeline trace when one was recorded.
        """


class CollectingObserver(Observer):
    """Buffers everything it sees — for tests and ad-hoc debugging."""

    def __init__(self) -> None:
        self.events: List[Tuple[str, Dict[str, object]]] = []
        self.decisions: List[object] = []
        self.traces: List[Optional[DecisionTrace]] = []

    def on_event(self, name: str, payload: Dict[str, object]) -> None:
        self.events.append((name, dict(payload)))

    def on_decision(
        self, decision: object, trace: Optional[DecisionTrace] = None
    ) -> None:
        self.decisions.append(decision)
        self.traces.append(trace)

    def event_names(self) -> List[str]:
        return [name for name, _ in self.events]


class ObserverHub:
    """Fan-out point from producers to subscribed observers."""

    def __init__(self) -> None:
        self._observers: List[Observer] = []
        #: (observer repr, error repr) pairs for observers dropped
        #: because they raised — surfaced instead of silently lost.
        self.dropped: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, observer: Observer) -> Observer:
        self._observers.append(observer)
        return observer

    def unsubscribe(self, observer: Observer) -> None:
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._observers)

    def __bool__(self) -> bool:
        return bool(self._observers)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def emit(self, name: str, **payload: object) -> None:
        for observer in list(self._observers):
            try:
                observer.on_event(name, payload)
            except Exception as error:  # noqa: BLE001 - observer isolation
                self._drop(observer, error)

    def emit_decision(
        self, decision: object, trace: Optional[DecisionTrace] = None
    ) -> None:
        for observer in list(self._observers):
            try:
                observer.on_decision(decision, trace)
            except Exception as error:  # noqa: BLE001 - observer isolation
                self._drop(observer, error)

    def _drop(self, observer: Observer, error: Exception) -> None:
        self.unsubscribe(observer)
        self.dropped.append((repr(observer), repr(error)))
