"""Engine-wide metrics: counters and latency histograms.

A deliberately small, dependency-free metrics substrate.  Components
hold a :class:`MetricsRegistry` and publish named :class:`Counter` and
:class:`Histogram` instances into it; the CLI renders a registry
snapshot with ``check --stats`` / ``bench``.

Design constraints, in order:

1. **Hot-path cost.**  ``counter.inc()`` is one attribute add;
   ``registry.counter(name)`` is one dict probe (callers cache the
   returned object when they sit on the decision path).
2. **No wall-clock surprises.**  Histograms bucket values themselves;
   nothing here reads a clock — callers measure and hand in seconds.
3. **Plain-data snapshots.**  ``snapshot()`` returns dicts of numbers
   so benchmarks and the CLI can serialize without adapters.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Tuple

#: Histogram bucket upper bounds in seconds: 1us .. ~8.4s, doubling.
#: One overflow bucket catches anything slower.
_DEFAULT_BOUNDS: Tuple[float, ...] = tuple(1e-6 * 2**i for i in range(24))


class Counter:
    """A monotonic (by convention) named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the count — used to sync engine-internal tallies
        (kept as plain attributes for hot-path speed) into the registry
        at snapshot time."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: set directly, or backed by a callable.

    Two flavours, one surface:

    * ``gauge.set(value)`` — components push the latest value
      (e.g. a queue depth sampled at snapshot time);
    * ``Gauge(name, fn=...)`` — the gauge *pulls* from ``fn`` whenever
      it is read, so exposition always reports live state (e.g. the
      environment-snapshot revision) without a sync step.
    """

    __slots__ = ("name", "_value", "fn")

    def __init__(
        self, name: str, fn: Optional[Callable[[], float]] = None
    ) -> None:
        self.name = name
        self._value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:  # noqa: BLE001 - a broken probe reads as 0
                return 0.0
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bucket latency histogram (seconds).

    Tracks count / sum / min / max exactly and the distribution in
    geometric buckets, from which :meth:`quantile` interpolates — the
    usual trade: bounded memory, ~1 bucket-width error on percentiles.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Tuple[float, ...] = _DEFAULT_BOUNDS
    ) -> None:
        self.name = name
        self.bounds = bounds
        self.buckets: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile (0 < q <= 1) in seconds.

        Returns the upper bound of the bucket holding the ``q``-th
        observation, clamped to the exactly-tracked observed ``max`` —
        so an estimate never exceeds any real observation.  Edge cases
        (pinned by ``tests/obs/test_histogram_quantile.py``):

        * empty histogram → ``0.0`` (there is nothing to estimate);
        * a single observation → that observation exactly, for every
          ``q`` (the clamp collapses the bucket-width error);
        * ``q = 1.0`` → the observed ``max`` exactly;
        * observations beyond the top bucket land in the overflow
          bucket, whose only known bound is the observed ``max``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        observed_max = self.max if self.max is not None else 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self.buckets):
            seen += bucket
            if seen >= target:
                if index >= len(self.bounds):
                    return observed_max
                return min(self.bounds[index], observed_max)
        return observed_max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": round(self.mean * 1e6, 3),
            "p50_us": round(self.quantile(0.5) * 1e6, 3),
            "p95_us": round(self.quantile(0.95) * 1e6, 3),
            "p99_us": round(self.quantile(0.99) * 1e6, 3),
            "min_us": round((self.min or 0.0) * 1e6, 3),
            "max_us": round((self.max or 0.0) * 1e6, 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters and histograms for one engine (or one process).

    Components share a registry by passing the same instance around —
    the CLI wires one registry through the engine, audit log, and its
    own output; tests hand each engine a private one.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    # Access / creation
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        """The named gauge, created on first use.

        Passing ``fn`` (re)binds the gauge to a live probe — last
        binding wins, so a restarted component can re-register its
        probe over a stale one.
        """
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            found.fn = fn
        return found

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        return {
            name: h.snapshot() for name, h in sorted(self._histograms.items())
        }

    def gauges(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histogram_objects(self) -> Dict[str, Histogram]:
        """The live histograms, for exposition (bucket-level access)."""
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of everything recorded so far."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def render(self) -> str:
        """Human-readable multi-line rendering for CLI output."""
        lines: List[str] = []
        counters = self.counters()
        if counters:
            lines.append("counters:")
            lines.extend(
                f"  {name:<32} {value}" for name, value in counters.items()
            )
        gauges = self.gauges()
        if gauges:
            lines.append("gauges:")
            lines.extend(
                f"  {name:<32} {value:g}" for name, value in gauges.items()
            )
        histograms = self.histograms()
        if histograms:
            lines.append("latency histograms (us):")
            lines.append(
                f"  {'name':<32}{'count':>8}{'mean':>10}{'p50':>10}"
                f"{'p95':>10}{'p99':>10}{'max':>10}"
            )
            for name, snap in histograms.items():
                lines.append(
                    f"  {name:<32}{snap['count']:>8}{snap['mean_us']:>10.2f}"
                    f"{snap['p50_us']:>10.2f}{snap['p95_us']:>10.2f}"
                    f"{snap['p99_us']:>10.2f}{snap['max_us']:>10.2f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
