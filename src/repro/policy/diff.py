"""Policy diffing — what changed between two policy versions.

Administration needs review: before applying an edited policy, a
homeowner (or an auditor, afterwards) wants the delta, not two
thousand-line documents.  :func:`diff_policies` computes a structural
diff over everything that affects decisions: entities, roles,
hierarchy edges, assignments, rules, constraints, and configuration.

The output is a :class:`PolicyDiff` of added/removed items per
category, renderable as a unified human-readable report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.policy import GrbacPolicy
from repro.policy.serialize import to_dict


@dataclass(frozen=True)
class CategoryDiff:
    """Added/removed items in one category."""

    added: Tuple[str, ...] = ()
    removed: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed


@dataclass
class PolicyDiff:
    """The full structural delta between two policies."""

    categories: Dict[str, CategoryDiff] = field(default_factory=dict)
    #: Configuration changes: name -> (old, new).
    settings: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        return all(diff.empty for diff in self.categories.values()) and (
            not self.settings
        )

    def describe(self) -> str:
        """Unified human-readable rendering (+/- lines)."""
        if self.empty:
            return "policies are equivalent"
        lines: List[str] = []
        for name, (old, new) in sorted(self.settings.items()):
            lines.append(f"~ {name}: {old} -> {new}")
        for category, diff in self.categories.items():
            if diff.empty:
                continue
            lines.append(f"{category}:")
            for item in diff.removed:
                lines.append(f"  - {item}")
            for item in diff.added:
                lines.append(f"  + {item}")
        return "\n".join(lines)


def _render_items(category: str, entries) -> Set[str]:
    if category == "permissions":
        return {
            f"{e['sign']} {e['transaction']} to {e['subject_role']} "
            f"on {e['object_role']} when {e['environment_role']}"
            + (f" (confidence >= {e['min_confidence']:.0%})" if e["min_confidence"] else "")
            + (f" (priority {e['priority']})" if e["priority"] else "")
            for e in entries
        }
    if category == "constraints":
        return {
            ", ".join(f"{k}={v}" for k, v in sorted(e.items())) for e in entries
        }
    if category in ("subjects", "objects", "transactions"):
        return {e["name"] for e in entries}
    if category.endswith("_roles"):
        return {e["name"] for e in entries}
    # hierarchy edges and assignments: [a, b] pairs
    return {f"{a} -> {b}" for a, b in entries}


#: Categories compared, in report order.
_CATEGORIES = [
    "subjects",
    "objects",
    "transactions",
    "subject_roles",
    "object_roles",
    "environment_roles",
    "subject_hierarchy",
    "object_hierarchy",
    "environment_hierarchy",
    "subject_assignments",
    "object_assignments",
    "permissions",
    "constraints",
]


def diff_policies(old: GrbacPolicy, new: GrbacPolicy) -> PolicyDiff:
    """Structural diff from ``old`` to ``new``."""
    old_doc = to_dict(old)
    new_doc = to_dict(new)
    result = PolicyDiff()
    for category in _CATEGORIES:
        old_items = _render_items(category, old_doc[category])
        new_items = _render_items(category, new_doc[category])
        result.categories[category] = CategoryDiff(
            added=tuple(sorted(new_items - old_items)),
            removed=tuple(sorted(old_items - new_items)),
        )
    for setting in ("precedence", "default_sign"):
        if old_doc[setting] != new_doc[setting]:
            result.settings[setting] = (old_doc[setting], new_doc[setting])
    return result
