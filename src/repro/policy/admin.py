"""Live policy administration: validated atomic hot-reload.

ARBAC treats policy *change* as a first-class, analyzable operation;
this module is that operation for the running service.  A candidate
policy — DSL text or the serialized JSON form — goes through a fixed
pipeline before it can touch traffic:

1. **parse/compile** (:func:`load_policy_text`),
2. **lint** with the existing :class:`~repro.policy.analysis.PolicyAnalyzer`
   (severities at or above ``fail_on`` reject the candidate),
3. **diff** against the live policy
   (:func:`~repro.policy.diff.diff_policies`) for the human-readable
   change summary,
4. **swap** via :meth:`PolicyDecisionPoint.swap_policy
   <repro.service.pdp.PolicyDecisionPoint.swap_policy>` — atomic on
   the event loop, generation-keyed so stale cache entries stop
   matching by construction.

Every attempt — accepted, rejected, or dry-run — lands in a bounded
:class:`ReloadAudit` as a :class:`ReloadRecord` naming who asked, when,
what changed, and why it was refused if it was.  A rejected or failed
reload leaves the old policy serving, untouched.

:class:`PolicyFileWatcher` closes the loop for ``serve --policy-file
--watch``: mtime polling that funnels file edits through the same
validated path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.policy import GrbacPolicy
from repro.exceptions import GrbacError, ServiceError
from repro.obs.metrics import MetricsRegistry
from repro.policy.analysis import Finding, PolicyAnalyzer
from repro.policy.diff import diff_policies
from repro.policy.dsl import compile_policy
from repro.policy.serialize import from_json

#: Lint severities, most severe first (index = rank).
_SEVERITY_RANK = {"error": 0, "warning": 1, "info": 2}


def load_policy_text(text: str, name: str = "candidate") -> GrbacPolicy:
    """Parse a candidate policy from DSL text or serialized JSON.

    The two on-disk forms are distinguished by their first
    non-whitespace character: serialized policies are JSON objects
    (``{``); everything else is DSL.  Raises the underlying
    :class:`~repro.exceptions.GrbacError` subtype on malformed input —
    the administrator turns that into an audited rejection.
    """
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return from_json(text)
    return compile_policy(text, name=name)


def load_policy_file(path: str) -> GrbacPolicy:
    """Load a candidate policy from ``path`` (DSL or JSON by content)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return load_policy_text(text, name=path)


@dataclass(frozen=True)
class ReloadRecord:
    """One audited policy-administration attempt.

    This is the administration plane's audit record — who asked for the
    change, when, whether it was applied, and the diff summary — the
    counterpart of the decision-bound
    :class:`~repro.core.audit.AuditRecord` for mediation traffic.
    """

    sequence: int
    #: Wall-clock seconds (``time.time()``) the attempt completed at.
    timestamp: float
    #: Caller-supplied identity ("cli", "admin-http", "file-watch", a
    #: username); empty when the caller named nobody.
    actor: str
    #: ``"reload"`` or ``"validate"`` (dry-run).
    action: str
    #: The candidate was swapped in (always False for dry-runs).
    accepted: bool
    dry_run: bool
    policy_name: str
    old_revision: int
    #: The candidate's decision revision; None when it failed to parse.
    new_revision: Optional[int]
    #: PDP generation after an accepted swap; None otherwise.
    generation: Optional[int]
    #: ``Finding.describe()`` strings from the lint pass.
    findings: Tuple[str, ...]
    #: Human-readable change summary from :func:`diff_policies`.
    diff_summary: str
    #: Why the attempt was rejected; empty when it was not.
    error: str
    duration_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "sequence": self.sequence,
            "timestamp": self.timestamp,
            "actor": self.actor,
            "action": self.action,
            "accepted": self.accepted,
            "dry_run": self.dry_run,
            "policy": self.policy_name,
            "old_revision": self.old_revision,
            "new_revision": self.new_revision,
            "generation": self.generation,
            "findings": list(self.findings),
            "diff_summary": self.diff_summary,
            "error": self.error,
            "duration_s": round(self.duration_s, 6),
        }

    def describe(self) -> str:
        verdict = (
            "dry-run ok"
            if self.dry_run and not self.error
            else "applied"
            if self.accepted
            else f"rejected ({self.error})"
        )
        return (
            f"#{self.sequence} {self.action} by {self.actor or '<anonymous>'}"
            f" -> {verdict}: {self.policy_name!r}"
        )


class ReloadAudit:
    """A bounded, append-only ring of :class:`ReloadRecord` entries."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ServiceError("reload audit capacity must be >= 1")
        self.capacity = capacity
        self._records: List[ReloadRecord] = []
        self._sequence = 0
        self.accepted = 0
        self.rejected = 0

    def append(self, **fields: object) -> ReloadRecord:
        self._sequence += 1
        record = ReloadRecord(
            sequence=self._sequence, timestamp=time.time(), **fields
        )  # type: ignore[arg-type]
        self._records.append(record)
        if len(self._records) > self.capacity:
            self._records = self._records[-self.capacity :]
        if record.error:
            self.rejected += 1
        elif record.accepted:
            self.accepted += 1
        return record

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[ReloadRecord]:
        return list(self._records)

    @property
    def last(self) -> Optional[ReloadRecord]:
        return self._records[-1] if self._records else None

    def stats(self) -> Dict[str, object]:
        return {
            "attempts": self._sequence,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "retained": len(self._records),
        }


@dataclass(frozen=True)
class ReloadResult:
    """What a :meth:`PolicyAdministrator.reload` call tells its caller."""

    accepted: bool
    dry_run: bool
    record: ReloadRecord

    @property
    def error(self) -> str:
        return self.record.error

    @property
    def generation(self) -> Optional[int]:
        return self.record.generation

    def to_dict(self) -> Dict[str, object]:
        return self.record.to_dict()


@dataclass(frozen=True)
class PrepareResult:
    """What :meth:`PolicyAdministrator.prepare` tells its caller.

    ``token`` is non-None exactly when the candidate passed the full
    validation pipeline and is being held warm for
    :meth:`~PolicyAdministrator.activate_prepared`.
    """

    accepted: bool
    token: Optional[str]
    record: ReloadRecord

    @property
    def error(self) -> str:
        return self.record.error

    def to_dict(self) -> Dict[str, object]:
        payload = self.record.to_dict()
        payload["token"] = self.token
        return payload


@dataclass(frozen=True)
class _PreparedCandidate:
    """A validated candidate held warm between prepare and activate."""

    token: str
    candidate: GrbacPolicy
    findings: Tuple[str, ...]
    diff_summary: str


class PolicyAdministrator:
    """The validated path between candidate policy text and the PDP.

    :param target: the serving :class:`PolicyDecisionPoint` (anything
        exposing ``policy`` and ``swap_policy(policy) -> int``).
    :param fail_on: minimum lint severity that rejects a candidate —
        ``"error"`` (default) lets warnings through with an audit
        trail; ``"warning"`` makes the gate strict.  ``None`` disables
        the lint gate entirely (parse failures still reject).
    :param metrics: registry for ``admin.reloads_*`` counters; the
        target's own registry is reused when it has one.
    """

    def __init__(
        self,
        target: object,
        fail_on: Optional[str] = "error",
        metrics: Optional[MetricsRegistry] = None,
        audit_capacity: int = 256,
    ) -> None:
        if fail_on is not None and fail_on not in _SEVERITY_RANK:
            raise ServiceError(
                f"fail_on must be one of {sorted(_SEVERITY_RANK)} or None"
            )
        self.target = target
        self.fail_on = fail_on
        self.audit = ReloadAudit(audit_capacity)
        if metrics is None:
            metrics = getattr(target, "metrics", None) or MetricsRegistry()
        self.metrics = metrics
        self._m_accepted = metrics.counter("admin.reloads_accepted")
        self._m_rejected = metrics.counter("admin.reloads_rejected")
        self._m_dry_runs = metrics.counter("admin.reloads_dry_run")
        #: Outstanding two-phase candidates by token (insertion order;
        #: oldest evicted past :attr:`max_prepared`).
        self._prepared: Dict[str, _PreparedCandidate] = {}
        self._prepare_sequence = 0
        self.max_prepared = 8

    # ------------------------------------------------------------------
    # The administration pipeline
    # ------------------------------------------------------------------
    def reload(
        self,
        source: str,
        actor: str = "",
        dry_run: bool = False,
        name: str = "candidate",
    ) -> ReloadResult:
        """Parse, lint, diff, and (unless ``dry_run``) swap ``source``.

        Never raises on a bad candidate: every failure mode — parse
        error, lint gate, swap fault — resolves to an audited,
        rejected :class:`ReloadResult` with the old policy still
        serving.  Programming errors (a target without
        ``swap_policy``) still raise.
        """
        started = time.perf_counter()
        live = self.target.policy
        action = "validate" if dry_run else "reload"

        def rejected(
            error: str,
            candidate: Optional[GrbacPolicy] = None,
            findings: Tuple[str, ...] = (),
            diff_summary: str = "",
        ) -> ReloadResult:
            self._m_rejected.inc()
            record = self.audit.append(
                actor=actor,
                action=action,
                accepted=False,
                dry_run=dry_run,
                policy_name=(
                    candidate.name if candidate is not None else name
                ),
                old_revision=live.decision_revision,
                new_revision=(
                    candidate.decision_revision
                    if candidate is not None
                    else None
                ),
                generation=None,
                findings=findings,
                diff_summary=diff_summary,
                error=error,
                duration_s=time.perf_counter() - started,
            )
            return ReloadResult(accepted=False, dry_run=dry_run, record=record)

        try:
            candidate = load_policy_text(source, name=name)
        except (GrbacError, ValueError, KeyError, TypeError) as error:
            # GrbacError covers DSL/compile faults; the rest are what
            # json.loads / from_dict raise on malformed documents.
            return rejected(f"parse error: {error}")

        findings = PolicyAnalyzer(candidate).lint()
        finding_strs = tuple(f.describe() for f in findings)
        blocking = self._blocking(findings)
        diff_summary = diff_policies(live, candidate).describe()
        if blocking:
            return rejected(
                "validation failed: "
                + "; ".join(f.describe() for f in blocking),
                candidate=candidate,
                findings=finding_strs,
                diff_summary=diff_summary,
            )

        if dry_run:
            self._m_dry_runs.inc()
            record = self.audit.append(
                actor=actor,
                action=action,
                accepted=False,
                dry_run=True,
                policy_name=candidate.name,
                old_revision=live.decision_revision,
                new_revision=candidate.decision_revision,
                generation=None,
                findings=finding_strs,
                diff_summary=diff_summary,
                error="",
                duration_s=time.perf_counter() - started,
            )
            return ReloadResult(accepted=False, dry_run=True, record=record)

        try:
            generation = self.target.swap_policy(candidate)
        except GrbacError as error:
            # Swap refused (e.g. the candidate will not compile for the
            # engine mode): the PDP still holds the old engine — swap
            # is all-or-nothing by construction.
            return rejected(
                f"swap failed: {error}",
                candidate=candidate,
                findings=finding_strs,
                diff_summary=diff_summary,
            )
        self._m_accepted.inc()
        record = self.audit.append(
            actor=actor,
            action=action,
            accepted=True,
            dry_run=False,
            policy_name=candidate.name,
            old_revision=live.decision_revision,
            new_revision=candidate.decision_revision,
            generation=generation,
            findings=finding_strs,
            diff_summary=diff_summary,
            error="",
            duration_s=time.perf_counter() - started,
        )
        return ReloadResult(accepted=True, dry_run=False, record=record)

    def validate(
        self, source: str, actor: str = "", name: str = "candidate"
    ) -> ReloadResult:
        """Dry-run: the full pipeline minus the swap."""
        return self.reload(source, actor=actor, dry_run=True, name=name)

    # ------------------------------------------------------------------
    # Two-phase reload (cluster prepare/activate)
    # ------------------------------------------------------------------
    def prepare(
        self, source: str, actor: str = "", name: str = "candidate"
    ) -> PrepareResult:
        """Phase one: validate ``source`` and hold it warm for activate.

        Runs the same parse/lint/diff pipeline as :meth:`reload` and —
        on success — pre-builds the candidate's compiled snapshot
        (memoized on the policy object, so the eventual
        ``swap_policy`` pays no compile), then parks it under a token.
        Nothing about the serving policy changes.  The cluster
        supervisor prepares on *every* worker and activates only when
        all of them accepted; any rejection here aborts the whole
        cluster reload with nothing swapped anywhere.
        """
        started = time.perf_counter()
        live = self.target.policy

        def rejected(
            error: str,
            candidate: Optional[GrbacPolicy] = None,
            findings: Tuple[str, ...] = (),
            diff_summary: str = "",
        ) -> PrepareResult:
            self._m_rejected.inc()
            record = self.audit.append(
                actor=actor,
                action="prepare",
                accepted=False,
                dry_run=False,
                policy_name=(
                    candidate.name if candidate is not None else name
                ),
                old_revision=live.decision_revision,
                new_revision=(
                    candidate.decision_revision
                    if candidate is not None
                    else None
                ),
                generation=None,
                findings=findings,
                diff_summary=diff_summary,
                error=error,
                duration_s=time.perf_counter() - started,
            )
            return PrepareResult(accepted=False, token=None, record=record)

        try:
            candidate = load_policy_text(source, name=name)
        except (GrbacError, ValueError, KeyError, TypeError) as error:
            return rejected(f"parse error: {error}")

        findings = PolicyAnalyzer(candidate).lint()
        finding_strs = tuple(f.describe() for f in findings)
        blocking = self._blocking(findings)
        diff_summary = diff_policies(live, candidate).describe()
        if blocking:
            return rejected(
                "validation failed: "
                + "; ".join(f.describe() for f in blocking),
                candidate=candidate,
                findings=finding_strs,
                diff_summary=diff_summary,
            )
        try:
            candidate.compiled()
        except GrbacError as error:
            return rejected(
                f"compile failed: {error}",
                candidate=candidate,
                findings=finding_strs,
                diff_summary=diff_summary,
            )

        self._prepare_sequence += 1
        token = f"prep-{self._prepare_sequence}"
        self._prepared[token] = _PreparedCandidate(
            token=token,
            candidate=candidate,
            findings=finding_strs,
            diff_summary=diff_summary,
        )
        while len(self._prepared) > self.max_prepared:
            oldest = next(iter(self._prepared))
            del self._prepared[oldest]
        record = self.audit.append(
            actor=actor,
            action="prepare",
            accepted=False,
            dry_run=False,
            policy_name=candidate.name,
            old_revision=live.decision_revision,
            new_revision=candidate.decision_revision,
            generation=None,
            findings=finding_strs,
            diff_summary=diff_summary,
            error="",
            duration_s=time.perf_counter() - started,
        )
        return PrepareResult(accepted=True, token=token, record=record)

    def activate_prepared(self, token: str, actor: str = "") -> ReloadResult:
        """Phase two: swap in a previously prepared candidate.

        The candidate was validated and compiled at prepare time, so
        barring an engine-construction fault this is just the atomic
        ``swap_policy`` — the cheap, non-rejectable step the
        supervisor fans out once every worker has prepared.  The token
        is consumed whether or not the swap succeeds.
        """
        started = time.perf_counter()
        live = self.target.policy
        prepared = self._prepared.pop(token, None)

        def finish(
            accepted: bool, error: str, generation: Optional[int]
        ) -> ReloadResult:
            if accepted:
                self._m_accepted.inc()
            else:
                self._m_rejected.inc()
            record = self.audit.append(
                actor=actor,
                action="activate",
                accepted=accepted,
                dry_run=False,
                policy_name=(
                    prepared.candidate.name if prepared is not None else token
                ),
                old_revision=live.decision_revision,
                new_revision=(
                    prepared.candidate.decision_revision
                    if prepared is not None
                    else None
                ),
                generation=generation,
                findings=prepared.findings if prepared is not None else (),
                diff_summary=(
                    prepared.diff_summary if prepared is not None else ""
                ),
                error=error,
                duration_s=time.perf_counter() - started,
            )
            return ReloadResult(
                accepted=accepted, dry_run=False, record=record
            )

        if prepared is None:
            return finish(False, f"unknown prepare token {token!r}", None)
        try:
            generation = self.target.swap_policy(prepared.candidate)
        except GrbacError as error:
            return finish(False, f"swap failed: {error}", None)
        return finish(True, "", generation)

    def abort_prepared(self, token: str, actor: str = "") -> bool:
        """Discard a prepared candidate; True if the token was live."""
        prepared = self._prepared.pop(token, None)
        if prepared is None:
            return False
        self.audit.append(
            actor=actor,
            action="abort",
            accepted=False,
            dry_run=False,
            policy_name=prepared.candidate.name,
            old_revision=self.target.policy.decision_revision,
            new_revision=prepared.candidate.decision_revision,
            generation=None,
            findings=prepared.findings,
            diff_summary=prepared.diff_summary,
            error="",
            duration_s=0.0,
        )
        return True

    def prepared_tokens(self) -> List[str]:
        """Outstanding prepare tokens, oldest first."""
        return list(self._prepared)

    def _blocking(self, findings: List[Finding]) -> List[Finding]:
        if self.fail_on is None:
            return []
        gate = _SEVERITY_RANK[self.fail_on]
        return [
            f
            for f in findings
            if _SEVERITY_RANK.get(f.severity, gate) <= gate
        ]


@dataclass
class PolicyFileWatcher:
    """Polling bridge from a policy file to the administrator.

    ``serve --policy-file X --watch`` runs :meth:`run_forever`; tests
    and the CLI use the synchronous :meth:`poll_once`.  The watcher
    never crashes the server on a bad edit: a file that fails
    validation is an audited rejection, and the same content is not
    retried until the content actually changes.

    Change detection compares a three-part fingerprint — ``(mtime_ns,
    size, sha256(content))`` — not mtime alone.  The stat pair is the
    cheap first gate (unchanged metadata means no read at all); when
    it moves, the content hash decides: a ``touch``, a re-save of
    identical text, or a rsync/untar that bumps timestamps produces
    **no** reload, while a real edit does even when the filesystem's
    mtime granularity swallowed the timestamp step.
    """

    path: str
    administrator: PolicyAdministrator
    interval_s: float = 1.0
    actor: str = "file-watch"
    #: Called with each ReloadResult (serve uses this to log).
    on_reload: Optional[Callable[[ReloadResult], None]] = None
    #: ``(mtime_ns, size, content_sha256)`` of the last content seen.
    _last_fingerprint: Optional[Tuple[int, int, str]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ServiceError("watch interval must be > 0")
        # Baseline: the file as served at startup is not "a change".
        snapshot = self._snapshot()
        if snapshot is not None:
            self._last_fingerprint = snapshot[0]

    def _snapshot(
        self,
    ) -> Optional[Tuple[Tuple[int, int, str], str]]:
        """``(fingerprint, content)`` of the file now, None if unreadable."""
        import hashlib
        import os

        try:
            stat = os.stat(self.path)
            with open(self.path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError:
            return None  # transient (editor rename-in-place); retry
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        return (stat.st_mtime_ns, stat.st_size, digest), source

    def poll_once(self) -> Optional[ReloadResult]:
        """Reload if the file's *content* changed; None when it did not."""
        import os

        last = self._last_fingerprint
        if last is not None:
            try:
                stat = os.stat(self.path)
            except OSError:
                return None  # transient; fingerprint kept, next poll retries
            if (stat.st_mtime_ns, stat.st_size) == last[:2]:
                return None  # metadata unchanged: skip the read
        snapshot = self._snapshot()
        if snapshot is None:
            return None
        fingerprint, source = snapshot
        # Record the new metadata either way, so a pure touch is not
        # re-hashed every poll; reload only on a content change.
        self._last_fingerprint = fingerprint
        if last is not None and fingerprint[2] == last[2]:
            return None  # touched, but byte-identical content
        result = self.administrator.reload(
            source, actor=self.actor, name=self.path
        )
        if self.on_reload is not None:
            self.on_reload(result)
        return result

    async def run_forever(self) -> None:
        """Poll until cancelled (serve runs this next to the PDP)."""
        import asyncio

        while True:
            await asyncio.sleep(self.interval_s)
            self.poll_once()
